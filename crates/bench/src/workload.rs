//! Seeded synthetic workload generation.
//!
//! The paper motivates the engine with "irregular and multi-flow
//! communication schemes" (§1–2). This module generates such schemes
//! reproducibly: mixes of small and rendezvous-sized segments spread
//! over several logical flows, from a fixed seed, so stress tests and
//! ablations see *irregular but deterministic* traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic traffic mix.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of messages to generate.
    pub messages: usize,
    /// Number of distinct logical flows (tags).
    pub flows: u32,
    /// Small messages are uniform in `1..=small_max` bytes.
    pub small_max: usize,
    /// Probability that a message is rendezvous-sized.
    pub large_prob: f64,
    /// Large messages are uniform in `large_min..=large_max` bytes.
    pub large_min: usize,
    pub large_max: usize,
    /// RNG seed: same spec + seed ⇒ identical workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A mixed RPC-like default: mostly small control traffic with
    /// occasional bulk payloads.
    pub fn rpc_mix(messages: usize, seed: u64) -> Self {
        WorkloadSpec {
            messages,
            flows: 6,
            small_max: 512,
            large_prob: 0.15,
            large_min: 40_000,
            large_max: 150_000,
            seed,
        }
    }

    /// Pure small-message burst traffic (the fig. 3 regime).
    pub fn burst(messages: usize, seed: u64) -> Self {
        WorkloadSpec {
            messages,
            flows: 16,
            small_max: 256,
            large_prob: 0.0,
            large_min: 0,
            large_max: 0,
            seed,
        }
    }
}

/// One generated message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    pub tag: u32,
    pub len: usize,
}

/// Generates the workload described by `spec`.
pub fn generate(spec: &WorkloadSpec) -> Vec<WorkItem> {
    assert!(spec.flows > 0, "need at least one flow");
    assert!((0.0..=1.0).contains(&spec.large_prob));
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.messages)
        .map(|_| {
            let tag = rng.gen_range(0..spec.flows);
            let len = if spec.large_prob > 0.0 && rng.gen_bool(spec.large_prob) {
                rng.gen_range(spec.large_min..=spec.large_max)
            } else {
                rng.gen_range(1..=spec.small_max.max(1))
            };
            WorkItem { tag, len }
        })
        .collect()
}

/// Deterministic per-item payload (content checkable at the receiver).
pub fn payload_for(index: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((index * 37 + j) % 251) as u8).collect()
}

// ---------------------------------------------------------------------
// Heavy-tail multi-tenant workloads
// ---------------------------------------------------------------------

/// Message-size distribution of one tenant class.
///
/// The heavy-tail distributions are sampled by hand — Box–Muller for
/// the log-normal, inverse CDF for the Pareto — so the generator stays
/// dependency-free and bit-reproducible from the seed.
#[derive(Clone, Debug)]
pub enum SizeDist {
    /// Uniform in `min..=max` bytes.
    Uniform {
        /// Smallest size.
        min: usize,
        /// Largest size.
        max: usize,
    },
    /// Log-normal: `median * exp(sigma * N(0,1))` — the classic RPC
    /// size shape (most messages near the median, a long right tail).
    LogNormal {
        /// Median size in bytes.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Pareto: `scale / U^(1/alpha)` — a power-law tail; `alpha` near 1
    /// makes occasional messages orders of magnitude above the scale.
    Pareto {
        /// Minimum (and modal) size in bytes.
        scale: f64,
        /// Tail exponent; smaller is heavier.
        alpha: f64,
    },
}

impl SizeDist {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            SizeDist::Uniform { min, max } => rng.gen_range(min..=max.max(min)) as f64,
            SizeDist::LogNormal { median, sigma } => {
                // Box–Muller transform; u1 in (0, 1] avoids ln(0).
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                median * (sigma * z).exp()
            }
            SizeDist::Pareto { scale, alpha } => {
                let u: f64 = 1.0 - rng.gen::<f64>();
                scale / u.powf(1.0 / alpha)
            }
        }
    }
}

/// Arrival process of the whole multi-tenant mix.
#[derive(Clone, Debug)]
pub enum ArrivalModel {
    /// Memoryless arrivals: exponential gaps at `rate_per_s`.
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Markov-modulated Poisson process with two states (calm, burst):
    /// gaps are exponential at the current state's rate, and the state
    /// itself flips after an exponential dwell time. This is the
    /// standard closed-form model for bursty datacenter traffic.
    Mmpp {
        /// Arrival rate in the calm state.
        rate_lo_per_s: f64,
        /// Arrival rate in the burst state.
        rate_hi_per_s: f64,
        /// Mean dwell time in each state, nanoseconds.
        mean_dwell_ns: f64,
    },
}

/// One tenant class of a heavy-tail mix.
#[derive(Clone, Debug)]
pub struct ClassMix {
    /// Class label, used in reports ("urgent-small", "bulk", ...).
    pub name: &'static str,
    /// Priority lane every message of this class is submitted on.
    pub priority: nmad_core::Priority,
    /// Fraction of all messages this class contributes (normalized
    /// against the sum over classes).
    pub weight: f64,
    /// Distinct flows (tags) inside the class; tags are allocated in
    /// disjoint per-class ranges so tenants never share a flow.
    pub flows: u32,
    /// Size distribution.
    pub size: SizeDist,
    /// Hard cap on the sampled size (heavy tails are unbounded; the
    /// cap keeps single messages within what the harness can buffer).
    pub size_cap: usize,
}

/// Parameters of a heavy-tail multi-tenant workload.
#[derive(Clone, Debug)]
pub struct TailSpec {
    /// Total number of messages across all classes.
    pub messages: usize,
    /// The tenant classes and their weights.
    pub classes: Vec<ClassMix>,
    /// Arrival process shared by the mix.
    pub arrivals: ArrivalModel,
    /// RNG seed: same spec + seed ⇒ identical workload.
    pub seed: u64,
}

/// Tag-space stride between classes: class `c` uses tags
/// `c * CLASS_TAG_STRIDE ..`, so class membership is recoverable from
/// a tag alone.
pub const CLASS_TAG_STRIDE: u32 = 64;

impl TailSpec {
    /// The canonical three-tenant mix: a latency-critical tenant
    /// sending small urgent messages, an RPC tenant on the normal
    /// lane, and a bulk tenant with a Pareto tail — Poisson arrivals.
    pub fn multi_tenant(messages: usize, seed: u64) -> Self {
        TailSpec {
            messages,
            classes: vec![
                ClassMix {
                    name: "urgent-small",
                    priority: nmad_core::Priority::Urgent,
                    weight: 0.2,
                    flows: 8,
                    size: SizeDist::LogNormal {
                        median: 128.0,
                        sigma: 0.7,
                    },
                    size_cap: 4 * 1024,
                },
                ClassMix {
                    name: "normal-rpc",
                    priority: nmad_core::Priority::Normal,
                    weight: 0.5,
                    flows: 16,
                    size: SizeDist::LogNormal {
                        median: 1024.0,
                        sigma: 1.0,
                    },
                    size_cap: 24 * 1024,
                },
                ClassMix {
                    name: "bulk",
                    priority: nmad_core::Priority::Bulk,
                    weight: 0.3,
                    flows: 4,
                    size: SizeDist::Pareto {
                        scale: 8.0 * 1024.0,
                        alpha: 1.3,
                    },
                    size_cap: 1 << 20,
                },
            ],
            arrivals: ArrivalModel::Poisson {
                rate_per_s: 400_000.0,
            },
            seed,
        }
    }

    /// The same tenant mix under bursty MMPP arrivals: long calm
    /// stretches punctuated by 10× bursts — the regime where
    /// head-of-line blocking actually shows up in the tail.
    pub fn multi_tenant_bursty(messages: usize, seed: u64) -> Self {
        TailSpec {
            arrivals: ArrivalModel::Mmpp {
                rate_lo_per_s: 150_000.0,
                rate_hi_per_s: 1_500_000.0,
                mean_dwell_ns: 2_000_000.0,
            },
            ..Self::multi_tenant(messages, seed)
        }
    }
}

/// One generated message of a heavy-tail workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TailItem {
    /// Virtual arrival time (nanoseconds since run start, monotone).
    pub at_ns: u64,
    /// Index into [`TailSpec::classes`].
    pub class: usize,
    /// Flow tag (globally unique across classes).
    pub tag: u32,
    /// Priority lane.
    pub priority: nmad_core::Priority,
    /// Message size in bytes (≥ 1, ≤ the class cap).
    pub len: usize,
}

/// Generates the heavy-tail workload described by `spec`: items come
/// back sorted by arrival time (they are generated in time order).
pub fn generate_tail(spec: &TailSpec) -> Vec<TailItem> {
    assert!(!spec.classes.is_empty(), "need at least one class");
    let total_weight: f64 = spec.classes.iter().map(|c| c.weight).sum();
    assert!(total_weight > 0.0, "class weights must sum above zero");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // MMPP state: start calm, flip after an exponential dwell.
    let mut burst_state = false;
    let mut dwell_left_ns = match spec.arrivals {
        ArrivalModel::Mmpp { mean_dwell_ns, .. } => exp_sample(&mut rng, 1.0 / mean_dwell_ns),
        ArrivalModel::Poisson { .. } => f64::INFINITY,
    };

    let mut now_ns = 0.0f64;
    let mut out = Vec::with_capacity(spec.messages);
    for _ in 0..spec.messages {
        // Next arrival gap under the current state.
        let rate = match spec.arrivals {
            ArrivalModel::Poisson { rate_per_s } => rate_per_s,
            ArrivalModel::Mmpp {
                rate_lo_per_s,
                rate_hi_per_s,
                mean_dwell_ns,
            } => {
                let mut gap_budget = exp_sample(
                    &mut rng,
                    current_rate(burst_state, rate_lo_per_s, rate_hi_per_s) / 1e9,
                );
                // Consume dwell; flip states until the gap fits.
                while gap_budget > dwell_left_ns {
                    now_ns += dwell_left_ns;
                    gap_budget -= dwell_left_ns;
                    burst_state = !burst_state;
                    dwell_left_ns = exp_sample(&mut rng, 1.0 / mean_dwell_ns);
                    // Rescale the remaining gap to the new rate: the
                    // exponential's memorylessness makes this exact.
                    let old = current_rate(!burst_state, rate_lo_per_s, rate_hi_per_s);
                    let new = current_rate(burst_state, rate_lo_per_s, rate_hi_per_s);
                    gap_budget *= old / new;
                }
                dwell_left_ns -= gap_budget;
                now_ns += gap_budget;
                f64::NAN // gap already applied
            }
        };
        if rate.is_finite() {
            now_ns += exp_sample(&mut rng, rate / 1e9);
        }

        // Weighted class choice.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut class = spec.classes.len() - 1;
        for (i, c) in spec.classes.iter().enumerate() {
            if pick < c.weight {
                class = i;
                break;
            }
            pick -= c.weight;
        }
        let c = &spec.classes[class];
        let tag = class as u32 * CLASS_TAG_STRIDE + rng.gen_range(0..c.flows.max(1));
        let len = (c.size.sample(&mut rng).round() as usize).clamp(1, c.size_cap.max(1));
        out.push(TailItem {
            at_ns: now_ns as u64,
            class,
            tag,
            priority: c.priority,
            len,
        });
    }
    out
}

fn current_rate(burst: bool, lo: f64, hi: f64) -> f64 {
    if burst {
        hi
    } else {
        lo
    }
}

/// Exponential sample with the given rate (events per unit).
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let spec = WorkloadSpec::rpc_mix(200, 42);
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn different_seed_different_workload() {
        let a = generate(&WorkloadSpec::rpc_mix(200, 1));
        let b = generate(&WorkloadSpec::rpc_mix(200, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn burst_spec_generates_only_small_messages() {
        let items = generate(&WorkloadSpec::burst(500, 7));
        assert_eq!(items.len(), 500);
        assert!(items.iter().all(|i| i.len <= 256 && i.len >= 1));
        assert!(items.iter().all(|i| i.tag < 16));
    }

    #[test]
    fn rpc_mix_contains_both_size_classes() {
        let items = generate(&WorkloadSpec::rpc_mix(500, 3));
        let large = items.iter().filter(|i| i.len >= 40_000).count();
        let small = items.iter().filter(|i| i.len <= 512).count();
        assert!(large > 20, "expected some bulk messages, got {large}");
        assert!(small > 300, "expected mostly small messages, got {small}");
        assert_eq!(large + small, 500, "no sizes outside the two classes");
    }

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        assert_eq!(payload_for(3, 16), payload_for(3, 16));
        assert_ne!(payload_for(3, 16), payload_for(4, 16));
        assert_eq!(payload_for(0, 0), Vec::<u8>::new());
    }

    #[test]
    fn tail_workload_is_deterministic_and_time_ordered() {
        let spec = TailSpec::multi_tenant(2_000, 11);
        let a = generate_tail(&spec);
        assert_eq!(a, generate_tail(&spec));
        assert_eq!(a.len(), 2_000);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let bursty = generate_tail(&TailSpec::multi_tenant_bursty(2_000, 11));
        assert_eq!(
            bursty,
            generate_tail(&TailSpec::multi_tenant_bursty(2_000, 11))
        );
        assert!(bursty.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn tail_classes_follow_their_weights_and_tag_ranges() {
        let spec = TailSpec::multi_tenant(10_000, 5);
        let items = generate_tail(&spec);
        for (i, c) in spec.classes.iter().enumerate() {
            let n = items.iter().filter(|it| it.class == i).count();
            let expect = 10_000.0 * c.weight;
            assert!(
                (n as f64 - expect).abs() < expect * 0.2,
                "class {} count {} far from weight share {}",
                c.name,
                n,
                expect
            );
        }
        for it in &items {
            let c = &spec.classes[it.class];
            assert_eq!(it.priority, c.priority);
            let base = it.class as u32 * CLASS_TAG_STRIDE;
            assert!(it.tag >= base && it.tag < base + c.flows);
            assert!(it.len >= 1 && it.len <= c.size_cap);
        }
    }

    #[test]
    fn bulk_class_has_a_heavy_tail() {
        let spec = TailSpec::multi_tenant(10_000, 9);
        let items = generate_tail(&spec);
        let mut bulk: Vec<usize> = items
            .iter()
            .filter(|it| spec.classes[it.class].name == "bulk")
            .map(|it| it.len)
            .collect();
        bulk.sort_unstable();
        let median = bulk[bulk.len() / 2];
        let p999 = bulk[bulk.len() * 999 / 1000];
        assert!(
            p999 as f64 > 10.0 * median as f64,
            "pareto tail too light: median {median}, p99.9 {p999}"
        );
    }

    #[test]
    fn bursty_arrivals_cluster_more_than_poisson() {
        // Same mean-ish load; the MMPP run must show far more very
        // short gaps (bursts) than the memoryless baseline.
        let poisson = generate_tail(&TailSpec::multi_tenant(8_000, 3));
        let bursty = generate_tail(&TailSpec::multi_tenant_bursty(8_000, 3));
        let short_gaps = |items: &[TailItem]| {
            items
                .windows(2)
                .filter(|w| w[1].at_ns - w[0].at_ns < 700)
                .count()
        };
        assert!(
            short_gaps(&bursty) > short_gaps(&poisson),
            "MMPP should cluster arrivals: {} vs {}",
            short_gaps(&bursty),
            short_gaps(&poisson)
        );
    }
}
