//! Portability panel (paper §4): the prototype ran over GM/Myrinet,
//! MX/Myrinet, Elan/Quadrics, SISCI/SCI and TCP/Ethernet — "any
//! strategy can be directly combined with any network protocol".
//!
//! Runs the same MAD-MPI ping-pong and 8-segment aggregation workload
//! over every modelled technology, showing the engine adapting to each
//! card's envelope (latency, bandwidth, gather capability, rendezvous
//! threshold, MTU).
//!
//! Run: `cargo run --release -p bench --bin platforms`

use bench::{fmt_size, gain_pct, pingpong_contig, pingpong_multiseg, Table};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_sim::nic;

fn main() {
    let iters = 3;
    let madmpi = EngineKind::MadMpi(StrategyKind::Aggreg);

    println!("\n## MAD-MPI across every modelled technology\n");
    let mut table = Table::new(vec![
        "technology",
        "4B latency (us)",
        "peak bw (MB/s)",
        "8x64B burst (us)",
        "burst gain vs FIFO",
    ]);
    for nic_model in nic::all_presets() {
        let small = pingpong_contig(madmpi, nic_model.clone(), 4, iters);
        let big = pingpong_contig(madmpi, nic_model.clone(), 2 << 20, iters);
        let burst = pingpong_multiseg(madmpi, nic_model.clone(), 8, 64, iters);
        let fifo = pingpong_multiseg(
            EngineKind::MadMpi(StrategyKind::Default),
            nic_model.clone(),
            8,
            64,
            iters,
        );
        table.row(vec![
            nic_model.name.to_string(),
            format!("{:.2}", small.one_way_us),
            format!("{:.0}", big.bandwidth_mbs),
            format!("{:.2}", burst.one_way_us),
            format!("{:.0}%", gain_pct(burst.one_way_us, fifo.one_way_us)),
        ]);
    }
    table.print();

    println!("\n- every technology runs the identical engine and strategy code;");
    println!("  only the driver capability record differs (gather limit, RDMA,");
    println!("  rendezvous threshold, MTU — e.g. SISCI chunks rendezvous data at");
    println!(
        "  its {} MTU, GM stages aggregated frames through a copy).",
        fmt_size(64 * 1024)
    );
}
