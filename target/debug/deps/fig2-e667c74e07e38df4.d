/root/repo/target/debug/deps/fig2-e667c74e07e38df4.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-e667c74e07e38df4: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
