//! Virtual-time primitives for the discrete-event substrate.
//!
//! All simulated instants and durations are kept in integer nanoseconds so
//! that event ordering is exact and runs are bit-for-bit reproducible.
//! Floating point only appears at the reporting boundary
//! ([`SimDuration::as_us_f64`] and friends).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel later than every reachable instant.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, for human-facing reports.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier`
    /// is actually later (callers comparing unordered completion times
    /// rely on this never panicking).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from integer microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from fractional microseconds (reporting /
    /// calibration convenience; rounds to the nearest nanosecond).
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us >= 0.0 && us.is_finite(),
            "negative or non-finite duration"
        );
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float, for reports.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float, for bandwidth computations in reports.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Exact time needed to move `bytes` bytes at `bytes_per_sec`,
    /// rounded up so that a transfer never completes early.
    ///
    /// Uses 128-bit intermediates: 2 MiB at 1 byte/s would overflow u64
    /// nanoseconds otherwise.
    pub fn for_bytes(bytes: usize, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero bandwidth"); // PANIC-OK: sim-time overflow is a configuration bug; clamping would corrupt the clock
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(u64::try_from(ns).expect("transfer time overflows u64 ns")) // PANIC-OK: sim-time overflow is a configuration bug; clamping would corrupt the clock
    }

    /// Saturating addition (used when accumulating worst-case bounds).
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow")) // PANIC-OK: sim-time overflow is a configuration bug; clamping would corrupt the clock
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative sim duration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("sim duration overflow")) // PANIC-OK: sim-time overflow is a configuration bug; clamping would corrupt the clock
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative sim duration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_ns(1_000);
        let d = SimDuration::from_us(3);
        let t1 = t0 + d;
        assert_eq!(t1.as_ns(), 4_000);
        assert_eq!(t1 - t0, d);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_ns(), 40);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 3 bytes at 2 bytes/s = 1.5 s, must round to 1.5e9 ns exactly;
        // 1 byte at 3 bytes/s = 333_333_333.3..ns, must round UP.
        assert_eq!(SimDuration::for_bytes(3, 2).as_ns(), 1_500_000_000);
        assert_eq!(SimDuration::for_bytes(1, 3).as_ns(), 333_333_334);
        assert_eq!(SimDuration::for_bytes(0, 1).as_ns(), 0);
    }

    #[test]
    fn for_bytes_handles_large_messages() {
        // 2 MiB at ~1.24 GB/s: well-defined, no overflow.
        let d = SimDuration::for_bytes(2 << 20, 1_240_000_000);
        assert!(d.as_us_f64() > 1_600.0 && d.as_us_f64() < 1_800.0);
    }

    #[test]
    fn from_us_f64_rounds_to_ns() {
        assert_eq!(SimDuration::from_us_f64(0.45).as_ns(), 450);
        assert_eq!(SimDuration::from_us_f64(2.6).as_ns(), 2_600);
    }

    #[test]
    #[should_panic(expected = "negative sim duration")]
    fn strict_sub_panics_on_underflow() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimDuration::from_ns(1_500)), "1.500us");
        assert_eq!(format!("{}", SimTime::from_ns(2_000)), "t+2.000us");
    }
}
