//! Differential test: the analyzer's lexer against the legacy lexical
//! stripper.
//!
//! `nmad-verify`'s structural pass is built on a token lexer whose
//! stripped view must agree *byte-for-byte* with the original
//! `strip_comments_and_strings` — the eight lexical rules now run over
//! the lexer's view, so any divergence silently changes what the lint
//! gate sees. Sources are generated from the constructs that make
//! stripping hard: nested block comments, string escapes (including
//! escaped newlines, which delete a physical line from the stripped
//! text), raw strings with hash fences, char literals, and lifetimes.

use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Frag(String, bool); // text, carries a comment

fn frag_strategy() -> impl proptest::strategy::Strategy<Value = Frag> {
    (0u32..8, 0u32..5, 0u32..5).prop_map(|(kind, a, b)| match kind {
        0 => Frag(format!("let x{a} = {b};\n"), false),
        1 => Frag(format!("// note {a} HOT-PATH {b}\n"), true),
        2 => Frag(format!("/* b{a} /* nested {b} */ tail */"), true),
        3 => Frag(format!("let s = \"s{a}\\\"q\\\\{b}\";\n"), false),
        // The escaped-newline case: two source lines, one stripped line.
        4 => Frag(format!("let t = \"head{a}\\\n tail{b}\";\n"), false),
        5 => Frag(format!("let r = r#\"raw {a} \" inside {b}\"#;\n"), false),
        6 => Frag(format!("let c{a}: &'a char = &'x'; // tail{b}\n"), true),
        _ => Frag(format!("fn f{a}() {{ g{b}(); }}\n"), false),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lexer_stripping_matches_the_legacy_stripper(
        frags in proptest::collection::vec(frag_strategy(), 0..24)
    ) {
        let src: String = frags.iter().map(|f| f.0.as_str()).collect::<Vec<_>>().join(" ");
        let legacy = nmad_verify::lint::strip_comments_and_strings(&src);
        let lexed = nmad_verify::lexer::lex(&src);

        // Byte-for-byte agreement between the two stripping engines.
        prop_assert_eq!(&lexed.stripped, &legacy);
        // Stripping is char-count preserving (every replaced construct
        // is blanked in place) — the property the token-line table
        // relies on.
        prop_assert_eq!(lexed.stripped.chars().count(), src.chars().count());

        // Comments are harvested from comments only: the HOT-PATH
        // marker planted in line comments is recovered exactly as many
        // times as it was planted, never from string literals.
        let planted = frags.iter().filter(|f| f.0.contains("HOT-PATH")).count();
        let harvested = lexed
            .comments
            .values()
            .filter(|c| c.contains("HOT-PATH"))
            .count();
        prop_assert_eq!(harvested, planted);

        // Line comments land on their physical source line.
        let commented = frags.iter().any(|f| f.1);
        prop_assert_eq!(commented, !lexed.comments.is_empty());
    }
}
