//! Differential property: a batched submission run is observably
//! identical to the same operations submitted one by one.
//!
//! For an arbitrary schedule of sends over a handful of flows, the
//! same traffic is driven through two independent engine pairs — one
//! using plain [`ThreadedHandle`] single submissions (one ring slot +
//! one doorbell per op), one staging everything through
//! [`ThreadedHandle::submit_batch`] with flush points sprinkled by the
//! property — and the two sides must deliver byte-identical payloads
//! in the same per-flow order, with zero duplicate completions.
//! Batching is pure amortization: it may change *when* the consumer
//! wakes, never *what* it delivers.

use bytes::Bytes;
use nmad_core::prelude::*;
use nmad_core::{ThreadedEngine, ThreadedHandle};
use nmad_net::mem::{mem_fabric, MemDriver};
use nmad_net::NullMeter;
use nmad_sim::NodeId;

const FLOWS: u32 = 4;

fn mem_pair() -> (ThreadedEngine, ThreadedEngine) {
    let mut fabric = mem_fabric(2);
    let b = fabric.pop().unwrap();
    let a = fabric.pop().unwrap();
    let launch = |d: MemDriver| {
        ThreadedEngine::launch(
            NmadEngine::new(
                vec![Box::new(d)],
                Box::new(NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            ),
            EngineConfig::threaded(),
        )
    };
    (launch(a), launch(b))
}

/// One generated send: (flow, payload length). The payload bytes are
/// derived from (flow, index) so any reordering or cross-wiring shows
/// up as a byte mismatch, not just a length mismatch.
fn payload(flow: u32, idx: usize, len: usize) -> Bytes {
    Bytes::from(vec![(flow as u8) ^ (idx as u8).wrapping_mul(31); len])
}

/// Drives `sends` through one engine pair and returns, per flow, the
/// received payloads in arrival order. `flushes` marks the op indices
/// after which the batched variant flushes (ignored by the single
/// variant); both variants flush everything before waiting.
fn deliver(sends: &[(u32, usize)], flushes: &[usize], batched: bool) -> Vec<Vec<Bytes>> {
    let (tx, rx) = mem_pair();
    let (txh, rxh): (ThreadedHandle, ThreadedHandle) = (tx.handle(), rx.handle());

    // Post one receive per send, per flow, in order: matching is FIFO
    // within a flow, so arrival order per flow is observable.
    let mut recv_ids = Vec::with_capacity(sends.len());
    for &(flow, len) in sends {
        recv_ids.push((flow, rxh.post_recv(NodeId(0), Tag(flow), len.max(1))));
    }

    let mut send_ids = Vec::with_capacity(sends.len());
    if batched {
        let mut batch = txh.submit_batch();
        for (i, &(flow, len)) in sends.iter().enumerate() {
            send_ids.push(batch.isend(NodeId(1), Tag(flow), payload(flow, i, len)));
            if flushes.contains(&i) {
                batch.flush();
            }
        }
        batch.flush();
    } else {
        for (i, &(flow, len)) in sends.iter().enumerate() {
            send_ids.push(txh.isend(NodeId(1), Tag(flow), payload(flow, i, len)));
        }
    }

    txh.wait_sends(&send_ids);
    let mut by_flow: Vec<Vec<Bytes>> = (0..FLOWS).map(|_| Vec::new()).collect();
    for (flow, id) in recv_ids {
        by_flow[flow as usize].push(rxh.wait_recv(id).data);
    }
    assert_eq!(txh.completion_duplicates(), 0, "tx duplicates");
    assert_eq!(rxh.completion_duplicates(), 0, "rx duplicates");
    by_flow
}

proptest::proptest! {
    #[test]
    fn batched_submission_equals_singles(
        sends in proptest::collection::vec((0u32..FLOWS, 1usize..96), 1..40),
        flushes in proptest::collection::vec(0usize..40, 0..6),
    ) {
        let single = deliver(&sends, &[], false);
        let batched = deliver(&sends, &flushes, true);
        proptest::prop_assert_eq!(single, batched);
    }
}

/// The deterministic anchor case the property generalizes: every flow
/// busy, flushes landing mid-slot, across several ring slots.
#[test]
fn batched_submission_equals_singles_anchor() {
    let sends: Vec<(u32, usize)> = (0..48)
        .map(|i| (i % FLOWS, 1 + (i as usize * 7) % 90))
        .collect();
    let flushes = [5usize, 6, 17, 40];
    let single = deliver(&sends, &[], false);
    let batched = deliver(&sends, &flushes, true);
    assert_eq!(single, batched);
    // Sanity: the per-flow transcript really carries data.
    assert!(single.iter().map(|f| f.len()).sum::<usize>() == 48);
}
