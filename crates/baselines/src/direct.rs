//! Direct-mapping baseline engine.
//!
//! This is the classical synchronous design the paper contrasts with:
//! every application request is translated into network commands
//! *immediately* ("communication libraries, being synchronous, tightly
//! link the communication requests to the application workflow", §3.1).
//! There is no optimization window and no scheduler: one request, one
//! wire message. Back-to-back sends pipeline efficiently because the
//! NIC queues them (the paper credits MPICH with exactly this, §5.2) —
//! but each still pays its own posting overhead and header.
//!
//! Derived-datatype requests arrive here already packed into one
//! contiguous buffer (the MPI layer charges the copies), reproducing
//! the MPICH behaviour documented in §5.3.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;

use crate::codec::{decode, Msg, HEADER_LEN};
use nmad_core::matching::{Effect, Matching, RecvDone};
use nmad_core::segment::{RecvReqId, SendReqId, SeqNo, Tag};
use nmad_net::{CpuMeter, Driver, NetResult, SendHandle};
use nmad_sim::NodeId;

/// How the MPI layer asked us to account receive-side datatype
/// unpacking for one posted receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UnpackMode {
    /// Contiguous data: no datatype copy.
    #[default]
    None,
    /// Copy out chunk-by-chunk as data arrives, overlapping the wire
    /// (OpenMPI-flavoured pipelined unpack).
    PerChunk,
    /// One copy of the full message once everything has arrived
    /// (MPICH-flavoured temporary-area dispatch, §5.3).
    AtCompletion,
}

/// Identity and tuning of one baseline flavour.
#[derive(Clone, Debug)]
pub struct DirectConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Software cost charged per application request.
    pub per_request_ns: u64,
    /// Software cost charged per wire message built or parsed.
    pub per_message_ns: u64,
    /// Rendezvous data chunk size (pipelining granularity).
    pub rdv_chunk: usize,
}

/// MPICH-like flavour: lean request path, whole-message rendezvous
/// pipelined in large chunks.
pub fn mpich_config() -> DirectConfig {
    DirectConfig {
        name: "mpich",
        per_request_ns: 260,
        per_message_ns: 40,
        rdv_chunk: 256 * 1024,
    }
}

/// OpenMPI 1.1-like flavour: heavier per-request component stack
/// (visible as a constant shift in paper Fig. 2a/3a), finer rendezvous
/// chunks that let the receive side overlap unpacking.
pub fn ompi_config() -> DirectConfig {
    DirectConfig {
        name: "openmpi",
        per_request_ns: 650,
        per_message_ns: 50,
        rdv_chunk: 64 * 1024,
    }
}

type Key = (NodeId, Tag, SeqNo);

enum TxDone {
    Unit(SendReqId),
    RdvBytes { key: Key, bytes: usize },
}

struct RdvTx {
    sent: usize,
    total: usize,
    req: SendReqId,
}

/// The baseline engine. See the module documentation.
pub struct DirectEngine {
    node: NodeId,
    driver: Box<dyn Driver>,
    meter: Box<dyn CpuMeter>,
    cfg: DirectConfig,
    matching: Matching,
    inflight: VecDeque<(SendHandle, Vec<TxDone>)>,
    rdv_wait_cts: HashMap<Key, (Bytes, SendReqId)>,
    rdv_tx: HashMap<Key, RdvTx>,
    sends: HashMap<SendReqId, usize>,
    done_sends: HashSet<SendReqId>,
    unpack_modes: HashMap<Key, UnpackMode>,
    /// Receives with `AtCompletion` unpack: req → total bytes to copy
    /// when the application harvests completion.
    pending_unpack: HashMap<RecvReqId, usize>,
    recv_key: HashMap<Key, RecvReqId>,
    next_req: u64,
    next_seq: HashMap<(NodeId, Tag), SeqNo>,
    stats: DirectStats,
}

/// Wire counters (symmetrical to the engine's, for comparisons).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectStats {
    /// Wire messages sent.
    pub messages_sent: u64,
    /// Wire messages received.
    pub messages_received: u64,
}

impl DirectEngine {
    /// Builds a baseline endpoint over one driver.
    pub fn new(driver: Box<dyn Driver>, meter: Box<dyn CpuMeter>, cfg: DirectConfig) -> Self {
        DirectEngine {
            node: driver.local_node(),
            driver,
            meter,
            cfg,
            matching: Matching::new(),
            inflight: VecDeque::new(),
            rdv_wait_cts: HashMap::new(),
            rdv_tx: HashMap::new(),
            sends: HashMap::new(),
            done_sends: HashSet::new(),
            unpack_modes: HashMap::new(),
            pending_unpack: HashMap::new(),
            recv_key: HashMap::new(),
            next_req: 0,
            next_seq: HashMap::new(),
            stats: DirectStats::default(),
        }
    }

    /// Node the event belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    /// Wire-level counters since construction.
    pub fn stats(&self) -> &DirectStats {
        &self.stats
    }

    /// Accounts an MPI-layer memory copy (datatype pack/unpack).
    pub fn charge_memcpy(&mut self, bytes: usize) {
        self.meter.charge_memcpy(bytes);
    }

    fn alloc_seq(&mut self, dst: NodeId, tag: Tag) -> SeqNo {
        let slot = self.next_seq.entry((dst, tag)).or_insert(SeqNo(0));
        let seq = *slot;
        *slot = slot.next();
        seq
    }

    fn post_msg(&mut self, dst: NodeId, msg: &Msg<'_>, dones: Vec<TxDone>) -> NetResult<()> {
        self.meter.charge_ns(self.cfg.per_message_ns);
        let wire = msg.encode();
        let handle = self.driver.post_send(dst, &[&wire])?;
        self.inflight.push_back((handle, dones));
        self.stats.messages_sent += 1;
        Ok(())
    }

    /// Nonblocking send: maps the request straight onto the wire —
    /// eager below the driver's rendezvous threshold, RTS above it.
    pub fn isend(&mut self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        assert_ne!(dst, self.node, "self-sends are not routed through NICs");
        let data: Bytes = data.into();
        self.meter.charge_ns(self.cfg.per_request_ns);
        let req = SendReqId(self.next_req);
        self.next_req += 1;
        let seq = self.alloc_seq(dst, tag);
        self.sends.insert(req, 1);
        if data.len() <= self.driver.caps().rdv_threshold {
            let msg = Msg::Eager {
                tag,
                seq,
                payload: &data,
            };
            self.post_msg(dst, &msg, vec![TxDone::Unit(req)])
                .expect("transport failure");
        } else {
            let total = u32::try_from(data.len()).expect("message above 4 GiB");
            let msg = Msg::Rts { tag, seq, total };
            self.rdv_wait_cts.insert((dst, tag, seq), (data, req));
            self.post_msg(dst, &msg, vec![]).expect("transport failure");
        }
        req
    }

    /// Posts a receive; `mode` tells the engine how to account
    /// receive-side datatype unpacking.
    pub fn post_recv(&mut self, src: NodeId, tag: Tag, max: usize, mode: UnpackMode) -> RecvReqId {
        self.meter.charge_ns(self.cfg.per_request_ns);
        let req = RecvReqId(self.next_req);
        self.next_req += 1;
        let (seq, effects) = self.matching.post_recv(src, tag, max, req);
        let key = (src, tag, seq);
        if mode != UnpackMode::None {
            self.unpack_modes.insert(key, mode);
            self.recv_key.insert(key, req);
        }
        // The receive may have completed instantly off the unexpected
        // queue; account its unpack now.
        if self.matching.is_done(req) {
            if let Some(UnpackMode::PerChunk | UnpackMode::AtCompletion) =
                self.unpack_modes.remove(&key)
            {
                self.recv_key.remove(&key);
                self.meter.charge_memcpy(max);
            }
        }
        self.apply_effects(effects);
        req
    }

    /// Is send done.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.done_sends.contains(&req)
    }

    /// True once the receive completed *and* any completion-time unpack
    /// has been accounted.
    pub fn is_recv_done(&mut self, req: RecvReqId) -> bool {
        if !self.matching.is_done(req) {
            return false;
        }
        if let Some(total) = self.pending_unpack.remove(&req) {
            // MPICH dispatches from the temporary area exactly once,
            // when the library observes completion.
            self.meter.charge_memcpy(total);
        }
        true
    }

    /// Try take recv.
    pub fn try_take_recv(&mut self, req: RecvReqId) -> Option<RecvDone> {
        if !self.is_recv_done(req) {
            return None;
        }
        self.matching.try_take_done(req)
    }

    /// Non-destructive probe (MPI_Iprobe-style).
    pub fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.matching.probe(src, tag)
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::ChargeCopy(bytes) => self.meter.charge_memcpy(bytes),
                Effect::SendCts {
                    dst,
                    tag,
                    seq,
                    total,
                } => {
                    let msg = Msg::Cts { tag, seq, total };
                    self.post_msg(dst, &msg, vec![]).expect("transport failure");
                }
                // The baseline runs over a perfect fabric: duplicates
                // never occur, so there is nothing to count.
                Effect::DuplicateDropped => {}
            }
        }
    }

    fn complete_send(&mut self, req: SendReqId) {
        let remaining = self.sends.get_mut(&req).expect("unknown send");
        *remaining -= 1;
        if *remaining == 0 {
            self.sends.remove(&req);
            self.done_sends.insert(req);
        }
    }

    fn send_rdv_data(&mut self, dst: NodeId, tag: Tag, seq: SeqNo) {
        let key = (dst, tag, seq);
        let (data, req) = self
            .rdv_wait_cts
            .remove(&key)
            .expect("CTS for a rendezvous we never announced");
        self.rdv_tx.insert(
            key,
            RdvTx {
                sent: 0,
                total: data.len(),
                req,
            },
        );
        // Push every chunk now; the NIC queue pipelines them.
        let chunk_len = self
            .cfg
            .rdv_chunk
            .min(self.driver.caps().mtu.saturating_sub(HEADER_LEN))
            .max(1);
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + chunk_len).min(data.len());
            let msg = Msg::RdvChunk {
                tag,
                seq,
                offset: u32::try_from(offset).expect("message above 4 GiB"),
                last: end == data.len(),
                payload: &data[offset..end],
            };
            self.post_msg(
                dst,
                &msg,
                vec![TxDone::RdvBytes {
                    key,
                    bytes: end - offset,
                }],
            )
            .expect("transport failure");
            offset = end;
        }
    }

    fn handle_msg(&mut self, src: NodeId, wire: &[u8]) -> NetResult<()> {
        self.stats.messages_received += 1;
        self.meter.charge_ns(self.cfg.per_message_ns);
        let msg = decode(wire).map_err(|e| {
            nmad_net::NetError::Protocol(format!("malformed message from {src}: {e}"))
        })?;
        match msg {
            Msg::Eager { tag, seq, payload } => {
                // The direct baseline stays copy-based on purpose: it
                // bounces the eager payload through an owned buffer the
                // way a classical library would.
                let fx = self
                    .matching
                    .on_data(src, tag, seq, payload.to_vec().into());
                self.apply_effects(fx);
                self.note_unpack(src, tag, seq, payload.len(), payload.len());
            }
            Msg::Rts { tag, seq, total } => {
                let fx = self.matching.on_rts(src, tag, seq, total);
                self.apply_effects(fx);
            }
            Msg::Cts { tag, seq, .. } => self.send_rdv_data(src, tag, seq),
            Msg::RdvChunk {
                tag,
                seq,
                offset,
                last: _,
                payload,
            } => {
                let zero_copy = self.driver.caps().supports_rdma;
                let fx = self
                    .matching
                    .on_rdv_chunk(src, tag, seq, offset, payload, zero_copy);
                self.apply_effects(fx);
                self.note_unpack(
                    src,
                    tag,
                    seq,
                    payload.len(),
                    offset as usize + payload.len(),
                );
            }
        }
        Ok(())
    }

    /// Accounts datatype unpack costs for arrived data on (src, tag,
    /// seq): per-chunk modes charge now, at-completion modes accumulate.
    fn note_unpack(&mut self, src: NodeId, tag: Tag, seq: SeqNo, chunk: usize, high_water: usize) {
        let key = (src, tag, seq);
        let Some(&mode) = self.unpack_modes.get(&key) else {
            return;
        };
        match mode {
            UnpackMode::None => {}
            UnpackMode::PerChunk => {
                self.meter.charge_memcpy(chunk);
                if let Some(&req) = self.recv_key.get(&key) {
                    if self.matching.is_done(req) {
                        self.unpack_modes.remove(&key);
                        self.recv_key.remove(&key);
                    }
                }
            }
            UnpackMode::AtCompletion => {
                let req = *self.recv_key.get(&key).expect("mode without req");
                let total = self.pending_unpack.entry(req).or_insert(0);
                *total = (*total).max(high_water);
                if self.matching.is_done(req) {
                    self.unpack_modes.remove(&key);
                    self.recv_key.remove(&key);
                }
            }
        }
    }

    /// One pump: drain receives and harvest transmit completions.
    /// There is nothing to refill — direct mapping posts eagerly.
    pub fn try_progress(&mut self) -> NetResult<bool> {
        let mut any = false;
        self.driver.pump()?;
        while let Some(frame) = self.driver.poll_recv()? {
            self.handle_msg(frame.src, &frame.payload)?;
            any = true;
        }
        while let Some(handle) = self.inflight.front().map(|(h, _)| *h) {
            if !self.driver.test_send(handle)? {
                break;
            }
            let (_, dones) = self.inflight.pop_front().expect("checked");
            for done in dones {
                match done {
                    TxDone::Unit(req) => self.complete_send(req),
                    TxDone::RdvBytes { key, bytes } => {
                        let finished = {
                            let tx = self.rdv_tx.get_mut(&key).expect("unknown rdv tx");
                            tx.sent += bytes;
                            (tx.sent == tx.total).then_some(tx.req)
                        };
                        if let Some(req) = finished {
                            self.rdv_tx.remove(&key);
                            self.complete_send(req);
                        }
                    }
                }
            }
            any = true;
        }
        Ok(any)
    }

    /// [`try_progress`](Self::try_progress), panicking on transport
    /// failure.
    pub fn progress(&mut self) -> bool {
        self.try_progress().expect("transport failure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_net::sim::SimDriver;
    use nmad_sim::{nic, shared_world, RailId, SharedWorld, SimConfig};

    fn pair(cfg: fn() -> DirectConfig) -> (SharedWorld, DirectEngine, DirectEngine) {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mk = |n: u32| {
            let d = SimDriver::new(world.clone(), NodeId(n), RailId(0));
            let m = Box::new(d.meter());
            DirectEngine::new(Box::new(d), m, cfg())
        };
        (world.clone(), mk(0), mk(1))
    }

    fn pump(
        world: &SharedWorld,
        a: &mut DirectEngine,
        b: &mut DirectEngine,
        mut done: impl FnMut(&mut DirectEngine, &mut DirectEngine) -> bool,
    ) {
        for _ in 0..100_000 {
            let mut moved = a.progress();
            moved |= b.progress();
            if done(a, b) {
                return;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock: {}", world.lock().pending_summary());
            }
        }
        panic!("did not converge");
    }

    #[test]
    fn eager_roundtrip() {
        let (world, mut a, mut b) = pair(mpich_config);
        let s = a.isend(NodeId(1), Tag(1), &b"direct"[..]);
        let r = b.post_recv(NodeId(0), Tag(1), 32, UnpackMode::None);
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, b"direct");
    }

    #[test]
    fn rendezvous_roundtrip_large_message() {
        let (world, mut a, mut b) = pair(mpich_config);
        let body: Vec<u8> = (0..150_000u32).map(|i| (i % 127) as u8).collect();
        let s = a.isend(NodeId(1), Tag(2), body.clone());
        let r = b.post_recv(NodeId(0), Tag(2), body.len(), UnpackMode::None);
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, body);
    }

    #[test]
    fn one_message_per_request_no_aggregation() {
        let (world, mut a, mut b) = pair(mpich_config);
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![0u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8)
            .map(|t| b.post_recv(NodeId(0), Tag(t), 64, UnpackMode::None))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert_eq!(a.stats().messages_sent, 8, "the defining baseline property");
    }

    #[test]
    fn at_completion_unpack_charges_cpu_once() {
        let (world, mut a, mut b) = pair(mpich_config);
        let body = vec![9u8; 200_000];
        let s = a.isend(NodeId(1), Tag(0), body.clone());
        let r = b.post_recv(NodeId(0), Tag(0), body.len(), UnpackMode::AtCompletion);
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        let cpu_after = world.lock().cpu_free_at(NodeId(1));
        // The unpack charge pushed node 1's CPU account past `now` by
        // roughly memcpy(200 KB) ≈ 77 us.
        let lag = cpu_after.saturating_since(world.lock().now());
        assert!(
            lag.as_us_f64() > 50.0,
            "expected completion-time unpack charge, lag {lag}"
        );
    }

    #[test]
    fn unexpected_then_posted_recv_still_completes() {
        let (world, mut a, mut b) = pair(ompi_config);
        let s = a.isend(NodeId(1), Tag(5), &b"early"[..]);
        pump(&world, &mut a, &mut b, |a, _| a.is_send_done(s));
        // Drain delivery into the unexpected queue.
        pump(&world, &mut a, &mut b, |_, b| {
            b.stats().messages_received > 0
        });
        let r = b.post_recv(NodeId(0), Tag(5), 16, UnpackMode::None);
        assert!(b.is_recv_done(r));
        assert_eq!(b.try_take_recv(r).unwrap().data, b"early");
    }
}
