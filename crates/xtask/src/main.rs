//! Workspace automation tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! * `analyze` — the full 13-rule static-analysis catalog
//!   ([`nmad_verify::analyze`]): the 8 lexical rules plus the 5
//!   structural hot-path families (panic freedom, allocation audit,
//!   blocking calls, lock-order acyclicity, atomic-ordering audit)
//!   over the workspace call graph. Exit 0 when clean; `--json` for
//!   machine-readable output, `--list-rules` to print the catalog.
//! * `lint` — the lexical subset only (kept for quick iteration and
//!   older CI invocations; `analyze` subsumes it).
//! * `bench-diff` — compare freshly generated `BENCH_*.json` reports
//!   against the committed `BENCH_baseline/`; exit 1 on any metric
//!   regressing past the tolerance (see [`bench_diff`]). `--json PATH`
//!   additionally writes the delta table as JSON.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench_diff;
mod json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--json")),
        Some("analyze") => {
            if args.iter().any(|a| a == "--list-rules") {
                for (name, description) in nmad_verify::analyze::rule_catalog() {
                    println!(
                        "{name}\t{}",
                        description.split_whitespace().collect::<Vec<_>>().join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            analyze(args.iter().any(|a| a == "--json"))
        }
        Some("bench-diff") => bench_diff::bench_diff(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- analyze [--json | --list-rules]");
    eprintln!("       cargo run -p xtask -- lint [--json]");
    eprintln!(
        "       cargo run -p xtask -- bench-diff [--tolerance 20%] \
         [--baseline BENCH_baseline] [--current .] [--json PATH]"
    );
}

/// Workspace root: xtask lives at <root>/crates/xtask.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Collects every tracked Rust source under the workspace, skipping
/// build output, VCS metadata, and the committed mutant fixtures (they
/// exist to be flagged — the analyzer's own tests feed them in).
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(err) => {
                eprintln!("warning: cannot read {}: {err}", dir.display());
                continue;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Reads every workspace source as (relative path, contents).
fn read_sources(root: &Path) -> Vec<(String, String)> {
    rust_sources(root)
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(root)
                .expect("file under workspace root")
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&path) {
                Ok(raw) => Some((rel, raw)),
                Err(err) => {
                    eprintln!("warning: cannot read {}: {err}", path.display());
                    None
                }
            }
        })
        .collect()
}

fn emit_violations_json(
    task: &str,
    violations: &[nmad_verify::lint::Violation],
    checked: usize,
    rules: usize,
) {
    let mut s = format!("{{\"task\":\"{task}\",\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\"}}",
            v.rule,
            json::escape(&v.file),
            v.line,
            json::escape(&v.excerpt)
        ));
    }
    s.push_str(&format!(
        "],\"files_checked\":{checked},\"rules\":{rules}}}"
    ));
    println!("{s}");
}

fn analyze(json: bool) -> ExitCode {
    let root = workspace_root();
    let files = read_sources(&root);
    let violations = nmad_verify::analyze::analyze_files(&files);
    let rules = nmad_verify::analyze::rule_catalog().len();
    if json {
        emit_violations_json("analyze", &violations, files.len(), rules);
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "analyze: {} file(s) checked against {} rule(s), {} violation(s)",
            files.len(),
            rules,
            violations.len()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let files = read_sources(&root);
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (rel, raw) in &files {
        checked += 1;
        violations.extend(nmad_verify::lint::lint_file(rel, raw));
    }

    if json {
        emit_violations_json("lint", &violations, checked, nmad_verify::lint::RULES.len());
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "lint: {} file(s) checked against {} rule(s), {} violation(s)",
            checked,
            nmad_verify::lint::RULES.len(),
            violations.len()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
