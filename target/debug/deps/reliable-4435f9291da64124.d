/root/repo/target/debug/deps/reliable-4435f9291da64124.d: crates/bench/benches/reliable.rs Cargo.toml

/root/repo/target/debug/deps/libreliable-4435f9291da64124.rmeta: crates/bench/benches/reliable.rs Cargo.toml

crates/bench/benches/reliable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
