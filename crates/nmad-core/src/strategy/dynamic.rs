//! Dynamic strategy selection (paper §3.2: "We thus propose a
//! (dynamically in the future) selectable optimization function instead
//! of a fixed optimizing heuristic").
//!
//! [`StratDynamic`] implements that future-work item: it inspects the
//! window state each time a NIC asks for work and picks the most
//! appropriate elementary tactic —
//!
//! * a lone segment at the window front → the latency-first FIFO path
//!   (no aggregation machinery on the critical path);
//! * a backlog of small segments → aggregation with reordering;
//! * a mix containing rendezvous-sized segments → reordering, so RTS
//!   handshakes overlap the small traffic.
//!
//! Applications can also force a tactic per phase via
//! [`StratDynamic::force`], modelling the paper's "hints given by the
//! application itself with respect with the packet scheduling policy".

use super::{FramePlan, NicView, StratAggreg, StratDefault, StratReorder, Strategy};
use crate::window::Window;
use nmad_net::Capabilities;

/// The elementary tactics the selector can choose between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tactic {
    /// FIFO, one segment per frame (latency first).
    Latency,
    /// FIFO aggregation (throughput for bursts).
    Aggregate,
    /// Aggregation with reordering (complex layouts, rendezvous mixes).
    Reorder,
}

/// Selection counters, for introspection and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynamicStats {
    /// Times the latency-first tactic was selected.
    pub latency_picks: u64,
    /// Times the aggregation tactic was selected.
    pub aggregate_picks: u64,
    /// Times the reordering tactic was selected.
    pub reorder_picks: u64,
}

/// See the module documentation.
pub struct StratDynamic {
    latency: StratDefault,
    aggregate: StratAggreg,
    reorder: StratReorder,
    forced: Option<Tactic>,
    stats: DynamicStats,
}

impl StratDynamic {
    /// A selector with automatic per-frame tactic choice.
    pub fn new() -> Self {
        StratDynamic {
            latency: StratDefault,
            aggregate: StratAggreg,
            reorder: StratReorder,
            forced: None,
            stats: DynamicStats::default(),
        }
    }

    /// Pins the selector to one tactic (application hint); `None`
    /// returns to automatic selection.
    pub fn force(&mut self, tactic: Option<Tactic>) {
        self.forced = tactic;
    }

    /// Selection counters so far.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    fn select(&self, window: &Window, nic: &NicView<'_>) -> Tactic {
        if let Some(forced) = self.forced {
            return forced;
        }
        let depth = window.depth_for(nic.index);
        if depth <= 1 && !window.has_rdv() {
            return Tactic::Latency;
        }
        // A rendezvous-sized segment in the backlog (or granted data in
        // flight) benefits from the reordering passes; a backlog of
        // uniform small segments only needs plain aggregation.
        let threshold = super::eager_cutoff(nic.caps);
        let has_large = window.common_ref().iter().any(|w| w.len() > threshold);
        if has_large || window.has_rdv() {
            Tactic::Reorder
        } else {
            Tactic::Aggregate
        }
    }
}

impl Default for StratDynamic {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for StratDynamic {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        // A forced tactic is configuration: every shard inherits it.
        let mut clone = StratDynamic::new();
        clone.forced = self.forced;
        Box::new(clone)
    }

    fn init(&mut self, nics: &[Capabilities]) {
        self.latency.init(nics);
        self.aggregate.init(nics);
        self.reorder.init(nics);
    }

    fn on_rail_fault(&mut self, rail: usize) {
        self.latency.on_rail_fault(rail);
        self.aggregate.on_rail_fault(rail);
        self.reorder.on_rail_fault(rail);
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        match self.select(window, nic) {
            Tactic::Latency => {
                self.stats.latency_picks += 1;
                self.latency.schedule(window, nic)
            }
            Tactic::Aggregate => {
                self.stats.aggregate_picks += 1;
                self.aggregate.schedule(window, nic)
            }
            Tactic::Reorder => {
                self.stats.reorder_picks += 1;
                self.reorder.schedule(window, nic)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use bytes::Bytes;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn seg(seq: u32, len: usize) -> PackWrapper {
        PackWrapper {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(seq),
            priority: Priority::Normal,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: seq as u64,
        }
    }

    #[test]
    fn lone_segment_takes_the_latency_path() {
        let caps = caps();
        let mut s = StratDynamic::new();
        let mut w = Window::new(1);
        w.push_segment(seg(0, 64), None);
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        assert!(s.schedule(&mut w, &view).is_some());
        assert_eq!(s.stats().latency_picks, 1);
        assert_eq!(s.stats().aggregate_picks, 0);
    }

    #[test]
    fn backlog_of_smalls_selects_aggregation() {
        let caps = caps();
        let mut s = StratDynamic::new();
        let mut w = Window::new(1);
        for i in 0..8 {
            w.push_segment(seg(i, 64), None);
        }
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        let plan = s.schedule(&mut w, &view).unwrap();
        assert_eq!(plan.entries.len(), 8, "backlog must coalesce");
        assert_eq!(s.stats().aggregate_picks, 1);
    }

    #[test]
    fn rendezvous_mix_selects_reordering() {
        let caps = caps();
        let mut s = StratDynamic::new();
        let mut w = Window::new(1);
        w.push_segment(seg(0, caps.rdv_threshold + 1), None);
        w.push_segment(seg(1, 64), None);
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        s.schedule(&mut w, &view);
        assert_eq!(s.stats().reorder_picks, 1);
    }

    #[test]
    fn forced_tactic_overrides_selection() {
        let caps = caps();
        let mut s = StratDynamic::new();
        s.force(Some(Tactic::Latency));
        let mut w = Window::new(1);
        for i in 0..8 {
            w.push_segment(seg(i, 64), None);
        }
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        let plan = s.schedule(&mut w, &view).unwrap();
        assert_eq!(plan.entries.len(), 1, "forced latency path: no coalescing");
        assert_eq!(s.stats().latency_picks, 1);
        s.force(None);
        s.schedule(&mut w, &view);
        assert_eq!(s.stats().aggregate_picks, 1, "automatic selection resumed");
    }
}
