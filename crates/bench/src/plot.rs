//! ASCII log-log charts for the figure harnesses.
//!
//! The paper's evaluation figures are log-log gnuplot charts; the
//! harnesses print the same series as aligned tables *and* as a compact
//! ASCII chart so the curve shapes (parallel lines, crossovers,
//! convergence at the right edge) are visible straight from the
//! terminal.

use std::fmt::Write as _;

/// One named series of (x, y) points, both positive.
#[derive(Clone, Debug)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series' points.
    pub glyph: char,
}

impl Series {
    pub fn new(name: impl Into<String>, glyph: char) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            glyph,
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        assert!(x > 0.0 && y > 0.0, "log-log plots need positive values");
        self.points.push((x, y));
    }
}

/// A log-log chart with labelled axes.
pub struct LogLogChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: usize,
    height: usize,
}

impl LogLogChart {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LogLogChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 64,
            height: 18,
        }
    }

    /// Overrides the plot area size (columns × rows).
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 16 && height >= 6, "chart too small to read");
        self.width = width;
        self.height = height;
        self
    }

    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter());
        let first = pts.next()?;
        let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
        for &(x, y) in self.series.iter().flat_map(|s| s.points.iter()) {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Avoid a degenerate (zero-span) axis.
        if x0 == x1 {
            x1 = x0 * 2.0;
        }
        if y0 == y1 {
            y1 = y0 * 2.0;
        }
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            return format!("{} (no data)\n", self.title);
        };
        let (lx0, lx1) = (x0.log10(), x1.log10());
        let (ly0, ly1) = (y0.log10(), y1.log10());
        let col = |x: f64| -> usize {
            let f = (x.log10() - lx0) / (lx1 - lx0);
            ((f * (self.width - 1) as f64).round() as usize).min(self.width - 1)
        };
        let row = |y: f64| -> usize {
            let f = (y.log10() - ly0) / (ly1 - ly0);
            let r = (f * (self.height - 1) as f64).round() as usize;
            (self.height - 1) - r.min(self.height - 1)
        };

        let mut grid = vec![vec![' '; self.width]; self.height];
        for series in &self.series {
            for &(x, y) in &series.points {
                let (c, r) = (col(x), row(y));
                // First-writer wins where curves overlap; overlap is
                // itself informative (curves coincide).
                if grid[r][c] == ' ' {
                    grid[r][c] = series.glyph;
                }
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{} (log scale)", self.y_label);
        let y_hi = format!("{y1:.3e}");
        let y_lo = format!("{y0:.3e}");
        let margin = y_hi.len().max(y_lo.len());
        for (r, line) in grid.iter().enumerate() {
            let label = if r == 0 {
                &y_hi
            } else if r == self.height - 1 {
                &y_lo
            } else {
                ""
            };
            let _ = writeln!(out, "{label:>margin$} |{}", line.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:margin$} +{}", "", "-".repeat(self.width),);
        let x_lo = format!("{x0:.0}");
        let x_hi = format!("{x1:.0}");
        let pad = self.width.saturating_sub(x_lo.len() + x_hi.len());
        let _ = writeln!(out, "{:margin$}  {x_lo}{}{x_hi}", "", " ".repeat(pad));
        let _ = writeln!(out, "{:margin$}  {} (log scale)", "", self.x_label);
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{} {}", s.glyph, s.name))
            .collect();
        let _ = writeln!(out, "{:margin$}  legend: {}", "", legend.join("   "));
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> LogLogChart {
        let mut chart = LogLogChart::new("test chart", "size", "us");
        let mut a = Series::new("alpha", '*');
        let mut b = Series::new("beta", 'o');
        for i in 0..10 {
            let x = 4.0 * 2f64.powi(i);
            a.push(x, 3.0 + x / 100.0);
            b.push(x, 6.0 + x / 50.0);
        }
        chart.add(a);
        chart.add(b);
        chart
    }

    #[test]
    fn renders_grid_with_legend_and_labels() {
        let text = sample_chart().render();
        assert!(text.contains("test chart"));
        assert!(text.contains("legend: * alpha   o beta"));
        assert!(text.contains("us (log scale)"));
        assert!(text.contains("size (log scale)"));
        assert!(text.contains('*') && text.contains('o'));
    }

    #[test]
    fn empty_chart_says_so() {
        let chart = LogLogChart::new("empty", "x", "y");
        assert!(chart.render().contains("no data"));
    }

    #[test]
    fn higher_series_plots_above_lower() {
        let text = sample_chart().render();
        // beta ('o', always above alpha) must first appear on an
        // earlier line than alpha's first appearance.
        let first_o = text.lines().position(|l| l.contains('o')).unwrap();
        let first_star = text.lines().position(|l| l.contains('*')).unwrap();
        assert!(first_o <= first_star, "o at {first_o}, * at {first_star}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_values() {
        let mut s = Series::new("bad", 'x');
        s.push(0.0, 1.0);
    }

    #[test]
    fn single_point_does_not_panic() {
        let mut chart = LogLogChart::new("one", "x", "y");
        let mut s = Series::new("solo", '#');
        s.push(10.0, 5.0);
        chart.add(s);
        assert!(chart.render().contains('#'));
    }
}
