/root/repo/target/debug/deps/newmadeleine-049f8dec5ee2f4b1.d: src/lib.rs

/root/repo/target/debug/deps/newmadeleine-049f8dec5ee2f4b1: src/lib.rs

src/lib.rs:
