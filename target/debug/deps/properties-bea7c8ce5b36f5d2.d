/root/repo/target/debug/deps/properties-bea7c8ce5b36f5d2.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bea7c8ce5b36f5d2.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
