/root/repo/target/debug/deps/nmadctl-909a4738c7cf0a5f.d: src/bin/nmadctl.rs Cargo.toml

/root/repo/target/debug/deps/libnmadctl-909a4738c7cf0a5f.rmeta: src/bin/nmadctl.rs Cargo.toml

src/bin/nmadctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
