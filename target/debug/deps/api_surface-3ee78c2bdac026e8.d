/root/repo/target/debug/deps/api_surface-3ee78c2bdac026e8.d: tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-3ee78c2bdac026e8: tests/api_surface.rs

tests/api_surface.rs:
