//! Aggregation with reordering (§5.3).
//!
//! The derived-datatype experiment needs more than FIFO aggregation: a
//! large block sitting at the window front must not prevent the small
//! blocks behind it from coalescing. This strategy "aggregates all the
//! small blocks (using messages reordering) with the rendez-vous
//! requests of the large blocks": for the chosen destination it first
//! pulls high-priority segments, then turns every threshold-exceeding
//! segment into an RTS, then fills the remaining budget with any small
//! segment — skipping over segments that do not fit. The receiver
//! restores per-flow order from sequence numbers, so reordering is
//! semantically invisible.

use super::{
    eager_cutoff, plan_ctrl, plan_rdv_chunk, Budget, FramePlan, NicView, PlanEntry, Strategy,
};
use crate::window::Window;

/// See the module documentation.
#[derive(Debug, Default)]
pub struct StratReorder;

impl Strategy for StratReorder {
    fn name(&self) -> &'static str {
        "reorder"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        Box::new(StratReorder)
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        let dst = window.next_dst(nic.index)?;
        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);
        let threshold = eager_cutoff(nic.caps);

        plan_ctrl(&mut plan, window, &mut budget);
        plan_rdv_chunk(&mut plan, window, &mut budget, usize::MAX);

        // Pass 1: expedited segments (Urgent/High lanes) jump the
        // whole queue (the RPC service-id scenario of §2).
        while budget.fits_bare() {
            let Some((w, jumped)) = window.take_first_matching_tracked(nic.index, |w| {
                w.dst == dst
                    && w.priority.is_expedited()
                    && (w.len() > threshold || budget.fits_data(w.len()))
            }) else {
                break;
            };
            plan.reordered += u32::from(jumped);
            push(&mut plan, &mut budget, threshold, w);
        }

        // Pass 2: every large segment contributes its RTS now, so all
        // the rendezvous handshakes overlap.
        while budget.fits_bare() {
            let Some((w, jumped)) = window
                .take_first_matching_tracked(nic.index, |w| w.dst == dst && w.len() > threshold)
            else {
                break;
            };
            plan.reordered += u32::from(jumped);
            push(&mut plan, &mut budget, threshold, w);
        }

        // Pass 3: fill with small segments, skipping any that do not
        // fit the remaining budget (this is the reordering).
        while let Some((w, jumped)) = window
            .take_first_matching_tracked(nic.index, |w| w.dst == dst && budget.fits_data(w.len()))
        {
            plan.reordered += u32::from(jumped);
            push(&mut plan, &mut budget, threshold, w);
        }

        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }
}

fn push(
    plan: &mut FramePlan,
    budget: &mut Budget,
    threshold: usize,
    w: crate::segment::PackWrapper,
) {
    if w.len() > threshold {
        budget.add_bare();
        plan.entries.push(PlanEntry::Rts(w));
    } else {
        budget.add_data(w.len());
        plan.entries.push(PlanEntry::Data(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use bytes::Bytes;
    use nmad_net::Capabilities;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn seg(tag: u32, seq: u32, len: usize, prio: Priority) -> PackWrapper {
        PackWrapper {
            dst: NodeId(1),
            tag: Tag(tag),
            seq: SeqNo(seq),
            priority: prio,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: seq as u64,
        }
    }

    fn view(caps: &Capabilities) -> NicView<'_> {
        NicView { index: 0, caps }
    }

    fn kinds(plan: &FramePlan) -> Vec<&'static str> {
        plan.entries
            .iter()
            .map(|e| match e {
                PlanEntry::Data(_) => "data",
                PlanEntry::Rts(_) => "rts",
                PlanEntry::Cts(_) => "cts",
                PlanEntry::RdvChunk(_) => "chunk",
            })
            .collect()
    }

    #[test]
    fn datatype_pattern_coalesces_smalls_with_rts() {
        // The fig. 4 workload: alternating small (64 B) and large
        // (256 KB) blocks. One frame must carry every small block plus
        // one RTS per large block.
        let caps = caps();
        let mut w = Window::new(1);
        for i in 0..4u32 {
            w.push_segment(seg(0, 2 * i, 64, Priority::Normal), None);
            w.push_segment(seg(0, 2 * i + 1, 256 * 1024, Priority::Normal), None);
        }
        let mut s = StratReorder;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(
            kinds(&plan),
            ["rts", "rts", "rts", "rts", "data", "data", "data", "data"],
            "all RTS first, then all small blocks, in one frame"
        );
        assert!(w.is_empty());
        assert!(
            plan.reordered > 0,
            "interleaving smalls with larges is a reordering decision"
        );
    }

    #[test]
    fn high_priority_segments_jump_the_queue() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(0, 0, 128, Priority::Normal), None);
        w.push_segment(seg(1, 0, 16, Priority::High), None);
        let mut s = StratReorder;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        match &plan.entries[0] {
            PlanEntry::Data(d) => assert_eq!(d.tag, Tag(1), "high priority first"),
            e => panic!("unexpected {e:?}"),
        }
        assert_eq!(plan.reordered, 1, "exactly one queue jump");
    }

    #[test]
    fn skips_non_fitting_segment_to_aggregate_later_ones() {
        let caps = caps();
        let big_small = caps.rdv_threshold - 10; // eager but budget-filling
        let mut w = Window::new(1);
        w.push_segment(seg(0, 0, 100, Priority::Normal), None);
        w.push_segment(seg(1, 0, big_small, Priority::Normal), None); // won't fit after #0
        w.push_segment(seg(2, 0, 100, Priority::Normal), None); // fits; must be picked
        let mut s = StratReorder;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        let tags: Vec<Tag> = plan
            .entries
            .iter()
            .map(|e| match e {
                PlanEntry::Data(d) => d.tag,
                e => panic!("unexpected {e:?}"),
            })
            .collect();
        assert_eq!(tags, vec![Tag(0), Tag(2)], "skipped the oversized middle");
        assert_eq!(plan.reordered, 1, "only the skip over #1 counts");
        // The skipped one goes out next, in order.
        let plan2 = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(plan2.entries.len(), 1);
        assert_eq!(plan2.reordered, 0);
    }

    #[test]
    fn drains_completely_over_successive_frames() {
        let caps = caps();
        let mut w = Window::new(1);
        for seq in 0..40 {
            w.push_segment(seg(0, seq, 3000, Priority::Normal), None);
        }
        let mut s = StratReorder;
        let mut total = 0;
        while let Some(p) = s.schedule(&mut w, &view(&caps)) {
            total += p.entries.len();
        }
        assert_eq!(total, 40);
        assert!(w.is_empty());
    }
}
