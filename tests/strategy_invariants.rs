//! Property tests on the scheduling strategies themselves: for ANY
//! window content, every built-in strategy must respect the frame
//! budget (cumulated eager length ≤ rendezvous threshold, frame ≤ MTU),
//! classify segments correctly (eager vs RTS), keep frames
//! single-destination, and drain the window without loss or
//! duplication.

use bytes::Bytes;
use newmadeleine::core::eager_cutoff;
use newmadeleine::core::wire::{ENTRY_HEADER_LEN, FRAME_HEADER_LEN};
use newmadeleine::core::{
    PackWrapper, PlanEntry, Priority, SendReqId, SeqNo, StratAggreg, StratDefault, StratDynamic,
    StratMultirail, StratReorder, Strategy, Tag, Window,
};
use newmadeleine::net::Capabilities;
use newmadeleine::sim::{nic, NodeId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct GenSeg {
    dst: u32,
    tag: u32,
    len: usize,
    high_priority: bool,
}

fn seg_gen() -> impl proptest::strategy::Strategy<Value = GenSeg> {
    use proptest::strategy::Strategy as _;
    (
        0u32..3,
        0u32..5,
        prop_oneof![
            3 => 0usize..2_000,
            1 => 20_000usize..80_000
        ],
        proptest::bool::ANY,
    )
        .prop_map(|(dst, tag, len, high_priority)| GenSeg {
            dst: dst + 1, // node 0 is the sender
            tag,
            len,
            high_priority,
        })
}

fn strategies() -> Vec<(&'static str, Box<dyn Strategy>)> {
    let caps = [Capabilities::from_nic(&nic::mx_myri10g())];
    let mut out: Vec<(&'static str, Box<dyn Strategy>)> = vec![
        ("default", Box::new(StratDefault)),
        ("aggreg", Box::new(StratAggreg)),
        ("reorder", Box::new(StratReorder)),
        ("multirail", Box::new(StratMultirail::default())),
        ("dynamic", Box::new(StratDynamic::new())),
    ];
    for (_, s) in &mut out {
        s.init(&caps);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_respects_frame_budgets_and_drains(
        segs in proptest::collection::vec(seg_gen(), 0..24),
        mtu_limited in proptest::bool::ANY,
    ) {
        let mut caps = Capabilities::from_nic(&nic::mx_myri10g());
        if mtu_limited {
            caps.mtu = 8 * 1024;
        }
        for (name, mut strat) in strategies() {
            let mut window = Window::new(1);
            for (i, g) in segs.iter().enumerate() {
                window.push_segment(
                    PackWrapper {
                        dst: NodeId(g.dst),
                        tag: Tag(g.tag),
                        seq: SeqNo(i as u32),
                        priority: if g.high_priority { Priority::High } else { Priority::Normal },
                        data: Bytes::from(vec![0u8; g.len]),
                        req: SendReqId(i as u64),
                        order: i as u64,
                    },
                    None,
                );
            }

            let view = newmadeleine::core::NicView { index: 0, caps: &caps };
            let mut scheduled: Vec<(u32, u32, u32, usize)> = Vec::new(); // dst,tag,seq,len
            let mut frames = 0;
            while let Some(plan) = strat.schedule(&mut window, &view) {
                frames += 1;
                prop_assert!(frames <= 10_000, "{name}: runaway scheduling");
                prop_assert!(!plan.is_empty(), "{name}: empty frame");
                let mut eager_payload = 0usize;
                let mut frame_len = FRAME_HEADER_LEN;
                for entry in &plan.entries {
                    match entry {
                        PlanEntry::Data(w) => {
                            prop_assert_eq!(w.dst, plan.dst, "{}: foreign dst", name);
                            prop_assert!(
                                w.len() <= eager_cutoff(&caps),
                                "{name}: oversized eager segment"
                            );
                            eager_payload += w.len();
                            frame_len += ENTRY_HEADER_LEN + w.len();
                            scheduled.push((w.dst.0, w.tag.0, w.seq.0, w.len()));
                        }
                        PlanEntry::Rts(w) => {
                            prop_assert_eq!(w.dst, plan.dst, "{}: foreign dst", name);
                            prop_assert!(
                                w.len() > eager_cutoff(&caps),
                                "{name}: small segment sent via rendezvous"
                            );
                            frame_len += ENTRY_HEADER_LEN;
                            scheduled.push((w.dst.0, w.tag.0, w.seq.0, w.len()));
                        }
                        PlanEntry::Cts(c) => {
                            prop_assert_eq!(c.dst, plan.dst, "{}: foreign ctrl dst", name);
                            frame_len += ENTRY_HEADER_LEN;
                        }
                        PlanEntry::RdvChunk(c) => {
                            prop_assert_eq!(c.dst, plan.dst, "{}: foreign chunk dst", name);
                            frame_len += ENTRY_HEADER_LEN + c.data.len();
                        }
                    }
                }
                prop_assert!(
                    eager_payload <= caps.rdv_threshold,
                    "{name}: cumulated eager {eager_payload} exceeds the aggregation bound"
                );
                prop_assert!(
                    frame_len <= caps.mtu,
                    "{name}: frame {frame_len} exceeds mtu {}",
                    caps.mtu
                );
            }

            // Exactly the submitted segments were scheduled, no loss,
            // no duplication.
            prop_assert!(window.is_empty(), "{name}: window not drained");
            let mut expected: Vec<(u32, u32, u32, usize)> = segs
                .iter()
                .enumerate()
                .map(|(i, g)| (g.dst, g.tag, i as u32, g.len))
                .collect();
            expected.sort_unstable();
            scheduled.sort_unstable();
            prop_assert_eq!(scheduled, expected, "{}: segment set mismatch", name);
        }
    }

    #[test]
    fn fifo_strategies_preserve_per_flow_order(
        segs in proptest::collection::vec(seg_gen(), 0..24),
    ) {
        // default and aggreg never reorder within a flow; reorder and
        // dynamic may, but per-flow sequence numbers must still appear
        // in increasing order *per flow* for FIFO strategies.
        let caps = Capabilities::from_nic(&nic::mx_myri10g());
        for (name, mut strat) in strategies().into_iter().take(2) {
            let mut window = Window::new(1);
            for (i, g) in segs.iter().enumerate() {
                window.push_segment(
                    PackWrapper {
                        dst: NodeId(g.dst),
                        tag: Tag(g.tag),
                        seq: SeqNo(i as u32),
                        priority: Priority::Normal,
                        data: Bytes::from(vec![0u8; g.len]),
                        req: SendReqId(i as u64),
                        order: i as u64,
                    },
                    None,
                );
            }
            let view = newmadeleine::core::NicView { index: 0, caps: &caps };
            let mut last_seq: std::collections::HashMap<(u32, u32), u32> = Default::default();
            while let Some(plan) = strat.schedule(&mut window, &view) {
                for entry in &plan.entries {
                    let (dst, tag, seq) = match entry {
                        PlanEntry::Data(w) | PlanEntry::Rts(w) => (w.dst.0, w.tag.0, w.seq.0),
                        _ => continue,
                    };
                    if let Some(&prev) = last_seq.get(&(dst, tag)) {
                        prop_assert!(
                            seq > prev,
                            "{name}: flow ({dst},{tag}) scheduled {seq} after {prev}"
                        );
                    }
                    last_seq.insert((dst, tag), seq);
                }
            }
        }
    }
}
