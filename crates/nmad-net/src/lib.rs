//! # nmad-net — network driver abstraction
//!
//! The [`Driver`] trait is the reproduction of the paper's minimal
//! transfer-layer network API (§4): post a (gather) send, test it for
//! completion, poll for received frames — plus the capability record the
//! engine collects at initialisation (rendezvous threshold,
//! gather/scatter, RDMA).
//!
//! Backends:
//!
//! * [`sim::SimDriver`] — binds a node × rail of the discrete-event
//!   cluster of [`nmad_sim`]; substitutes for MX, Elan, GM and SISCI;
//! * [`tcp::TcpDriver`] — real non-blocking TCP sockets (the paper's
//!   TCP/Ethernet port);
//! * [`mem::MemDriver`] — in-process channels for threaded tests;
//! * [`lossy::LossyDriver`] / [`reliable::ReliableDriver`] /
//!   [`selective::SelectiveDriver`] — driver decorators: seeded frame
//!   loss plus go-back-N and selective-repeat reliability, extending
//!   the engine to lossy datagram fabrics.
//!
//! [`fault::FaultPlan`] adds deterministic, seeded fault injection
//! (link flaps, NIC death, corruption, latency spikes) that any
//! simulated driver consumes through [`Driver::install_faults`];
//! [`backoff::BackoffPolicy`] is the shared exponential-backoff
//! schedule the retry loops (reliability timers, TCP sleeps) draw from.
//!
//! [`CpuMeter`] routes the engine's software costs (scheduler
//! inspection, staging copies) either to the simulated CPU account or to
//! nowhere (real transports pay in real time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod driver;
pub mod endpoint;
pub mod fault;
pub mod lossy;
pub mod mem;
pub mod poller;
pub mod reliable;
pub mod selective;
pub mod sim;
pub mod tcp;

pub use backoff::{Backoff, BackoffPolicy};
pub use driver::{
    Capabilities, CpuMeter, Driver, LinkStats, NetError, NetResult, NullMeter, RxFrame, SendHandle,
    StrategyDecision,
};
pub use endpoint::{EndpointStats, EndpointTable, Token};
pub use fault::{
    checksum32, DetRng, FaultEvent, FaultInjector, FaultPlan, FaultStats, FaultVerdict,
};
pub use lossy::{LossStats, LossyDriver};
pub use mem::{mem_fabric, MemDriver};
pub use poller::{Poller, PollerStats};
pub use reliable::{ReliableDriver, ReliableStats};
pub use selective::{SelectiveDriver, SelectiveStats};
pub use sim::{SimCpuMeter, SimDriver};
pub use tcp::TcpDriver;

// Re-export the identifiers drivers speak in.
pub use nmad_sim::{NodeId, RailId};
