//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of `bytes::Bytes` this workspace uses: a
//! cheaply cloneable, immutable, reference-counted byte buffer with
//! zero-copy `slice`. See `shims/README.md` for the shim policy.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of shared memory.
///
/// Backed by an `Arc<Vec<u8>>` so that `From<Vec<u8>>` is zero-copy
/// and a uniquely-owned buffer can be recovered with
/// [`try_unwrap`](Bytes::try_unwrap) for recycling (frame pooling).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copied here; the real crate borrows it —
    /// semantics are identical for immutable data).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same backing storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end"); // PANIC-OK: slice range contract mirrors std
        assert!(end <= len, "range end {end} out of bounds (len {len})"); // PANIC-OK: slice range contract mirrors std
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// View of the bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Recovers the full backing buffer when this handle is its sole
    /// owner (no clones or slices alive), so the allocation can be
    /// recycled. Returns the handle unchanged otherwise. Note the
    /// recovered `Vec` is the *whole* backing store, not the sliced
    /// view — callers recycle it as raw capacity.
    pub fn try_unwrap(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Bytes { data, start, end })
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert!(Arc::ptr_eq(&a.data, &s.data));
        let nested = s.slice(1..);
        assert_eq!(&nested[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![0u8; 3]).slice(0..4);
    }

    #[test]
    fn comparisons_match_contents() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(a, b"abc");
        assert_eq!(a, vec![b'a', b'b', b'c']);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes_bytes() {
        let a = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(format!("{a:?}"), "b\"hi\\x00\"");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![9u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "no copy on From<Vec<u8>>");
    }

    #[test]
    fn try_unwrap_recovers_unique_buffers_only() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let clone = b.clone();
        let b = b.try_unwrap().expect_err("clone alive, must not unwrap");
        drop(clone);
        // A sliced view still recovers the *whole* backing store once
        // it is the only handle left.
        let s = b.slice(1..3);
        drop(b);
        assert_eq!(s.try_unwrap().expect("sole owner"), vec![1, 2, 3, 4]);
    }
}
