//! The NewMadeleine engine: collect layer, scheduler, transfer layer.
//!
//! One [`NmadEngine`] instance runs per node. It owns:
//!
//! * the node's drivers (one per NIC/rail) — the transfer layer;
//! * the optimization [`Window`] — where submitted segments accumulate
//!   while NICs are busy;
//! * a pluggable [`Strategy`] — queried whenever a NIC goes idle, to
//!   synthesize the next frame out of the window (§3.2–3.3);
//! * the receiver-side [`Matching`] state.
//!
//! The engine is a polled state machine: [`NmadEngine::progress`] pumps
//! receives, transmit completions and NIC refills once, and reports
//! whether anything moved. On simulated transports the co-simulation
//! loop of [`nmad_sim::runner`] drives it; on real transports any
//! thread loop does.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;

use crate::matching::{Effect, Matching, RecvDone};
use crate::metrics::{EngineMetrics, MetricsSnapshot, NicMetrics};
use crate::segment::{PackWrapper, Priority, RecvReqId, SendReqId, SeqNo, Tag};
use crate::strategy::{FramePlan, NicView, PlanEntry, Strategy};
use crate::window::{CtrlMsg, RdvJob, Window};
use crate::wire::{parse_frame, Entry, FrameEncoder};
use nmad_net::{CpuMeter, Driver, NetResult, SendHandle, StrategyDecision};
use nmad_sim::{NodeId, SoftwareCosts};

/// Per-operation software costs the engine charges to its CPU meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineCosts {
    /// Collect-layer cost per application send request.
    pub per_request_ns: u64,
    /// Matching-structure cost per posted receive.
    pub per_recv_ns: u64,
    /// Scheduler cost per ready-list inspection (frame synthesis).
    pub scheduler_inspect_ns: u64,
    /// Cost per wire entry packed or unpacked.
    pub per_entry_ns: u64,
}

impl EngineCosts {
    /// From software.
    pub fn from_software(costs: &SoftwareCosts) -> Self {
        EngineCosts {
            per_request_ns: costs.per_request.as_ns(),
            per_recv_ns: costs.per_recv.as_ns(),
            scheduler_inspect_ns: costs.scheduler_inspect.as_ns(),
            per_entry_ns: costs.per_entry.as_ns(),
        }
    }

    /// Free engine (real transports pay in real time).
    pub fn zero() -> Self {
        EngineCosts {
            per_request_ns: 0,
            per_recv_ns: 0,
            scheduler_inspect_ns: 0,
            per_entry_ns: 0,
        }
    }
}

/// How the engine is driven.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgressMode {
    /// The application thread pumps [`NmadEngine::progress`] itself.
    /// The only mode the simulated transports support: virtual time
    /// advances through the co-simulation loop, so progression must
    /// stay on the application thread to remain deterministic.
    #[default]
    Inline,
    /// A dedicated progression thread owns the engine and pumps it;
    /// application threads submit through a lock-free ring and poll a
    /// sharded completion board (see [`crate::threaded`]). For the
    /// mem/tcp/lossy transports, where communication should overlap
    /// application computation.
    Threaded,
}

/// Engine driving configuration — progression mode plus the knobs of
/// the threaded mode's submission ring and idle parking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Driving mode. Inline by default.
    pub mode: ProgressMode,
    /// Capacity of the lock-free submission ring (threaded mode). A
    /// full ring pushes back on submitters instead of growing.
    pub submit_ring_capacity: usize,
    /// Max operations the progression thread drains from the ring
    /// between pumps, bounding submission-drain latency vs fairness.
    pub submit_batch: usize,
    /// How long the progression thread parks when the engine is idle
    /// and the ring is empty before re-checking.
    pub idle_park: std::time::Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ProgressMode::Inline,
            submit_ring_capacity: 1024,
            submit_batch: 256,
            idle_park: std::time::Duration::from_micros(200),
        }
    }
}

impl EngineConfig {
    /// The default configuration with the threaded mode selected.
    pub fn threaded() -> Self {
        EngineConfig {
            mode: ProgressMode::Threaded,
            ..Self::default()
        }
    }
}

/// Point-in-time snapshot of an engine's internal queues (debugging,
/// deadlock reports).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineDiagnostics {
    /// Node the event belongs to.
    pub node: NodeId,
    /// The engine's strategy name.
    pub strategy: &'static str,
    /// Application segments accumulated in the window.
    pub window_segments: usize,
    /// Whether granted rendezvous data is queued.
    pub window_has_rdv: bool,
    /// Announced rendezvous transfers awaiting their grant.
    pub rts_awaiting_cts: usize,
    /// Granted rendezvous transfers still moving bytes.
    pub rdv_transfers_in_progress: usize,
    /// Send requests not yet fully transmitted.
    pub sends_pending: usize,
    /// Posted receives not yet matched.
    pub recvs_posted: usize,
    /// Unexpected segments staged in bounce buffers.
    pub unexpected: usize,
    /// Frames posted to drivers, transmit not yet complete.
    pub frames_in_flight: usize,
    /// NICs marked dead after refused sends.
    pub dead_nics: usize,
}

impl std::fmt::Display for EngineDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: window={} rdv(wait_cts={}, in_progress={}, queued={}) \
             sends={} recvs={} unexpected={} inflight={} dead_nics={}",
            self.node,
            self.strategy,
            self.window_segments,
            self.rts_awaiting_cts,
            self.rdv_transfers_in_progress,
            self.window_has_rdv,
            self.sends_pending,
            self.recvs_posted,
            self.unexpected,
            self.frames_in_flight,
            self.dead_nics,
        )
    }
}

/// Wire-level counters, used by tests and harnesses to verify claims
/// like "aggregation sent one frame where the baseline sent eight".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Wire frames sent.
    pub frames_sent: u64,
    /// Wire frames received.
    pub frames_received: u64,
    /// Eager data entries sent.
    pub data_entries: u64,
    /// Rendezvous request-to-send entries sent.
    pub rts_entries: u64,
    /// Rendezvous grant entries sent.
    pub cts_entries: u64,
    /// Rendezvous data chunks sent.
    pub chunk_entries: u64,
    /// Frames that required a staging copy because the NIC could not
    /// gather enough segments.
    pub staging_copies: u64,
    /// Refill attempts skipped because the destination was out of
    /// eager credits (flow control).
    pub credit_stalls: u64,
    /// Standalone credit-return frames sent.
    pub credit_frames: u64,
}

type RdvKey = (NodeId, Tag, SeqNo);

enum TxDone {
    /// One eager segment of this request left the host.
    Unit(SendReqId),
    /// `bytes` of a rendezvous segment left the host.
    RdvBytes { key: RdvKey, bytes: usize },
}

struct RdvTx {
    sent: usize,
    total: usize,
    req: SendReqId,
}

/// Bounded recycling pool for frame buffers. Transmit-side header
/// blocks and staging buffers return here once the NIC reports the
/// send complete; receive-side frame buffers return once every eager
/// slice taken from them has been delivered (the `Arc` inside
/// [`Bytes`] tells us). Reuse keeps the steady-state hot path free of
/// allocator traffic — the paper's engine likewise recycles its iovec
/// and bounce buffers per rail.
struct FramePool {
    bufs: Vec<Vec<u8>>,
    cap: usize,
}

impl FramePool {
    fn new(cap: usize) -> Self {
        FramePool {
            bufs: Vec::new(),
            cap,
        }
    }

    /// A cleared buffer, recycled when possible. Counts the hit or
    /// miss in the engine metrics.
    fn take(&mut self, metrics: &mut EngineMetrics) -> Vec<u8> {
        match self.bufs.pop() {
            Some(mut buf) => {
                buf.clear();
                metrics.pool_hits += 1;
                buf
            }
            None => {
                metrics.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer for reuse; beyond the cap it is simply freed.
    fn put(&mut self, buf: Vec<u8>) {
        if self.bufs.len() < self.cap {
            self.bufs.push(buf);
        }
    }
}

/// A posted frame whose transmit has not completed.
struct InflightFrame {
    handle: SendHandle,
    dones: Vec<TxDone>,
    /// The plan the frame was built from, so a rail fault can hand
    /// the stranded work back to the window (the receiver's matching
    /// layer drops whatever the rail did manage to deliver).
    plan: FramePlan,
    /// Header-block and staging buffers the NIC is still reading
    /// (gather DMA pins them until completion); recycled through the
    /// pool when `test_send` reports done.
    bufs: Vec<Vec<u8>>,
}

struct NicState {
    driver: Box<dyn Driver>,
    inflight: VecDeque<InflightFrame>,
    /// Set when the driver refused a send (transport/NIC failure);
    /// the refill loop stops offering this NIC work.
    dead: bool,
}

/// The engine. See the module documentation.
pub struct NmadEngine {
    node: NodeId,
    nics: Vec<NicState>,
    meter: Box<dyn CpuMeter>,
    strategy: Box<dyn Strategy>,
    window: Window,
    matching: Matching,
    /// RTS sent, data parked until the CTS returns.
    rdv_wait_cts: HashMap<RdvKey, (Bytes, SendReqId)>,
    /// Granted rendezvous transfers: transmit-side byte accounting.
    rdv_tx: HashMap<RdvKey, RdvTx>,
    /// Rendezvous transfers that fully completed (transmit side); a
    /// late duplicate grant must never restart one.
    rdv_done: HashSet<RdvKey>,
    /// Send requests → segments still in flight.
    sends: HashMap<SendReqId, usize>,
    done_sends: HashSet<SendReqId>,
    next_req: u64,
    next_seq: HashMap<(NodeId, Tag), SeqNo>,
    order: u64,
    costs: EngineCosts,
    stats: EngineStats,
    metrics: EngineMetrics,
    pool: FramePool,
    /// Eager flow control: max data-bearing frames in flight per peer
    /// without a credit return. `None` disables the mechanism.
    credit_limit: Option<usize>,
    credits: HashMap<NodeId, usize>,
    pending_credit_returns: HashMap<NodeId, u32>,
}

impl NmadEngine {
    /// Builds an engine over `drivers` (one per rail, all bound to the
    /// same node).
    pub fn new(
        drivers: Vec<Box<dyn Driver>>,
        meter: Box<dyn CpuMeter>,
        mut strategy: Box<dyn Strategy>,
        costs: EngineCosts,
    ) -> Self {
        assert!(!drivers.is_empty(), "engine needs at least one driver");
        let node = drivers[0].local_node();
        assert!(
            drivers.iter().all(|d| d.local_node() == node),
            "all drivers must belong to the same node"
        );
        let caps: Vec<_> = drivers.iter().map(|d| d.caps().clone()).collect();
        strategy.init(&caps);
        let window = Window::new(drivers.len());
        NmadEngine {
            node,
            nics: drivers
                .into_iter()
                .map(|driver| NicState {
                    driver,
                    inflight: VecDeque::new(),
                    dead: false,
                })
                .collect(),
            meter,
            strategy,
            window,
            matching: Matching::new(),
            rdv_wait_cts: HashMap::new(),
            rdv_tx: HashMap::new(),
            rdv_done: HashSet::new(),
            sends: HashMap::new(),
            done_sends: HashSet::new(),
            next_req: 0,
            next_seq: HashMap::new(),
            order: 0,
            costs,
            stats: EngineStats::default(),
            metrics: EngineMetrics::default(),
            pool: FramePool::new(64),
            credit_limit: None,
            credits: HashMap::new(),
            pending_credit_returns: HashMap::new(),
        }
    }

    /// Enables credit-based eager flow control: at most `limit`
    /// data-bearing frames may be in flight towards one peer before a
    /// credit returns (bounding the receiver's unexpected-message
    /// memory). Both peers of a link should configure the same limit.
    /// `None` (the default) disables the mechanism.
    pub fn set_eager_credit_limit(&mut self, limit: Option<usize>) {
        assert!(
            limit.is_none_or(|l| l > 0),
            "a zero credit limit would deadlock"
        );
        self.credit_limit = limit;
        self.credits.clear();
    }

    fn credits_for(&mut self, dst: NodeId) -> usize {
        let limit = self.credit_limit.expect("flow control enabled");
        *self.credits.entry(dst).or_insert(limit)
    }

    /// Node the event belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Strategy name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Wire-level counters since construction.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Collect- and scheduling-layer counters since construction.
    pub fn engine_metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A point-in-time snapshot of every observable counter: engine
    /// metrics, wire statistics and per-NIC link counters. Cheap —
    /// a few copies plus one `link_stats` call per driver.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            strategy: self.strategy.name(),
            engine: self.metrics,
            wire: self.stats.clone(),
            nics: self
                .nics
                .iter()
                .map(|n| NicMetrics {
                    name: n.driver.caps().name.clone(),
                    link: n.driver.link_stats(),
                })
                .collect(),
        }
    }

    /// Segments currently accumulated in the optimization window.
    pub fn window_depth(&self) -> usize {
        self.window.depth_for(0)
    }

    /// Snapshot of the engine's internal state for debugging and
    /// deadlock reports.
    pub fn diagnostics(&self) -> EngineDiagnostics {
        EngineDiagnostics {
            node: self.node,
            strategy: self.strategy.name(),
            window_segments: (0..self.nics.len())
                .map(|i| self.window.depth_for(i))
                .max()
                .unwrap_or(0),
            window_has_rdv: self.window.has_rdv(),
            rts_awaiting_cts: self.rdv_wait_cts.len(),
            rdv_transfers_in_progress: self.rdv_tx.len(),
            sends_pending: self.sends.len(),
            recvs_posted: self.matching.posted_count(),
            unexpected: self.matching.unexpected_count(),
            frames_in_flight: self.nics.iter().map(|n| n.inflight.len()).sum(),
            dead_nics: self.nics.iter().filter(|n| n.dead).count(),
        }
    }

    fn alloc_send_req(&mut self) -> SendReqId {
        let req = SendReqId(self.next_req);
        self.next_req += 1;
        req
    }

    fn alloc_recv_req(&mut self) -> RecvReqId {
        let req = RecvReqId(self.next_req);
        self.next_req += 1;
        req
    }

    fn alloc_seq(&mut self, dst: NodeId, tag: Tag) -> SeqNo {
        let slot = self.next_seq.entry((dst, tag)).or_insert(SeqNo(0));
        let seq = *slot;
        *slot = slot.next();
        seq
    }

    /// Submits one application send made of `parts` segments (the
    /// incremental pack interface produces several; `isend` exactly
    /// one). All segments share the returned request, which completes
    /// when every one has left the host.
    pub fn submit_send_parts(
        &mut self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = self.alloc_send_req();
        self.submit_send_parts_as(req, dst, tag, parts, rail_hint);
        req
    }

    /// [`submit_send_parts`](Self::submit_send_parts) under a
    /// caller-allocated request id. The threaded front-end allocates
    /// ids on the application thread (one atomic) so the application
    /// holds its handle before the operation ever crosses the
    /// submission ring.
    pub fn submit_send_parts_as(
        &mut self,
        req: SendReqId,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) {
        assert_ne!(dst, self.node, "self-sends are not routed through NICs");
        self.meter.charge_ns(self.costs.per_request_ns);
        self.metrics.requests_submitted += 1;
        if parts.is_empty() {
            self.done_sends.insert(req);
            return;
        }
        self.sends.insert(req, parts.len());
        for (data, priority) in parts {
            self.metrics.bytes_enqueued += data.len() as u64;
            let seq = self.alloc_seq(dst, tag);
            let order = self.order;
            self.order += 1;
            self.window.push_segment(
                PackWrapper {
                    dst,
                    tag,
                    seq,
                    priority,
                    data,
                    req,
                    order,
                },
                rail_hint,
            );
        }
        let depth = (0..self.nics.len())
            .map(|i| self.window.depth_for(i))
            .max()
            .unwrap_or(0);
        self.metrics.observe_window_depth(depth);
    }

    /// Nonblocking single-segment send.
    pub fn isend(&mut self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Posts a receive of up to `max` bytes for the next segment of
    /// flow (src, tag).
    pub fn post_recv(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = self.alloc_recv_req();
        self.post_recv_as(req, src, tag, max);
        req
    }

    /// [`post_recv`](Self::post_recv) under a caller-allocated request
    /// id (the threaded front-end's submission path).
    pub fn post_recv_as(&mut self, req: RecvReqId, src: NodeId, tag: Tag, max: usize) {
        self.meter.charge_ns(self.costs.per_recv_ns);
        self.metrics.recvs_posted += 1;
        let (_seq, effects) = self.matching.post_recv(src, tag, max, req);
        self.apply_effects(effects);
    }

    /// True once the send request has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.done_sends.contains(&req)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.matching.is_done(req)
    }

    /// Takes a completed receive's payload.
    pub fn try_take_recv(&mut self, req: RecvReqId) -> Option<RecvDone> {
        self.matching.try_take_done(req)
    }

    /// Non-destructive probe (MPI_Iprobe-style): the length of the next
    /// segment of flow (src, tag) if it has already arrived or been
    /// announced via rendezvous.
    pub fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.matching.probe(src, tag)
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::ChargeCopy(bytes) => {
                    self.metrics.bytes_copied_rx += bytes as u64;
                    self.meter.charge_memcpy(bytes);
                }
                Effect::SendCts {
                    dst,
                    tag,
                    seq,
                    total,
                } => self.window.push_ctrl(CtrlMsg {
                    dst,
                    tag,
                    seq,
                    total,
                }),
                Effect::DuplicateDropped => self.metrics.duplicates_dropped += 1,
            }
        }
    }

    fn complete_send_part(&mut self, req: SendReqId) {
        let remaining = self
            .sends
            .get_mut(&req)
            .expect("completion for unknown send request");
        *remaining -= 1;
        if *remaining == 0 {
            self.sends.remove(&req);
            self.done_sends.insert(req);
        }
    }

    fn handle_frame(&mut self, src: NodeId, frame: &Bytes, rx_zero_copy: bool) -> NetResult<()> {
        self.stats.frames_received += 1;
        let entries = parse_frame(frame).map_err(|e| {
            nmad_net::NetError::Protocol(format!("malformed frame from {src}: {e}"))
        })?;
        self.meter
            .charge_ns(self.costs.per_entry_ns * entries.len() as u64);
        let had_data = entries.iter().any(|e| matches!(e, Entry::Data { .. }));
        for entry in entries {
            match entry {
                Entry::Data { tag, seq, payload } => {
                    // Re-anchor the parsed payload as a zero-copy slice
                    // of the frame buffer: the matching layer retains or
                    // delivers it without a bounce-buffer copy.
                    let off = payload.as_ptr() as usize - frame.as_slice().as_ptr() as usize;
                    let payload = frame.slice(off..off + payload.len());
                    let fx = self.matching.on_data(src, tag, seq, payload);
                    self.apply_effects(fx);
                }
                Entry::Rts { tag, seq, total } => {
                    let fx = self.matching.on_rts(src, tag, seq, total);
                    self.apply_effects(fx);
                }
                Entry::Cts { tag, seq, total } => {
                    let key = (src, tag, seq);
                    if self.rdv_tx.contains_key(&key) || self.rdv_done.contains(&key) {
                        // Duplicate grant for a transfer already moving
                        // bytes — or already finished (the receiver
                        // re-granted after seeing a retransmitted or
                        // failover-requeued RTS).
                        self.metrics.stale_cts_ignored += 1;
                        continue;
                    }
                    let Some((data, req)) = self.rdv_wait_cts.remove(&key) else {
                        let stale = self.next_seq.get(&(src, tag)).is_some_and(|&n| seq < n);
                        if stale {
                            // The transfer this CTS grants has already
                            // completed; the grant is a late duplicate.
                            self.metrics.stale_cts_ignored += 1;
                            continue;
                        }
                        return Err(nmad_net::NetError::Protocol(format!(
                            "CTS from {src} for unannounced rendezvous ({tag:?}, {seq:?})"
                        )));
                    };
                    debug_assert_eq!(data.len(), total as usize);
                    self.rdv_tx.insert(
                        key,
                        RdvTx {
                            sent: 0,
                            total: data.len(),
                            req,
                        },
                    );
                    self.window.push_rdv(RdvJob::new(src, tag, seq, data, req));
                }
                Entry::RdvData {
                    tag,
                    seq,
                    offset,
                    last: _,
                    payload,
                } => {
                    let fx =
                        self.matching
                            .on_rdv_chunk(src, tag, seq, offset, payload, rx_zero_copy);
                    self.apply_effects(fx);
                }
                Entry::Credit { count } => {
                    if let Some(limit) = self.credit_limit {
                        let c = self.credits.entry(src).or_insert(limit);
                        *c = (*c + count as usize).min(limit);
                    }
                }
            }
        }
        if self.credit_limit.is_some() && had_data {
            // One data-bearing frame consumed: owe its sender a credit.
            *self.pending_credit_returns.entry(src).or_insert(0) += 1;
        }
        Ok(())
    }

    fn apply_tx_done(&mut self, dones: Vec<TxDone>) {
        for done in dones {
            match done {
                TxDone::Unit(req) => self.complete_send_part(req),
                TxDone::RdvBytes { key, bytes } => {
                    let finished = {
                        let tx = self
                            .rdv_tx
                            .get_mut(&key)
                            .expect("chunk completion for unknown rendezvous");
                        tx.sent += bytes;
                        debug_assert!(tx.sent <= tx.total);
                        (tx.sent == tx.total).then_some(tx.req)
                    };
                    if let Some(req) = finished {
                        self.rdv_tx.remove(&key);
                        // A failover requeue may have re-announced this
                        // transfer; drop the now-moot announcement and
                        // remember the key so a late grant is ignored.
                        self.rdv_wait_cts.remove(&key);
                        self.rdv_done.insert(key);
                        self.complete_send_part(req);
                    }
                }
            }
        }
    }

    fn build_and_post(&mut self, nic_idx: usize, plan: FramePlan) -> NetResult<()> {
        // Phase 1: encode the frame without consuming the plan, so a
        // failed NIC can hand its work back to the window. The encoder
        // writes only the header block (frame header plus entry
        // headers) into a pooled buffer and records where each payload
        // splices in — payload bytes are not touched.
        let mut fe = FrameEncoder::with_buffer(self.pool.take(&mut self.metrics));
        let mut owed_credits = 0u32;
        if self.credit_limit.is_some() {
            if let Some(owed) = self.pending_credit_returns.get_mut(&plan.dst) {
                owed_credits = std::mem::take(owed);
                if owed_credits > 0 {
                    fe.push_credit(owed_credits);
                }
            }
        }
        let mut carries_data = false;
        for entry in &plan.entries {
            match entry {
                PlanEntry::Cts(c) => fe.push_cts(c.tag, c.seq, c.total),
                PlanEntry::Data(w) => {
                    fe.push_data(w.tag, w.seq, &w.data);
                    carries_data = true;
                }
                PlanEntry::Rts(w) => {
                    let total = u32::try_from(w.data.len()).expect("segment above 4 GiB");
                    fe.push_rts(w.tag, w.seq, total);
                }
                PlanEntry::RdvChunk(c) => {
                    fe.push_rdv_data(c.tag, c.seq, c.offset, c.last, &c.data);
                }
            }
        }
        // Scheduler critical-path cost: one ready-list inspection plus
        // per-entry header packing.
        self.meter.charge_ns(
            self.costs.scheduler_inspect_ns + self.costs.per_entry_ns * u64::from(fe.entry_count()),
        );
        let gather_max = self.nics[nic_idx].driver.caps().gather_max_segs;
        let iov = fe.finish();
        // Buffers the NIC will read until transmit completes; recycled
        // through the pool at completion (or immediately on failover).
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(2);
        let posted = if iov.segment_count() <= gather_max {
            // Zero-copy path: hand the NIC the header block and the
            // application payloads in wire order and let it gather.
            let segs = iov.segments();
            let multi = segs.len() > 1;
            let res = self.nics[nic_idx].driver.post_send(plan.dst, &segs);
            if res.is_ok() && multi {
                self.metrics.gather_sends += 1;
            }
            res
        } else {
            // The card cannot gather this many regions: stage one
            // contiguous copy (and pay for it).
            let mut staged = self.pool.take(&mut self.metrics);
            iov.stage_into(&mut staged);
            self.meter.charge_memcpy(iov.payload_bytes());
            self.stats.staging_copies += 1;
            let res = self.nics[nic_idx].driver.post_send(plan.dst, &[&staged]);
            bufs.push(staged);
            res
        };
        bufs.push(iov.into_meta());
        let handle = match posted {
            Ok(handle) => handle,
            Err(nmad_net::NetError::Closed) => {
                // The NIC died under us: hand everything back to the
                // window (failover — another rail will pick it up).
                for buf in bufs {
                    self.pool.put(buf);
                }
                self.nics[nic_idx].dead = true;
                self.metrics.rail_faults += 1;
                if owed_credits > 0 {
                    *self.pending_credit_returns.entry(plan.dst).or_insert(0) += owed_credits;
                }
                self.metrics.requeued_entries += plan.entries.len() as u64;
                self.requeue_plan(plan);
                self.reclaim_rail(nic_idx);
                return Ok(());
            }
            Err(e) => {
                for buf in bufs {
                    self.pool.put(buf);
                }
                return Err(e);
            }
        };

        // Phase 2: the frame is on the wire — derive completion records
        // and statistics from the plan, which is retained alongside the
        // handle so a later rail fault can requeue the stranded work.
        let mut dones = Vec::new();
        let (mut n_data, mut n_rts, mut n_cts, mut n_chunk) = (0u32, 0u32, 0u32, 0u32);
        let reordered = plan.reordered;
        for entry in &plan.entries {
            match entry {
                PlanEntry::Cts(_) => {
                    self.stats.cts_entries += 1;
                    n_cts += 1;
                }
                PlanEntry::Data(w) => {
                    dones.push(TxDone::Unit(w.req));
                    self.stats.data_entries += 1;
                    n_data += 1;
                }
                PlanEntry::Rts(w) => {
                    self.rdv_wait_cts
                        .insert((w.dst, w.tag, w.seq), (w.data.clone(), w.req));
                    self.stats.rts_entries += 1;
                    n_rts += 1;
                }
                PlanEntry::RdvChunk(c) => {
                    dones.push(TxDone::RdvBytes {
                        key: (c.dst, c.tag, c.seq),
                        bytes: c.data.len(),
                    });
                    self.stats.chunk_entries += 1;
                    n_chunk += 1;
                }
            }
        }
        let entries = n_data + n_rts + n_cts + n_chunk;
        self.metrics.frames_synthesized += 1;
        self.metrics.entries_aggregated += u64::from(entries);
        self.metrics.eager_entries += u64::from(n_data);
        self.metrics.rendezvous_entries += u64::from(n_rts + n_cts + n_chunk);
        self.metrics.reorder_decisions += u64::from(reordered);
        let strategy = self.strategy.name();
        self.meter.note_decision(&StrategyDecision {
            strategy,
            entries,
            data_entries: n_data,
            rts_entries: n_rts,
            cts_entries: n_cts,
            chunk_entries: n_chunk,
            reordered,
        });
        if let (true, Some(limit)) = (carries_data, self.credit_limit) {
            let c = self.credits.entry(plan.dst).or_insert(limit);
            // Data may piggyback on credit-exempt traffic (a grant or
            // rendezvous chunk) while the account is empty; tolerate a
            // bounded overdraft rather than splitting the frame.
            *c = c.saturating_sub(1);
        }
        self.nics[nic_idx].inflight.push_back(InflightFrame {
            handle,
            dones,
            plan,
            bufs,
        });
        self.stats.frames_sent += 1;
        Ok(())
    }

    /// Returns a plan's work to the window after a NIC failure, in an
    /// order that preserves per-flow FIFO for the segments.
    fn requeue_plan(&mut self, plan: FramePlan) {
        for entry in plan.entries.into_iter().rev() {
            match entry {
                PlanEntry::Cts(c) => self.window.push_ctrl(c),
                PlanEntry::Data(w) | PlanEntry::Rts(w) => self.window.push_segment_front(w),
                PlanEntry::RdvChunk(c) => self.window.push_rdv(RdvJob::resume(c)),
            }
        }
    }

    /// Recovery after `nic_idx` was marked dead: stranded in-flight
    /// frames and window segments dedicated to the rail go back to the
    /// window (the receiver's matching layer drops whatever the dead
    /// rail did manage to deliver), and the strategy re-plans its
    /// bandwidth split over the survivors.
    fn reclaim_rail(&mut self, nic_idx: usize) {
        let stranded: Vec<InflightFrame> = self.nics[nic_idx].inflight.drain(..).collect();
        for frame in stranded {
            for buf in frame.bufs {
                self.pool.put(buf);
            }
            self.metrics.requeued_entries += frame.plan.entries.len() as u64;
            self.requeue_plan(frame.plan);
        }
        self.metrics.requeued_entries += self.window.reclaim_dedicated(nic_idx) as u64;
        self.strategy.on_rail_fault(nic_idx);
    }

    /// Installs a deterministic fault plan on rail `nic_idx`'s driver;
    /// returns whether the driver consumed it (real transports refuse).
    pub fn install_faults(&mut self, nic_idx: usize, plan: nmad_net::FaultPlan) -> bool {
        self.nics[nic_idx].driver.install_faults(plan)
    }

    /// Fault-injection counters reported by rail `nic_idx`'s driver.
    pub fn fault_stats(&self, nic_idx: usize) -> nmad_net::FaultStats {
        self.nics[nic_idx].driver.fault_stats()
    }

    /// One pump: drain receives, harvest transmit completions, refill
    /// idle NICs. Returns whether anything moved.
    pub fn try_progress(&mut self) -> NetResult<bool> {
        let mut any = false;

        // Receives and transmit completions.
        for i in 0..self.nics.len() {
            if self.nics[i].dead {
                continue;
            }
            self.nics[i].driver.pump()?;
            let rx_zero_copy = self.nics[i].driver.caps().supports_rdma;
            while let Some(frame) = self.nics[i].driver.poll_recv()? {
                debug_assert_ne!(frame.src, self.node);
                let payload = frame.payload;
                self.handle_frame(frame.src, &payload, rx_zero_copy)?;
                // If no eager slice of the frame was retained (posted
                // receives consumed everything), the buffer is uniquely
                // owned again — recycle it.
                if let Ok(buf) = payload.try_unwrap() {
                    self.pool.put(buf);
                }
                any = true;
            }
            while let Some(handle) = self.nics[i].inflight.front().map(|f| f.handle) {
                if !self.nics[i].driver.test_send(handle)? {
                    break;
                }
                let frame = self.nics[i].inflight.pop_front().expect("checked");
                for buf in frame.bufs {
                    self.pool.put(buf);
                }
                self.apply_tx_done(frame.dones);
                any = true;
            }
        }

        // Refill idle NICs: this is where the optimization function
        // runs (§3.3: "the transfer layer ... requests from the upper
        // layer a new optimized packet to be sent, as soon as a card
        // becomes idle").
        let all_dead = self.nics.iter().all(|n| n.dead);
        if all_dead && !self.window.is_empty() {
            return Err(nmad_net::NetError::Closed);
        }
        for i in 0..self.nics.len() {
            loop {
                if self.nics[i].dead
                    || !self.nics[i].driver.tx_idle()
                    || self.window.is_empty_for(i)
                {
                    break;
                }
                // Flow-control gate: if the next destination is out of
                // eager credits and has no credit-exempt traffic
                // (control, granted rendezvous data), hold the window
                // until a credit returns.
                if let Some(dst) = self.window.next_dst(i) {
                    if self.credit_limit.is_some()
                        && self.credits_for(dst) == 0
                        && !self.window.has_non_data_work_for(dst)
                    {
                        self.stats.credit_stalls += 1;
                        break;
                    }
                }
                let caps = self.nics[i].driver.caps().clone();
                let view = NicView {
                    index: i,
                    caps: &caps,
                };
                let Some(plan) = self.strategy.schedule(&mut self.window, &view) else {
                    break;
                };
                debug_assert!(!plan.is_empty(), "strategies never plan empty frames");
                self.build_and_post(i, plan)?;
                any = true;
            }
            // Standalone credit returns: peers we owe credits but have
            // no other traffic towards.
            if self.credit_limit.is_some() && !self.nics[i].dead && self.nics[i].driver.tx_idle() {
                let owed: Vec<NodeId> = self
                    .pending_credit_returns
                    .iter()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(&n, _)| n)
                    .collect();
                for dst in owed {
                    if !self.nics[i].driver.tx_idle() {
                        break;
                    }
                    let count =
                        std::mem::take(self.pending_credit_returns.get_mut(&dst).expect("present"));
                    let mut fe = FrameEncoder::with_buffer(self.pool.take(&mut self.metrics));
                    fe.push_credit(count);
                    let iov = fe.finish();
                    let handle = self.nics[i].driver.post_send(dst, &iov.segments())?;
                    self.nics[i].inflight.push_back(InflightFrame {
                        handle,
                        dones: Vec::new(),
                        plan: FramePlan::new(dst),
                        bufs: vec![iov.into_meta()],
                    });
                    self.stats.frames_sent += 1;
                    self.stats.credit_frames += 1;
                    any = true;
                }
            }
        }
        Ok(any)
    }

    /// [`try_progress`](Self::try_progress), panicking on transport
    /// failure (simulated transports cannot fail).
    pub fn progress(&mut self) -> bool {
        self.try_progress().expect("transport failure")
    }

    /// Pumps until a pump reports nothing moved; returns whether any
    /// pump moved anything. The standard way to drain an inline engine
    /// after submissions instead of hand-rolled `while progress()`
    /// loops — a single pump can cascade (a harvested completion frees
    /// a NIC which refills from the window), so one call is rarely
    /// enough.
    pub fn progress_until_idle(&mut self) -> bool {
        let mut any = false;
        while self.progress() {
            any = true;
        }
        any
    }

    /// True when every rail's driver consents to being pumped from a
    /// background progression thread (threaded mode's precondition).
    /// The simulated driver refuses — virtual time must advance on the
    /// application thread.
    pub fn threaded_progress_safe(&self) -> bool {
        self.nics.iter().all(|n| n.driver.threaded_progress_safe())
    }

    /// Send requests that fully left the host since the last drain.
    /// The threaded progression loop harvests these into the
    /// completion board after each pump; inline users keep using
    /// [`is_send_done`](Self::is_send_done).
    pub fn drain_done_sends(&mut self) -> Vec<SendReqId> {
        if self.done_sends.is_empty() {
            return Vec::new();
        }
        self.done_sends.drain().collect()
    }

    /// Receive completions ready since the last drain (payload
    /// included). The threaded harvest path, mirroring
    /// [`drain_done_sends`](Self::drain_done_sends).
    pub fn drain_done_recvs(&mut self) -> Vec<(RecvReqId, RecvDone)> {
        self.matching.drain_done()
    }

    /// True while any submitted work could still complete: pending
    /// sends, posted receives, queued window entries, rendezvous
    /// handshakes, in-flight frames or owed credit returns. The
    /// threaded progression loop spins while this holds and parks on
    /// the submission ring otherwise.
    pub fn has_outstanding(&self) -> bool {
        !self.sends.is_empty()
            || self.matching.posted_count() > 0
            || !self.window.is_empty()
            || !self.rdv_wait_cts.is_empty()
            || !self.rdv_tx.is_empty()
            || self.nics.iter().any(|n| !n.inflight.is_empty())
            || self.pending_credit_returns.values().any(|&c| c > 0)
    }

    /// True when the transmit side is fully drained: no pending sends,
    /// nothing queued in the window, no rendezvous in flight, no frame
    /// awaiting completion. Unlike
    /// [`has_outstanding`](Self::has_outstanding) this ignores posted
    /// receives, so a shutdown cannot hang on a receive the peer will
    /// never match.
    pub fn tx_quiescent(&self) -> bool {
        self.sends.is_empty()
            && self.window.is_empty()
            && self.rdv_wait_cts.is_empty()
            && self.rdv_tx.is_empty()
            && self.nics.iter().all(|n| n.inflight.is_empty())
    }

    /// True when the optimization window's per-destination index
    /// matches its actual queue contents. Exposed for failover
    /// regression tests; release builds also check this via
    /// `debug_assert!` on the requeue/reclaim paths.
    pub fn window_index_consistent(&self) -> bool {
        self.window.index_is_consistent()
    }

    /// The next unallocated request id — the threaded front-end seeds
    /// its atomic allocator from this at launch and restores it at
    /// shutdown.
    pub(crate) fn req_watermark(&self) -> u64 {
        self.next_req
    }

    pub(crate) fn set_req_watermark(&mut self, next: u64) {
        debug_assert!(next >= self.next_req, "request ids must never reuse");
        self.next_req = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{StratAggreg, StratDefault};
    use nmad_net::sim::SimDriver;
    use nmad_sim::{nic, run_until, shared_world, SharedWorld, SimConfig};

    fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
        let driver = SimDriver::new(world.clone(), NodeId(node), nmad_sim::RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(
            vec![Box::new(driver)],
            meter,
            strategy,
            EngineCosts::from_software(&nmad_sim::host::costs_madmpi()),
        )
    }

    fn pump_pair(
        world: &SharedWorld,
        a: &mut NmadEngine,
        b: &mut NmadEngine,
        mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
    ) {
        // Engines and the goal predicate both need &mut; drive manually.
        for _ in 0..100_000 {
            let mut moved = a.progress();
            moved |= b.progress();
            if done(a, b) {
                return;
            }
            if !moved && world.lock().advance().is_none() {
                panic!(
                    "deadlock: {} / a window {} / b window {}",
                    world.lock().pending_summary(),
                    a.window_depth(),
                    b.window_depth()
                );
            }
        }
        panic!("pump_pair did not converge");
    }

    #[test]
    fn eager_roundtrip_delivers_payload() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(5), &b"payload"[..]);
        let r = b.post_recv(NodeId(0), Tag(5), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        let done = b.try_take_recv(r).unwrap();
        assert_eq!(done.data, b"payload");
        assert_eq!(done.src, NodeId(0));
    }

    #[test]
    fn rendezvous_roundtrip_for_large_segment() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        let s = a.isend(NodeId(1), Tag(1), body.clone());
        let r = b.post_recv(NodeId(0), Tag(1), body.len());
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, body);
        assert_eq!(a.stats().rts_entries, 1);
        assert!(a.stats().chunk_entries >= 1);
        assert_eq!(b.stats().cts_entries, 1);
    }

    #[test]
    fn aggregation_coalesces_multi_flow_burst_into_fewer_frames() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        // First frame may leave with only the earliest submissions, but
        // the burst must use far fewer than 8 frames.
        assert!(
            a.stats().frames_sent <= 3,
            "got {} frames",
            a.stats().frames_sent
        );
        assert_eq!(a.stats().data_entries, 8);
        for (t, r) in recvs.into_iter().enumerate() {
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![t as u8; 64]);
        }
    }

    #[test]
    fn default_strategy_sends_one_frame_per_segment() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratDefault));
        let mut b = engine(&world, 1, Box::new(StratDefault));
        let sends: Vec<_> = (0..5)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![0u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..5).map(|t| b.post_recv(NodeId(0), Tag(t), 32)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert_eq!(a.stats().frames_sent, 5);
    }

    #[test]
    fn unexpected_message_completes_when_recv_posted_later() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(3), &b"early bird"[..]);
        // Let the message arrive unexpected.
        pump_pair(&world, &mut a, &mut b, |a, _| a.is_send_done(s));
        let r = b.post_recv(NodeId(0), Tag(3), 64);
        pump_pair(&world, &mut a, &mut b, |_, b| b.is_recv_done(r));
        assert_eq!(b.try_take_recv(r).unwrap().data, b"early bird");
    }

    #[test]
    fn multi_part_send_completes_once_all_parts_left() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let parts = vec![
            (Bytes::from_static(b"one"), Priority::Normal),
            (Bytes::from_static(b"two"), Priority::Normal),
            (Bytes::from_static(b"three"), Priority::Normal),
        ];
        let s = a.submit_send_parts(NodeId(1), Tag(0), parts, None);
        let recvs: Vec<_> = (0..3).map(|_| b.post_recv(NodeId(0), Tag(0), 16)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let got: Vec<Vec<u8>> = recvs
            .into_iter()
            .map(|r| b.try_take_recv(r).unwrap().data.to_vec())
            .collect();
        assert_eq!(
            got,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn empty_send_completes_immediately() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let s = a.submit_send_parts(NodeId(1), Tag(0), vec![], None);
        assert!(a.is_send_done(s));
    }

    #[test]
    fn bidirectional_traffic_makes_progress() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sa = a.isend(NodeId(1), Tag(0), &b"a->b"[..]);
        let sb = b.isend(NodeId(0), Tag(0), &b"b->a"[..]);
        let ra = a.post_recv(NodeId(1), Tag(0), 16);
        let rb = b.post_recv(NodeId(0), Tag(0), 16);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(sa) && b.is_send_done(sb) && a.is_recv_done(ra) && b.is_recv_done(rb)
        });
        assert_eq!(a.try_take_recv(ra).unwrap().data, b"b->a");
        assert_eq!(b.try_take_recv(rb).unwrap().data, b"a->b");
    }

    #[test]
    fn run_until_integrates_engines_as_closures() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(0), &b"via runner"[..]);
        let r = b.post_recv(NodeId(0), Tag(0), 32);
        let _ = s;
        let done = std::cell::Cell::new(false);
        {
            let mut ea = || a.progress();
            // The predicate needs `b`, so fold b's pump and the check
            // into one closure.
            let mut eb = || {
                let moved = b.progress();
                if b.is_recv_done(r) {
                    done.set(true);
                }
                moved
            };
            run_until(&world, &mut [&mut ea, &mut eb], || done.get()).expect("no deadlock");
        }
        assert_eq!(b.try_take_recv(r).unwrap().data, b"via runner");
    }

    /// Every counter in the snapshot, flattened for pairwise
    /// monotonicity comparisons.
    fn counter_vector(m: &crate::metrics::MetricsSnapshot) -> Vec<u64> {
        let e = &m.engine;
        let w = &m.wire;
        let mut v = vec![
            e.requests_submitted,
            e.recvs_posted,
            e.bytes_enqueued,
            e.window_depth_hwm,
            e.frames_synthesized,
            e.entries_aggregated,
            e.eager_entries,
            e.rendezvous_entries,
            e.reorder_decisions,
            e.rail_faults,
            e.requeued_entries,
            e.duplicates_dropped,
            e.stale_cts_ignored,
            e.gather_sends,
            e.pool_hits,
            e.pool_misses,
            e.bytes_copied_rx,
            w.frames_sent,
            w.frames_received,
            w.data_entries,
            w.rts_entries,
            w.cts_entries,
            w.chunk_entries,
            w.staging_copies,
            w.credit_stalls,
            w.credit_frames,
        ];
        for nic in &m.nics {
            v.extend([nic.link.busy_ns, nic.link.retransmits, nic.link.acks]);
        }
        v
    }

    #[test]
    fn metrics_counters_are_monotone_across_progress() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let mut prev = counter_vector(&a.metrics());
        let sends: Vec<_> = (0..6)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 128]))
            .collect();
        let recvs: Vec<_> = (0..6)
            .map(|t| b.post_recv(NodeId(0), Tag(t), 128))
            .collect();
        for _ in 0..100_000 {
            let moved = a.progress() | b.progress();
            let cur = counter_vector(&a.metrics());
            for (i, (&p, &c)) in prev.iter().zip(&cur).enumerate() {
                assert!(c >= p, "counter #{i} went backwards: {p} -> {c}");
            }
            prev = cur;
            if sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
            {
                break;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock");
            }
        }
        let m = a.metrics();
        assert_eq!(m.engine.requests_submitted, 6);
        assert_eq!(m.engine.eager_entries, 6);
        assert_eq!(m.engine.bytes_enqueued, 6 * 128);
        assert!(m.engine.window_depth_hwm >= 1);
        assert!(m.engine.frames_synthesized >= 1);
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        // One eager and one rendezvous-sized message.
        let s1 = a.isend(NodeId(1), Tag(0), vec![1u8; 256]);
        let s2 = a.isend(NodeId(1), Tag(1), vec![2u8; 200_000]);
        let r1 = b.post_recv(NodeId(0), Tag(0), 256);
        let r2 = b.post_recv(NodeId(0), Tag(1), 200_000);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s1) && a.is_send_done(s2) && b.is_recv_done(r1) && b.is_recv_done(r2)
        });
        let m = a.metrics();
        assert_eq!(m.strategy, "aggreg");
        assert_eq!(m.engine.requests_submitted, 2);
        assert_eq!(m.engine.eager_entries, 1);
        assert!(m.engine.rendezvous_entries >= 2, "one RTS plus chunks");
        assert!(m.aggregation_ratio() >= 1.0);
        assert_eq!(m.wire.frames_sent, m.engine.frames_synthesized);
        assert_eq!(m.nics.len(), 1);
        assert_eq!(m.nics[0].name, "MX/Myri-10G");
        assert!(m.nics[0].link.busy_ns > 0, "frames crossed the wire");
        // The receiver granted the rendezvous: its snapshot shows it.
        let mb = b.metrics();
        assert_eq!(mb.wire.cts_entries, 1);
        assert_eq!(mb.engine.recvs_posted, 2);
    }

    #[test]
    fn gather_capable_nic_posts_multi_segment_iovs_without_staging() {
        // MX gathers up to 32 segments: an aggregated multi-entry
        // eager frame must leave as a multi-segment iov, never as a
        // staged copy.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert!(
            a.metrics().engine.gather_sends > 0,
            "multi-entry frames must use the gather path: {:?}",
            a.metrics().engine
        );
        assert_eq!(a.stats().staging_copies, 0);
    }

    #[test]
    fn gatherless_nic_stages_a_copy_per_data_frame() {
        // GM advertises gather_max_segs == 1: every frame that carries
        // payload must be staged through a contiguous copy.
        let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(0), vec![7u8; 64]);
        let r = b.post_recv(NodeId(0), Tag(0), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert!(a.stats().staging_copies > 0, "{:?}", a.stats());
        assert_eq!(a.metrics().engine.gather_sends, 0);
    }

    #[test]
    fn frame_buffers_recycle_through_the_pool() {
        // Sequential one-at-a-time sends: after the first frame's
        // buffers return to the pool, later frames must reuse them.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        for round in 0..6u32 {
            let s = a.isend(NodeId(1), Tag(0), vec![round as u8; 128]);
            let r = b.post_recv(NodeId(0), Tag(0), 128);
            pump_pair(&world, &mut a, &mut b, |a, b| {
                a.is_send_done(s) && b.is_recv_done(r)
            });
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![round as u8; 128]);
        }
        let m = a.metrics().engine;
        assert!(
            m.pool_hits > m.pool_misses,
            "steady state must be dominated by pool reuse: hits={} misses={}",
            m.pool_hits,
            m.pool_misses
        );
    }

    #[test]
    fn recycled_buffers_never_leak_stale_bytes() {
        // A long first message followed by shorter ones through the
        // same (recycled) buffers: each delivery must carry exactly its
        // own payload, nothing from a previous frame.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let bodies: Vec<Vec<u8>> = vec![vec![0xAA; 512], vec![0x11; 16], vec![0x22; 3], vec![0x33]];
        for body in &bodies {
            let s = a.isend(NodeId(1), Tag(9), body.clone());
            let r = b.post_recv(NodeId(0), Tag(9), 1024);
            pump_pair(&world, &mut a, &mut b, |a, b| {
                a.is_send_done(s) && b.is_recv_done(r)
            });
            let done = b.try_take_recv(r).unwrap();
            assert_eq!(done.data, body[..], "stale bytes leaked into delivery");
            assert!(!done.truncated);
        }
    }

    #[test]
    fn rx_copy_counter_tracks_rendezvous_reassembly_without_rdma() {
        // Eager traffic on the receive side is zero-copy (slices of the
        // frame buffer); only copy-mode rendezvous reassembly moves
        // bytes. GM has no RDMA, so a rendezvous transfer must count.
        let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let small = a.isend(NodeId(1), Tag(0), vec![1u8; 64]);
        let r0 = b.post_recv(NodeId(0), Tag(0), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(small) && b.is_recv_done(r0)
        });
        assert_eq!(
            b.metrics().engine.bytes_copied_rx,
            0,
            "eager delivery must be copy-free"
        );
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 201) as u8).collect();
        let s = a.isend(NodeId(1), Tag(1), body.clone());
        let r = b.post_recv(NodeId(0), Tag(1), body.len());
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, body);
        assert_eq!(
            b.metrics().engine.bytes_copied_rx,
            body.len() as u64,
            "copy-mode rendezvous reassembly must be accounted"
        );
    }

    #[test]
    fn entries_aggregated_matches_traced_decisions() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        world.lock().enable_trace();
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let m = a.metrics();
        let trace = world.lock().take_trace();
        // The trace sees both nodes' engines; at minimum a's frames.
        assert!(trace.decisions() >= m.engine.frames_synthesized as usize);
        assert_eq!(
            m.engine.entries_aggregated,
            trace.decision_entries_for(NodeId(0)),
            "engine counter and trace must agree"
        );
    }
}

#[cfg(test)]
mod credit_tests {
    use super::*;
    use crate::strategy::{StratAggreg, StratDefault};
    use nmad_net::sim::SimDriver;
    use nmad_sim::{nic, shared_world, SharedWorld, SimConfig};

    fn engine_with(
        world: &SharedWorld,
        node: u32,
        credits: Option<usize>,
        strategy: Box<dyn Strategy>,
    ) -> NmadEngine {
        let driver = SimDriver::new(world.clone(), NodeId(node), nmad_sim::RailId(0));
        let meter = Box::new(driver.meter());
        let mut e = NmadEngine::new(vec![Box::new(driver)], meter, strategy, EngineCosts::zero());
        e.set_eager_credit_limit(credits);
        e
    }

    fn engine(world: &SharedWorld, node: u32, credits: Option<usize>) -> NmadEngine {
        engine_with(world, node, credits, Box::new(StratAggreg))
    }

    fn pump(
        world: &SharedWorld,
        a: &mut NmadEngine,
        b: &mut NmadEngine,
        mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
    ) {
        for _ in 0..1_000_000 {
            let moved = a.progress() | b.progress();
            if done(a, b) {
                return;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock:\n{}", world.lock().pending_summary());
            }
        }
        panic!("no convergence");
    }

    #[test]
    fn flow_control_stalls_then_recovers_on_credit_return() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        // FIFO strategy: one frame per message, so a 10-message burst
        // over 2 credits must stall until credits return; everything
        // still delivers in order.
        let mut a = engine_with(&world, 0, Some(2), Box::new(StratDefault));
        let mut b = engine_with(&world, 1, Some(2), Box::new(StratDefault));
        let sends: Vec<_> = (0..10u32)
            .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..10u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i), 64))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        for (i, r) in recvs.into_iter().enumerate() {
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![i as u8; 64]);
        }
        assert!(
            a.stats().credit_stalls > 0,
            "a 10-message burst over 2 credits must stall at least once: {:?}",
            a.stats()
        );
    }

    #[test]
    fn credit_returns_travel_standalone_without_reverse_traffic() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        let mut a = engine(&world, 0, Some(1));
        let mut b = engine(&world, 1, Some(1));
        // One-directional traffic: credits can only return as
        // standalone frames.
        let sends: Vec<_> = (0..4u32)
            .map(|i| a.isend(NodeId(1), Tag(0), vec![i as u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..4u32)
            .map(|_| b.post_recv(NodeId(0), Tag(0), 32))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert!(
            b.stats().credit_frames > 0,
            "receiver must send standalone credit frames: {:?}",
            b.stats()
        );
    }

    #[test]
    fn rendezvous_traffic_is_exempt_from_credits() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Some(1));
        let mut b = engine(&world, 1, Some(1));
        // Exhaust the single credit with an eager message that stays
        // unexpected, then move a rendezvous-sized message: the RTS /
        // CTS / chunk path must still flow.
        let s0 = a.isend(NodeId(1), Tag(0), vec![0u8; 16]);
        pump(&world, &mut a, &mut b, |a, _| a.is_send_done(s0));
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 31) as u8).collect();
        let s1 = a.isend(NodeId(1), Tag(1), big.clone());
        let r1 = b.post_recv(NodeId(0), Tag(1), big.len());
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s1) && b.is_recv_done(r1)
        });
        assert_eq!(b.try_take_recv(r1).unwrap().data, big);
    }

    #[test]
    fn disabled_flow_control_never_stalls() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, None);
        let mut b = engine(&world, 1, None);
        let sends: Vec<_> = (0..50u32)
            .map(|i| a.isend(NodeId(1), Tag(i), vec![1u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..50u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i), 32))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert_eq!(a.stats().credit_stalls, 0);
        assert_eq!(a.stats().credit_frames, 0);
        assert_eq!(b.stats().credit_frames, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn zero_credit_limit_is_rejected() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let _ = engine(&world, 0, Some(0));
    }
}
