/root/repo/target/debug/deps/reliable-914814d79e783a73.d: crates/bench/benches/reliable.rs

/root/repo/target/debug/deps/reliable-914814d79e783a73: crates/bench/benches/reliable.rs

crates/bench/benches/reliable.rs:
