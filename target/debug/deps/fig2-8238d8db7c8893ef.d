/root/repo/target/debug/deps/fig2-8238d8db7c8893ef.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-8238d8db7c8893ef: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
