/root/repo/target/debug/deps/lossy-ab16ff740d0559eb.d: crates/bench/src/bin/lossy.rs

/root/repo/target/debug/deps/lossy-ab16ff740d0559eb: crates/bench/src/bin/lossy.rs

crates/bench/src/bin/lossy.rs:
