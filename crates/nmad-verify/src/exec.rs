//! The model-checking execution engine: a cooperative scheduler that
//! enumerates thread interleavings (and weak-memory load results) with
//! a bounded-preemption depth-first search.
//!
//! One [`Exec`] drives many *executions* of the same closure. Model
//! threads are real OS threads, but exactly one runs at a time: every
//! model operation (atomic access, fence, mutex, condvar, spawn, join)
//! is a *decision point* where the scheduler either continues the
//! current thread or hands control to another. Decisions are recorded
//! on a DFS path; after each execution the deepest decision with an
//! untried alternative is advanced and the closure re-runs, replaying
//! the recorded prefix deterministically.
//!
//! Two sources of nondeterminism are explored:
//!
//! * **scheduling** — which runnable thread performs the next
//!   operation. Alternatives that switch away from a still-runnable
//!   thread cost one *preemption*; executions are explored up to a
//!   configurable preemption bound (forced switches at blocking points
//!   are free), which is the classic CHESS-style bound that finds most
//!   concurrency bugs at small depth.
//! * **load values** — which store a (non-seq-cst) load observes. The
//!   memory model is an operational release/acquire model with vector
//!   clocks: every store records the writer's clock; a load may read
//!   any store not yet obsoleted for the reading thread (coherence
//!   floor = the newest store that happens-before the load), so
//!   relaxed code really does observe stale values unless fences or
//!   release/acquire edges forbid it. `SeqCst` operations additionally
//!   join a global clock in both directions (treating them as seq-cst
//!   fences — slightly stronger than C11, never weaker than what the
//!   hardware may do, and exactly strong enough to validate
//!   Dekker-style flag protocols).
//!
//! State-hash dedup: at each fresh scheduling point the full model
//! state (store histories, thread clocks and positions, lock/condvar
//! queues, remaining preemption budget) is hashed; a repeated hash
//! prunes the subtree (the first visit explores it). Executions that
//! exceed the per-run step bound are abandoned and counted, which
//! keeps the search finite even for models that can spin.

use crate::clock::VClock;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

pub use std::sync::atomic::Ordering;

/// Marker payload unwound through model threads when an execution is
/// being torn down (failure elsewhere, step bound, or controller
/// abort). Never reported as a user failure.
struct AbortToken;

/// Per-thread scheduling status.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar { cv: usize, can_timeout: bool },
    BlockedJoin(usize),
    Finished,
}

/// One store event on a model location.
struct Store {
    val: u64,
    /// Writer's full clock at the store — decides the coherence floor
    /// (a load whose thread has observed this clock cannot read an
    /// older store).
    hb: VClock,
    /// Clock an acquire-load of this store synchronises with (the
    /// writer's clock for release stores, its release-fence clock for
    /// relaxed stores, extended along RMW release sequences).
    msg: VClock,
}

struct Location {
    stores: Vec<Store>,
}

struct MutexState {
    owner: Option<usize>,
    /// Release clock of the last unlock; joined on acquire.
    msg: VClock,
}

struct CvState {
    /// Waiting thread ids in wait order (FIFO wakeup).
    waiters: Vec<usize>,
}

struct ThreadState {
    status: Status,
    cur: VClock,
    /// Clock published by this thread's last release fence.
    fence_rel: VClock,
    /// Join of message clocks read by relaxed loads since thread
    /// start; an acquire fence folds it into `cur`.
    acq_pending: VClock,
    /// Coherence floor per location: the newest store index this
    /// thread has already observed.
    seen: BTreeMap<usize, usize>,
    /// (store index, consecutive repeats) of the last load per
    /// location — drives the staleness-fairness rule that models
    /// store buffers eventually draining.
    last_read: BTreeMap<usize, (usize, u32)>,
    /// Set when this thread was woken by the modelled park timeout.
    timeout_fired: bool,
    /// Operation counter — a program-position proxy for state hashing.
    op_count: u64,
    /// Running hash of every value this thread has loaded — a proxy
    /// for its data-dependent local state.
    obs_hash: u64,
    final_clock: Option<VClock>,
}

impl ThreadState {
    fn new(cur: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            cur,
            fence_rel: VClock::new(),
            acq_pending: VClock::new(),
            seen: BTreeMap::new(),
            last_read: BTreeMap::new(),
            timeout_fired: false,
            op_count: 0,
            obs_hash: 0,
            final_clock: None,
        }
    }
}

/// What a recorded decision chose between.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChoiceKind {
    /// Which thread runs next (options are thread ids).
    Sched,
    /// Which store a load observes (options are store indices).
    Value,
}

struct ChoicePoint {
    kind: ChoiceKind,
    options: Vec<usize>,
    taken: usize,
}

/// Aggregate statistics of one [`check`](crate::checker::Checker::check) run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct schedules executed to completion.
    pub schedules: u64,
    /// Executions abandoned at the per-run step bound.
    pub truncated: u64,
    /// Scheduling subtrees pruned because the hashed model state had
    /// already been explored.
    pub states_deduped: u64,
    /// Modelled park timeouts fired because no thread could otherwise
    /// make progress — zero for a wakeup protocol with no missed
    /// wakeups.
    pub timeouts_fired: u64,
    /// Deepest decision path over all executions.
    pub max_depth: usize,
    /// Most live model threads in any execution.
    pub max_threads: usize,
}

/// A failing schedule: the assertion (or deadlock) message plus the
/// decision path that reproduces it.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Panic payload of the failing assertion, or the deadlock report.
    pub message: String,
    /// Human-readable decision path, e.g. `t0 t1 v2 t1 …`.
    pub schedule: String,
    /// Statistics gathered up to (and including) the failing run.
    pub stats: CheckStats,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed after {} schedule(s): {}\n  schedule: {}",
            self.stats.schedules + 1,
            self.message,
            self.schedule
        )
    }
}

/// Tunables of one check. Constructed through
/// [`Checker`](crate::checker::Checker).
#[derive(Clone, Debug)]
pub struct Config {
    pub preemption_bound: usize,
    pub max_schedules: u64,
    pub max_steps: u64,
    pub max_threads: usize,
    pub dedup: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 20_000,
            max_threads: 8,
            dedup: true,
        }
    }
}

struct ExecInner {
    threads: Vec<ThreadState>,
    locations: Vec<Location>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    /// Global seq-cst clock (see the module docs).
    sc: VClock,
    /// Thread currently allowed to run; `usize::MAX` when the
    /// execution has drained.
    active: usize,
    /// Threads spawned and not yet finished.
    live: usize,
    /// OS handles of every thread spawned this execution.
    os_handles: Vec<std::thread::JoinHandle<()>>,

    // --- DFS state (persists across executions of one check) ---
    path: Vec<ChoicePoint>,
    depth: usize,
    visited: HashSet<u64>,
    stats: CheckStats,

    // --- per-execution state ---
    preemptions: usize,
    steps: u64,
    pruned: bool,
    abort: bool,
    failure: Option<String>,
}

/// The shared execution engine; one per `Checker::check` call.
pub(crate) struct Exec {
    inner: Mutex<ExecInner>,
    cv: Condvar,
    config: Config,
}

// ---------------------------------------------------------------------------
// Thread-local context: which execution (and model thread) am I?
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling OS thread's model context, if it is a model thread of a
/// live execution.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Exec>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// True on threads that are currently inside a model execution — used
/// by the panic-hook shim to keep expected model panics quiet.
static HOOK: Once = Once::new();
thread_local! {
    static IN_MODEL: AtomicBool = const { AtomicBool::new(false) };
}

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = IN_MODEL.with(|f| f.load(StdOrdering::Relaxed));
            if !quiet {
                previous(info);
            }
        }));
    });
}

fn ordering_is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn ordering_is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Consecutive stale (non-newest) re-reads of one location a thread
/// may perform before the model forces it to observe the newest store
/// — the operational stand-in for "store buffers drain eventually",
/// and what keeps polling loops terminating.
const MAX_STALE_REPEATS: u32 = 1;

type Guard<'a> = MutexGuard<'a, ExecInner>;

impl Exec {
    pub(crate) fn new(config: Config) -> Arc<Exec> {
        install_quiet_hook();
        Arc::new(Exec {
            inner: Mutex::new(ExecInner {
                threads: Vec::new(),
                locations: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                sc: VClock::new(),
                active: 0,
                live: 0,
                os_handles: Vec::new(),
                path: Vec::new(),
                depth: 0,
                visited: HashSet::new(),
                stats: CheckStats::default(),
                preemptions: 0,
                steps: 0,
                pruned: false,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
            config,
        })
    }

    fn lock(&self) -> Guard<'_> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn wait<'a>(&self, g: Guard<'a>) -> Guard<'a> {
        self.cv.wait(g).unwrap_or_else(|p| p.into_inner())
    }

    // -----------------------------------------------------------------
    // Controller side: one execution per call, then DFS advance.
    // -----------------------------------------------------------------

    /// Runs one execution of `f`. Returns `false` once the DFS path is
    /// exhausted *before* running (i.e. nothing new to explore).
    pub(crate) fn run_once(self: &Arc<Self>, f: &Arc<dyn Fn() + Send + Sync>) {
        {
            let mut g = self.lock();
            g.threads.clear();
            g.locations.clear();
            g.mutexes.clear();
            g.condvars.clear();
            g.sc = VClock::new();
            g.active = 0;
            g.live = 0;
            g.depth = 0;
            g.preemptions = 0;
            g.steps = 0;
            g.pruned = false;
            g.abort = false;
        }
        // Thread 0: the model main thread running the user closure.
        let root = Arc::clone(f);
        self.spawn_model_thread(move || root(), true);
        // Wait for the execution to drain, then reap the OS threads.
        let handles = {
            let mut g = self.lock();
            while g.live > 0 {
                g = self.wait(g);
            }
            std::mem::take(&mut g.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut g = self.lock();
        g.stats.max_depth = g.stats.max_depth.max(g.depth);
        // A branch taken earlier can end the program sooner than the
        // previous execution did; drop the stale decision suffix so
        // `advance` only flips choices this execution actually made.
        let depth = g.depth;
        g.path.truncate(depth);
        if g.steps > self.config.max_steps {
            g.stats.truncated += 1;
        }
    }

    /// Advances the DFS path to the next unexplored branch. Returns
    /// `false` when the search space is exhausted.
    pub(crate) fn advance(&self) -> bool {
        let mut g = self.lock();
        g.stats.schedules += 1;
        while let Some(cp) = g.path.last_mut() {
            if cp.taken + 1 < cp.options.len() {
                cp.taken += 1;
                return true;
            }
            g.path.pop();
        }
        false
    }

    pub(crate) fn stats(&self) -> CheckStats {
        self.lock().stats.clone()
    }

    pub(crate) fn failure(&self) -> Option<CheckFailure> {
        let g = self.lock();
        g.failure.as_ref().map(|message| CheckFailure {
            message: message.clone(),
            schedule: render_path(&g.path),
            stats: g.stats.clone(),
        })
    }

    pub(crate) fn hit_schedule_cap(&self) -> bool {
        self.lock().stats.schedules >= self.config.max_schedules
    }

    // -----------------------------------------------------------------
    // Model-thread lifecycle.
    // -----------------------------------------------------------------

    /// Registers and starts a new model thread. Called by the
    /// controller for thread 0 and by running model threads for the
    /// rest (via [`crate::thread::spawn`]).
    pub(crate) fn spawn_model_thread<F>(self: &Arc<Self>, f: F, is_root: bool) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let mut g = self.lock();
        if !is_root {
            // The spawning thread yields a decision point first: spawn
            // is an observable event.
            g = self.yield_sched(g);
        }
        let tid = g.threads.len();
        if tid >= self.config.max_threads {
            drop(g);
            panic!(
                "model execution spawned more than {} threads",
                self.config.max_threads
            );
        }
        let cur = if is_root {
            VClock::new()
        } else {
            let me = g.active;
            g.threads[me].cur.tick(me);
            g.threads[me].cur.clone()
        };
        g.threads.push(ThreadState::new(cur));
        g.live += 1;
        let threads_now = g.threads.len();
        g.stats.max_threads = g.stats.max_threads.max(threads_now);
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("nmad-model-{tid}"))
            .spawn(move || exec.model_thread_body(tid, f))
            .expect("spawn model thread");
        g.os_handles.push(handle);
        drop(g);
        tid
    }

    fn model_thread_body<F: FnOnce()>(self: Arc<Self>, tid: usize, f: F) {
        set_ctx(Some((Arc::clone(&self), tid)));
        IN_MODEL.with(|flag| flag.store(true, StdOrdering::Relaxed));
        // Wait to be scheduled for the first time.
        {
            let mut g = self.lock();
            while g.active != tid && !g.abort {
                g = self.wait(g);
            }
        }
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        IN_MODEL.with(|flag| flag.store(false, StdOrdering::Relaxed));
        set_ctx(None);
        match result {
            Ok(()) => self.thread_exit(tid),
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "model thread panicked".to_string()
                    };
                    self.fail(format!("thread t{tid} panicked: {message}"));
                }
                self.abandon_thread(tid);
            }
        }
    }

    /// Records a failure and tears the execution down.
    fn fail(&self, message: String) {
        let mut g = self.lock();
        if g.failure.is_none() {
            g.failure = Some(message);
        }
        g.abort = true;
        self.cv.notify_all();
    }

    /// Clean exit of a model thread: publish the final clock, wake
    /// joiners, hand control onward.
    fn thread_exit(self: &Arc<Self>, tid: usize) {
        let mut g = self.lock();
        let final_clock = g.threads[tid].cur.clone();
        g.threads[tid].status = Status::Finished;
        g.threads[tid].final_clock = Some(final_clock);
        // Joiners become runnable.
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedJoin(tid) {
                g.threads[t].status = Status::Runnable;
            }
        }
        g.live -= 1;
        if g.live == 0 || g.abort {
            g.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        drop(self.hand_off(g, tid));
    }

    /// Exit path for aborted/panicked threads: only bookkeeping.
    fn abandon_thread(&self, tid: usize) {
        let mut g = self.lock();
        g.threads[tid].status = Status::Finished;
        g.live -= 1;
        if g.live == 0 {
            g.active = usize::MAX;
        }
        self.cv.notify_all();
    }

    // -----------------------------------------------------------------
    // Scheduling core.
    // -----------------------------------------------------------------

    fn runnable(g: &ExecInner) -> Vec<usize> {
        (0..g.threads.len())
            .filter(|&t| g.threads[t].status == Status::Runnable)
            .collect()
    }

    fn abort_unwind(&self, g: Guard<'_>) -> ! {
        drop(g);
        panic::panic_any(AbortToken);
    }

    /// Entry gate for every model operation. During execution teardown
    /// (abort set) an *unwinding* thread must not panic again — its
    /// destructors legitimately perform model operations (guard drops,
    /// engine shutdown) — so those operations become no-ops instead.
    fn enter(&self) -> Option<Guard<'_>> {
        let g = self.lock();
        if g.abort && std::thread::panicking() {
            return None;
        }
        Some(g)
    }

    /// Takes one recorded (or fresh) decision.
    fn choose(&self, g: &mut ExecInner, kind: ChoiceKind, options: &[usize]) -> usize {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return options[0];
        }
        if g.depth < g.path.len() {
            let d = g.depth;
            g.depth += 1;
            let cp = &g.path[d];
            debug_assert_eq!(cp.kind, kind, "nondeterministic replay (kind)");
            let v = cp.options[cp.taken];
            debug_assert!(
                options.contains(&v),
                "nondeterministic replay: recorded option {v} not offered"
            );
            return v;
        }
        if g.pruned {
            return options[0];
        }
        g.path.push(ChoicePoint {
            kind,
            options: options.to_vec(),
            taken: 0,
        });
        g.depth += 1;
        options[0]
    }

    /// The scheduling decision taken before every model operation.
    /// On return the calling thread is active again and may perform
    /// its operation under the returned guard.
    fn yield_sched<'a>(&self, mut g: Guard<'a>) -> Guard<'a> {
        if g.abort {
            if std::thread::panicking() {
                // Teardown on an unwinding thread: skip scheduling,
                // the caller checks `abort` and bails out.
                return g;
            }
            self.abort_unwind(g);
        }
        let me = g.active;
        debug_assert_eq!(g.threads[me].status, Status::Runnable);
        g.steps += 1;
        if g.steps > self.config.max_steps {
            // Abandon this execution (counted by the controller).
            g.abort = true;
            self.cv.notify_all();
            self.abort_unwind(g);
        }
        // State-hash dedup, only in fresh territory.
        if self.config.dedup && g.depth >= g.path.len() && !g.pruned {
            let fp = fingerprint(&g, self.config.preemption_bound);
            if !g.visited.insert(fp) {
                g.pruned = true;
                g.stats.states_deduped += 1;
            }
        }
        let enabled = Self::runnable(&g);
        debug_assert!(enabled.contains(&me));
        // NOTE: the option set must be a function of *execution* state
        // only (never of the recorded path's length), or replay would
        // misalign with the recording.
        let options: Vec<usize> = if g.pruned || g.preemptions >= self.config.preemption_bound {
            vec![me]
        } else {
            // Current thread first: the default path runs without
            // preemption.
            let mut v = vec![me];
            v.extend(enabled.iter().copied().filter(|&t| t != me));
            v
        };
        let next = self.choose(&mut g, ChoiceKind::Sched, &options);
        if next != me {
            g.preemptions += 1;
            g.active = next;
            self.cv.notify_all();
            while g.active != me && !g.abort {
                g = self.wait(g);
            }
            if g.abort && !std::thread::panicking() {
                self.abort_unwind(g);
            }
        }
        g
    }

    /// A fairness yield for busy-wait loops (`sync::spin_loop`,
    /// `thread::yield_now`): hands control to some *other* runnable
    /// thread, costing no preemption. Without this a polling loop's
    /// default schedule (current thread first) would spin to the step
    /// bound before the thread it polls ever runs.
    pub(crate) fn spin_loop(&self) {
        let Some(mut g) = self.enter() else { return };
        if g.abort {
            self.abort_unwind(g);
        }
        let me = g.active;
        g.steps += 1;
        if g.steps > self.config.max_steps {
            g.abort = true;
            self.cv.notify_all();
            self.abort_unwind(g);
        }
        if self.config.dedup && g.depth >= g.path.len() && !g.pruned {
            let fp = fingerprint(&g, self.config.preemption_bound);
            if !g.visited.insert(fp) {
                g.pruned = true;
                g.stats.states_deduped += 1;
            }
        }
        let others: Vec<usize> = Self::runnable(&g)
            .into_iter()
            .filter(|&t| t != me)
            .collect();
        if others.is_empty() {
            // Nothing else can run; the spinner must make progress on
            // its own (the staleness rule guarantees it eventually
            // observes the newest stores).
            return;
        }
        let next = self.choose(&mut g, ChoiceKind::Sched, &others);
        g.active = next;
        self.cv.notify_all();
        while g.active != me && !g.abort {
            g = self.wait(g);
        }
        if g.abort && !std::thread::panicking() {
            self.abort_unwind(g);
        }
    }

    /// Hands control to some other thread while the caller is blocked
    /// (or exiting). Fires a modelled timeout, or reports deadlock,
    /// when nothing is runnable.
    fn hand_off<'a>(&self, mut g: Guard<'a>, _me: usize) -> Guard<'a> {
        let enabled = Self::runnable(&g);
        if enabled.is_empty() {
            // A thread parked with a timeout may always come back.
            let timeout_candidate = (0..g.threads.len()).find(|&t| {
                matches!(
                    g.threads[t].status,
                    Status::BlockedCondvar {
                        can_timeout: true,
                        ..
                    }
                )
            });
            match timeout_candidate {
                Some(t) => {
                    g.threads[t].status = Status::Runnable;
                    g.threads[t].timeout_fired = true;
                    g.stats.timeouts_fired += 1;
                    g.active = t;
                }
                None => {
                    let blocked: Vec<String> = (0..g.threads.len())
                        .filter(|&t| {
                            !matches!(g.threads[t].status, Status::Finished | Status::Runnable)
                        })
                        .map(|t| format!("t{t}:{:?}", g.threads[t].status))
                        .collect();
                    drop(g);
                    self.fail(format!(
                        "deadlock: all live threads blocked [{}]",
                        blocked.join(" ")
                    ));
                    panic::panic_any(AbortToken);
                }
            }
        } else {
            // A forced switch: the blocked thread cannot continue, so
            // this costs no preemption.
            let next = self.choose(&mut g, ChoiceKind::Sched, &enabled);
            g.active = next;
        }
        self.cv.notify_all();
        g
    }

    /// Blocks the calling thread with `status` until it is runnable
    /// and scheduled again.
    fn block<'a>(&self, mut g: Guard<'a>, me: usize, status: Status) -> Guard<'a> {
        g.threads[me].status = status;
        g = self.hand_off(g, me);
        loop {
            if g.abort || (g.active == me && g.threads[me].status == Status::Runnable) {
                break;
            }
            g = self.wait(g);
        }
        if g.abort {
            self.abort_unwind(g);
        }
        g
    }

    // -----------------------------------------------------------------
    // Memory model: locations, loads, stores, RMWs, fences.
    // -----------------------------------------------------------------

    pub(crate) fn new_location(&self, init: u64) -> usize {
        let mut g = self.lock();
        let creator = g.active;
        let hb = g.threads[creator].cur.clone();
        let msg = hb.clone();
        g.locations.push(Location {
            stores: vec![Store { val: init, hb, msg }],
        });
        g.locations.len() - 1
    }

    /// Coherence floor: index of the newest store that happens-before
    /// the reading thread's current point (it cannot read older), also
    /// bounded by what the thread already observed.
    fn floor(g: &ExecInner, me: usize, loc: usize) -> usize {
        let stores = &g.locations[loc].stores;
        let cur = &g.threads[me].cur;
        let mut floor = g.threads[me].seen.get(&loc).copied().unwrap_or(0);
        for (i, s) in stores.iter().enumerate().skip(floor) {
            if s.hb.leq(cur) {
                floor = i;
            }
        }
        floor
    }

    pub(crate) fn atomic_load(&self, loc: usize, ord: Ordering) -> u64 {
        let Some(mut g) = self.enter() else { return 0 };
        g = self.yield_sched(g);
        if g.abort {
            return 0;
        }
        let me = g.active;
        if ord == Ordering::SeqCst {
            let sc = g.sc.clone();
            g.threads[me].cur.join(&sc);
        }
        let floor = Self::floor(&g, me, loc);
        let last = g.locations[loc].stores.len() - 1;
        // Newest first: the default (no extra branch) execution is
        // sequentially consistent.
        let mut candidates: Vec<usize> = (floor..=last).rev().collect();
        if let Some(&(prev, reps)) = g.threads[me].last_read.get(&loc) {
            if reps > MAX_STALE_REPEATS && prev < last {
                // Store buffers drain eventually: stop offering the
                // same stale store over and over.
                candidates.retain(|&i| i > prev);
            }
        }
        let idx = if g.pruned {
            candidates[0]
        } else {
            self.choose(&mut g, ChoiceKind::Value, &candidates)
        };
        let val = g.locations[loc].stores[idx].val;
        let msg = g.locations[loc].stores[idx].msg.clone();
        let t = &mut g.threads[me];
        let seen = t.seen.entry(loc).or_insert(0);
        *seen = (*seen).max(idx);
        let entry = t.last_read.entry(loc).or_insert((idx, 0));
        *entry = if entry.0 == idx && idx < last {
            (idx, entry.1 + 1)
        } else {
            (idx, 0)
        };
        if ordering_is_acquire(ord) {
            t.cur.join(&msg);
        } else {
            t.acq_pending.join(&msg);
        }
        t.op_count += 1;
        t.obs_hash = mix(
            t.obs_hash,
            (loc as u64) << 32 ^ idx as u64 ^ val.rotate_left(17),
        );
        if ord == Ordering::SeqCst {
            let cur = g.threads[me].cur.clone();
            g.sc.join(&cur);
        }
        val
    }

    pub(crate) fn atomic_store(&self, loc: usize, val: u64, ord: Ordering) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        let me = g.active;
        if ord == Ordering::SeqCst {
            let sc = g.sc.clone();
            g.threads[me].cur.join(&sc);
        }
        g.threads[me].cur.tick(me);
        let hb = g.threads[me].cur.clone();
        let msg = if ordering_is_release(ord) {
            hb.clone()
        } else {
            g.threads[me].fence_rel.clone()
        };
        g.locations[loc].stores.push(Store { val, hb, msg });
        let idx = g.locations[loc].stores.len() - 1;
        let t = &mut g.threads[me];
        t.seen.insert(loc, idx);
        t.last_read.insert(loc, (idx, 0));
        t.op_count += 1;
        if ord == Ordering::SeqCst {
            let cur = g.threads[me].cur.clone();
            g.sc.join(&cur);
        }
    }

    /// Read-modify-write: atomically reads the newest store and
    /// replaces it. Returns the previous value.
    pub(crate) fn atomic_rmw<F: FnOnce(u64) -> u64>(&self, loc: usize, ord: Ordering, f: F) -> u64 {
        let Some(mut g) = self.enter() else { return 0 };
        g = self.yield_sched(g);
        if g.abort {
            return 0;
        }
        let me = g.active;
        if ord == Ordering::SeqCst {
            let sc = g.sc.clone();
            g.threads[me].cur.join(&sc);
        }
        let last = g.locations[loc].stores.len() - 1;
        let old = g.locations[loc].stores[last].val;
        let read_msg = g.locations[loc].stores[last].msg.clone();
        {
            let t = &mut g.threads[me];
            if ordering_is_acquire(ord) {
                t.cur.join(&read_msg);
            } else {
                t.acq_pending.join(&read_msg);
            }
            t.cur.tick(me);
        }
        let hb = g.threads[me].cur.clone();
        let mut msg = if ordering_is_release(ord) {
            hb.clone()
        } else {
            g.threads[me].fence_rel.clone()
        };
        // Release-sequence continuation: an acquire of this RMW also
        // synchronises with the store it replaced.
        msg.join(&read_msg);
        g.locations[loc].stores.push(Store {
            val: f(old),
            hb,
            msg,
        });
        let idx = g.locations[loc].stores.len() - 1;
        let t = &mut g.threads[me];
        t.seen.insert(loc, idx);
        t.last_read.insert(loc, (idx, 0));
        t.op_count += 1;
        t.obs_hash = mix(t.obs_hash, (loc as u64) << 32 ^ old.rotate_left(9));
        if ord == Ordering::SeqCst {
            let cur = g.threads[me].cur.clone();
            g.sc.join(&cur);
        }
        old
    }

    /// Compare-exchange (strong; the model has no spurious failures).
    pub(crate) fn atomic_cas(
        &self,
        loc: usize,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let Some(mut g) = self.enter() else {
            return Err(0);
        };
        g = self.yield_sched(g);
        if g.abort {
            return Err(0);
        }
        let me = g.active;
        let sc_involved = success == Ordering::SeqCst || failure == Ordering::SeqCst;
        if sc_involved {
            let sc = g.sc.clone();
            g.threads[me].cur.join(&sc);
        }
        let last = g.locations[loc].stores.len() - 1;
        let old = g.locations[loc].stores[last].val;
        let read_msg = g.locations[loc].stores[last].msg.clone();
        let ok = old == expected;
        let ord = if ok { success } else { failure };
        {
            let t = &mut g.threads[me];
            if ordering_is_acquire(ord) {
                t.cur.join(&read_msg);
            } else {
                t.acq_pending.join(&read_msg);
            }
        }
        if ok {
            g.threads[me].cur.tick(me);
            let hb = g.threads[me].cur.clone();
            let mut msg = if ordering_is_release(success) {
                hb.clone()
            } else {
                g.threads[me].fence_rel.clone()
            };
            msg.join(&read_msg);
            g.locations[loc].stores.push(Store { val: new, hb, msg });
        }
        let idx = g.locations[loc].stores.len() - 1;
        let t = &mut g.threads[me];
        t.seen.insert(loc, idx);
        t.last_read.insert(loc, (idx, 0));
        t.op_count += 1;
        t.obs_hash = mix(t.obs_hash, (loc as u64) << 32 ^ old ^ u64::from(ok) << 63);
        if sc_involved {
            let cur = g.threads[me].cur.clone();
            g.sc.join(&cur);
        }
        if ok {
            Ok(old)
        } else {
            Err(old)
        }
    }

    pub(crate) fn fence(&self, ord: Ordering) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        let me = g.active;
        if ordering_is_acquire(ord) {
            let pending = g.threads[me].acq_pending.clone();
            g.threads[me].cur.join(&pending);
        }
        if ord == Ordering::SeqCst {
            let sc = g.sc.clone();
            g.threads[me].cur.join(&sc);
        }
        if ordering_is_release(ord) {
            g.threads[me].fence_rel = g.threads[me].cur.clone();
        }
        if ord == Ordering::SeqCst {
            let cur = g.threads[me].cur.clone();
            g.sc.join(&cur);
        }
        g.threads[me].op_count += 1;
    }

    // -----------------------------------------------------------------
    // Model mutex & condvar.
    // -----------------------------------------------------------------

    pub(crate) fn mutex_new(&self) -> usize {
        let mut g = self.lock();
        g.mutexes.push(MutexState {
            owner: None,
            msg: VClock::new(),
        });
        g.mutexes.len() - 1
    }

    pub(crate) fn mutex_lock(&self, mid: usize) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        g = self.mutex_lock_locked(g, mid);
        drop(g);
    }

    /// Acquire `mid` for the active thread; the scheduling decision
    /// has already been taken.
    fn mutex_lock_locked<'a>(&self, mut g: Guard<'a>, mid: usize) -> Guard<'a> {
        loop {
            let me = g.active;
            if g.mutexes[mid].owner.is_none() {
                g.mutexes[mid].owner = Some(me);
                let msg = g.mutexes[mid].msg.clone();
                g.threads[me].cur.join(&msg);
                g.threads[me].op_count += 1;
                return g;
            }
            debug_assert_ne!(
                g.mutexes[mid].owner,
                Some(me),
                "model mutex is not reentrant"
            );
            g = self.block(g, me, Status::BlockedMutex(mid));
        }
    }

    pub(crate) fn mutex_try_lock(&self, mid: usize) -> bool {
        let Some(mut g) = self.enter() else {
            return true;
        };
        g = self.yield_sched(g);
        if g.abort {
            return true;
        }
        let me = g.active;
        g.threads[me].op_count += 1;
        if g.mutexes[mid].owner.is_none() {
            g.mutexes[mid].owner = Some(me);
            let msg = g.mutexes[mid].msg.clone();
            g.threads[me].cur.join(&msg);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(&self, mid: usize) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        let me = g.active;
        debug_assert_eq!(g.mutexes[mid].owner, Some(me), "unlock by non-owner");
        g.threads[me].cur.tick(me);
        g.mutexes[mid].owner = None;
        g.mutexes[mid].msg = g.threads[me].cur.clone();
        g.threads[me].op_count += 1;
        // Contenders become runnable and re-race for the lock.
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedMutex(mid) {
                g.threads[t].status = Status::Runnable;
            }
        }
        drop(g);
    }

    pub(crate) fn condvar_new(&self) -> usize {
        let mut g = self.lock();
        g.condvars.push(CvState {
            waiters: Vec::new(),
        });
        g.condvars.len() - 1
    }

    /// Releases `mid`, parks on `cvid`, and reacquires `mid` on
    /// wakeup. Returns true when the wakeup was the modelled timeout
    /// (fired only when the whole execution would otherwise be stuck).
    pub(crate) fn condvar_wait(&self, cvid: usize, mid: usize, can_timeout: bool) -> bool {
        let Some(mut g) = self.enter() else {
            return false;
        };
        g = self.yield_sched(g);
        if g.abort {
            return false;
        }
        let me = g.active;
        // Atomically: release the mutex, join the wait queue.
        debug_assert_eq!(
            g.mutexes[mid].owner,
            Some(me),
            "condvar wait without the lock"
        );
        g.threads[me].cur.tick(me);
        g.mutexes[mid].owner = None;
        g.mutexes[mid].msg = g.threads[me].cur.clone();
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedMutex(mid) {
                g.threads[t].status = Status::Runnable;
            }
        }
        g.condvars[cvid].waiters.push(me);
        g.threads[me].timeout_fired = false;
        g = self.block(
            g,
            me,
            Status::BlockedCondvar {
                cv: cvid,
                can_timeout,
            },
        );
        // Woken (notify or timeout): leave the queue if still on it,
        // then reacquire the mutex.
        g.condvars[cvid].waiters.retain(|&t| t != me);
        let timed_out = g.threads[me].timeout_fired;
        g.threads[me].timeout_fired = false;
        g = self.mutex_lock_locked(g, mid);
        drop(g);
        timed_out
    }

    pub(crate) fn condvar_notify_one(&self, cvid: usize) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        if let Some(&t) = g.condvars[cvid].waiters.first() {
            g.condvars[cvid].waiters.remove(0);
            g.threads[t].status = Status::Runnable;
        }
        let me = g.active;
        g.threads[me].op_count += 1;
        drop(g);
    }

    pub(crate) fn condvar_notify_all(&self, cvid: usize) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        let waiters = std::mem::take(&mut g.condvars[cvid].waiters);
        for t in waiters {
            g.threads[t].status = Status::Runnable;
        }
        let me = g.active;
        g.threads[me].op_count += 1;
        drop(g);
    }

    // -----------------------------------------------------------------
    // Join.
    // -----------------------------------------------------------------

    pub(crate) fn join_thread(&self, target: usize) {
        let Some(mut g) = self.enter() else { return };
        g = self.yield_sched(g);
        if g.abort {
            return;
        }
        let me = g.active;
        if g.threads[target].status != Status::Finished {
            g = self.block(g, me, Status::BlockedJoin(target));
        }
        debug_assert_eq!(g.threads[target].status, Status::Finished);
        let final_clock = g.threads[target]
            .final_clock
            .clone()
            .expect("finished thread has a final clock");
        g.threads[me].cur.join(&final_clock);
        g.threads[me].op_count += 1;
        drop(g);
    }
}

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64-style diffusion; quality only matters for dedup.
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x
}

/// Hash of the complete model state at a scheduling point.
fn fingerprint(g: &ExecInner, bound: usize) -> u64 {
    let mut h = DefaultHasher::new();
    g.active.hash(&mut h);
    (bound - g.preemptions.min(bound)).hash(&mut h);
    g.sc.hash(&mut h);
    for loc in &g.locations {
        loc.stores.len().hash(&mut h);
        for s in &loc.stores {
            s.val.hash(&mut h);
            s.hb.hash(&mut h);
            s.msg.hash(&mut h);
        }
    }
    for t in &g.threads {
        t.status.hash(&mut h);
        t.cur.hash(&mut h);
        t.fence_rel.hash(&mut h);
        t.acq_pending.hash(&mut h);
        t.seen.hash(&mut h);
        t.last_read.hash(&mut h);
        t.timeout_fired.hash(&mut h);
        t.op_count.hash(&mut h);
        t.obs_hash.hash(&mut h);
    }
    for m in &g.mutexes {
        m.owner.hash(&mut h);
        m.msg.hash(&mut h);
    }
    for c in &g.condvars {
        c.waiters.hash(&mut h);
    }
    h.finish()
}

fn render_path(path: &[ChoicePoint]) -> String {
    let mut out = String::new();
    for cp in path {
        if !out.is_empty() {
            out.push(' ');
        }
        match cp.kind {
            ChoiceKind::Sched => out.push('t'),
            ChoiceKind::Value => out.push('v'),
        }
        out.push_str(&cp.options[cp.taken].to_string());
    }
    if out.is_empty() {
        out.push_str("(deterministic)");
    }
    out
}
