/root/repo/target/debug/deps/figures_micro-ff25f30848351eb6.d: crates/bench/benches/figures_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_micro-ff25f30848351eb6.rmeta: crates/bench/benches/figures_micro.rs Cargo.toml

crates/bench/benches/figures_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
