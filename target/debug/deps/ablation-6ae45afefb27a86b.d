/root/repo/target/debug/deps/ablation-6ae45afefb27a86b.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-6ae45afefb27a86b.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
