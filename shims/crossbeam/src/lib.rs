//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s unbounded MPMC channel over
//! `std::sync::mpsc` (receivers are cloneable, guarded by a mutex, to
//! keep crossbeam's multi-consumer contract), plus the two lock-free
//! building blocks the threaded progression engine needs:
//! `queue::ArrayQueue` (a bounded MPMC ring in the style of Dmitry
//! Vyukov's bounded queue, as shipped by the real crossbeam) and
//! `utils::CachePadded`.
//!
//! This shim is the only workspace crate allowed to contain `unsafe`
//! (the engine crates all carry `#![forbid(unsafe_code)]`); every
//! unsafe site below documents its invariant with a `// SAFETY:`
//! comment, and `cargo run -p xtask -- lint` enforces both rules. The
//! queue's atomics go through [`sync`], so under the `nmad-model`
//! feature the whole ticket/sequence protocol runs on the nmad-verify
//! model checker.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod sync;

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so two neighbouring cells
    /// never share a cache line (two lines, because modern prefetchers
    /// pull line pairs). Mirrors `crossbeam_utils::CachePadded`.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads `value`.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

pub mod queue {
    use crate::sync::{AtomicUsize, Ordering};
    use crate::utils::CachePadded;
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::mem::MaybeUninit;

    /// One ring slot: a sequence word plus storage.
    ///
    /// The sequence encodes the slot's lap state: `seq == pos` means
    /// free for the pusher of ticket `pos`; `seq == pos + 1` means
    /// filled, ready for the popper of ticket `pos`; after the pop the
    /// slot advances a lap (`seq = pos + cap`).
    struct Slot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue —
    /// Vyukov's bounded MPMC ring, the algorithm behind crossbeam's
    /// `ArrayQueue`. Push and pop are wait-free in the common case (one
    /// CAS each) and never block; a full queue hands the value back.
    pub struct ArrayQueue<T> {
        /// Pop ticket counter (own cache line: poppers don't invalidate
        /// pushers).
        head: CachePadded<AtomicUsize>,
        /// Push ticket counter.
        tail: CachePadded<AtomicUsize>,
        slots: Box<[Slot<T>]>,
        cap: usize,
    }

    // SAFETY: sending the queue moves the buffered `T`s with it, so
    // `T: Send` suffices; no thread-affine state is held.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    // SAFETY: the UnsafeCell slots are never accessed concurrently —
    // the seq/ticket protocol gives the claiming pusher (resp. popper)
    // exclusive access to a slot between its CAS and its seq store —
    // so sharing `&ArrayQueue` across threads only requires `T: Send`.
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// A queue holding at most `cap` values.
        ///
        /// # Panics
        /// If `cap` is zero.
        pub fn new(cap: usize) -> ArrayQueue<T> {
            assert!(cap > 0, "ArrayQueue needs a non-zero capacity");
            ArrayQueue {
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                slots: (0..cap)
                    .map(|i| Slot {
                        seq: AtomicUsize::new(i),
                        value: UnsafeCell::new(MaybeUninit::uninit()),
                    })
                    .collect(),
                cap,
            }
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Attempts to enqueue `value`; a full queue returns it back.
        #[inline]
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed); // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
            loop {
                let slot = &self.slots[tail % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq.wrapping_sub(tail) as isize;
                if diff == 0 {
                    // The slot is free for ticket `tail`: claim it.
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed, // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                        Ordering::Relaxed, // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                    ) {
                        Ok(_) => {
                            // SAFETY: the tail CAS claimed ticket
                            // `tail` exclusively, and `seq == tail`
                            // showed the popper one lap behind is done
                            // with the slot; nobody else touches it
                            // until the Release store below publishes
                            // it.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                } else if diff < 0 {
                    // The slot still holds last lap's value: full.
                    return Err(value);
                } else {
                    // Another pusher claimed this ticket; catch up.
                    tail = self.tail.load(Ordering::Relaxed); // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                }
            }
        }

        /// Attempts to dequeue the oldest value.
        #[inline]
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed); // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
            loop {
                let slot = &self.slots[head % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq.wrapping_sub(head.wrapping_add(1)) as isize;
                if diff == 0 {
                    // The slot holds ticket `head`'s value: claim it.
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed, // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                        Ordering::Relaxed, // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                    ) {
                        Ok(_) => {
                            // SAFETY: the head CAS claimed ticket
                            // `head` exclusively, and `seq == head+1`
                            // (Acquire, pairing with the pusher's
                            // Release) proves the pusher's write to
                            // this slot is complete and visible; the
                            // value is moved out exactly once.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Free the slot for the pusher one lap ahead.
                            slot.seq
                                .store(head.wrapping_add(self.cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                } else if diff < 0 {
                    // The slot is still waiting for its pusher: empty.
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed); // ORDERING: queue protocol; the slot stamps carry the Acquire/Release pairing
                }
            }
        }

        /// True when no value is buffered (racy, like any concurrent
        /// emptiness check — exact only when producers are quiescent).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Approximate number of buffered values.
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.wrapping_sub(head).min(self.cap)
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("cap", &self.cap)
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_within_capacity() {
            let q = ArrayQueue::new(4);
            for i in 0..4 {
                q.push(i).unwrap();
            }
            assert_eq!(q.push(99), Err(99), "full queue hands the value back");
            for i in 0..4 {
                assert_eq!(q.pop(), Some(i));
            }
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn wraps_laps_without_losing_values() {
            let q = ArrayQueue::new(3);
            for lap in 0..100u64 {
                q.push(lap).unwrap();
                assert_eq!(q.pop(), Some(lap));
            }
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_producers_deliver_every_value_once() {
            let q = Arc::new(ArrayQueue::new(64));
            let producers = 4;
            let per = 5_000u64;
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per {
                            let mut v = p as u64 * per + i;
                            loop {
                                match q.push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            let mut seen = vec![false; producers * per as usize];
            let mut got = 0;
            while got < seen.len() {
                if let Some(v) = q.pop() {
                    assert!(!seen[v as usize], "value {v} delivered twice");
                    seen[v as usize] = true;
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(seen.iter().all(|&s| s), "every value delivered");
        }

        #[test]
        fn per_producer_order_is_preserved() {
            let q = Arc::new(ArrayQueue::new(8));
            let writer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        while q.push(i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let mut next = 0u64;
            while next < 10_000 {
                if let Some(v) = q.pop() {
                    assert_eq!(v, next, "single-producer stream reordered");
                    next += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            writer.join().unwrap();
        }

        #[test]
        fn drop_releases_buffered_values() {
            let v = Arc::new(());
            {
                let q = ArrayQueue::new(4);
                q.push(Arc::clone(&v)).unwrap();
                q.push(Arc::clone(&v)).unwrap();
                assert_eq!(Arc::strong_count(&v), 3);
            }
            assert_eq!(Arc::strong_count(&v), 1, "queue drop released slots");
        }
    }
}

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel (cloneable).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// No message was buffered at the time of the call.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv().map_err(|_| RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_after_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1), "buffered frames drain first");
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_no_receiver_returns_message() {
            let (tx, rx) = unbounded::<&str>();
            drop(rx);
            let err = tx.send("lost").unwrap_err();
            assert_eq!(err.0, "lost");
        }

        #[test]
        fn cloned_receiver_shares_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1u8).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx2.try_recv(), Ok(2));
        }
    }
}
