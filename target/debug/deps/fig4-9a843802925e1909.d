/root/repo/target/debug/deps/fig4-9a843802925e1909.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-9a843802925e1909: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
