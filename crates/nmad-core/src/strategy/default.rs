//! FIFO strategy without optimization.
//!
//! One application segment per frame, strict submission order, no
//! cross-flow aggregation, no reordering. This mirrors what a classical
//! synchronous library does and serves two purposes: measuring the bare
//! engine overhead, and acting as the ablation baseline for every other
//! strategy.

use super::{
    eager_cutoff, plan_ctrl, plan_rdv_chunk, Budget, FramePlan, NicView, PlanEntry, Strategy,
};
use crate::window::Window;

/// See the module documentation.
#[derive(Debug, Default)]
pub struct StratDefault;

impl Strategy for StratDefault {
    fn name(&self) -> &'static str {
        "default"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        Box::new(StratDefault)
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        let dst = window.next_dst(nic.index)?;
        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);

        // Control traffic first; if any was pending, ship it alone to
        // keep the grant latency minimal.
        plan_ctrl(&mut plan, window, &mut budget);
        if !plan.is_empty() {
            return Some(plan);
        }

        // Granted rendezvous data next, one maximal chunk per frame.
        if plan_rdv_chunk(&mut plan, window, &mut budget, usize::MAX) {
            return Some(plan);
        }

        // Otherwise exactly the front segment, eager or rendezvous.
        let cutoff = eager_cutoff(nic.caps);
        let wrapper = window.take_front_if(nic.index, |w| w.dst == dst)?;
        if wrapper.len() > cutoff {
            plan.entries.push(PlanEntry::Rts(wrapper));
        } else {
            plan.entries.push(PlanEntry::Data(wrapper));
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use bytes::Bytes;
    use nmad_net::Capabilities;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn seg(dst: u32, seq: u32, len: usize) -> PackWrapper {
        PackWrapper {
            dst: NodeId(dst),
            tag: Tag(1),
            seq: SeqNo(seq),
            priority: Priority::Normal,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: seq as u64,
        }
    }

    #[test]
    fn sends_one_segment_per_frame_in_order() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, 100), None);
        w.push_segment(seg(1, 1, 100), None);
        let mut s = StratDefault;
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        let p1 = s.schedule(&mut w, &view).unwrap();
        assert_eq!(p1.entries.len(), 1, "no aggregation");
        let p2 = s.schedule(&mut w, &view).unwrap();
        assert_eq!(p2.entries.len(), 1);
        match (&p1.entries[0], &p2.entries[0]) {
            (PlanEntry::Data(a), PlanEntry::Data(b)) => {
                assert_eq!((a.seq, b.seq), (SeqNo(0), SeqNo(1)));
            }
            other => panic!("expected eager data, got {other:?}"),
        }
        assert!(s.schedule(&mut w, &view).is_none(), "window drained");
    }

    #[test]
    fn large_segment_becomes_rts() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, caps.rdv_threshold + 1), None);
        let mut s = StratDefault;
        let plan = s
            .schedule(
                &mut w,
                &NicView {
                    index: 0,
                    caps: &caps,
                },
            )
            .unwrap();
        assert!(matches!(plan.entries[0], PlanEntry::Rts(_)));
    }

    #[test]
    fn ctrl_ships_alone_before_data() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(2, 0, 10), None);
        w.push_ctrl(crate::window::CtrlMsg {
            dst: NodeId(2),
            tag: Tag(9),
            seq: SeqNo(0),
            total: 1 << 20,
        });
        let mut s = StratDefault;
        let view = NicView {
            index: 0,
            caps: &caps,
        };
        let p1 = s.schedule(&mut w, &view).unwrap();
        assert_eq!(p1.entries.len(), 1);
        assert!(matches!(p1.entries[0], PlanEntry::Cts(_)));
        let p2 = s.schedule(&mut w, &view).unwrap();
        assert!(matches!(p2.entries[0], PlanEntry::Data(_)));
    }
}
