//! Exhaustive model-checking of the sharded-runtime protocols.
//!
//! Compiled only under `--features nmad-model` (mapped to
//! `cfg(nmad_model)` by build.rs). Three properties the sharded
//! progression runtime leans on, each proven over every explored
//! schedule and paired with a deliberately weakened mutant the checker
//! must catch:
//!
//! 1. **Cross-shard id watermark** — request ids allocated by racing
//!    shards are unique and dense, so the completion board can bucket
//!    by `id % buckets` without collisions.
//! 2. **Steal protocol round-trip** — every donated request comes back
//!    to its victim as exactly one `Done`, never lost, never completed
//!    twice.
//! 3. **Per-destination FIFO** — the routing function is pure, so one
//!    flow's messages always land in one shard's ring and stay in
//!    submission order end to end.

#![cfg(nmad_model)]

use nmad_core::ring::SubmitRing;
use nmad_core::sync::{spin_loop, AtomicU64, AtomicUsize, Ordering};
use nmad_core::{ShardPolicy, StealGroup, Tag};
use nmad_sim::NodeId;
use nmad_verify::{thread, CheckStats, Checker};
use std::sync::Arc;

// ---------------------------------------------------------------------
// 1. Cross-shard id watermark.
// ---------------------------------------------------------------------

/// The sharded handle's id allocator: every shard context draws request
/// ids from one shared `AtomicU64` via `fetch_add`. Across every
/// schedule the ids handed out are unique *and dense* — the completion
/// board's `id % buckets` mapping relies on both.
fn check_cross_shard_id_watermark(dedup: bool) -> CheckStats {
    Checker::new()
        .max_schedules(15_000)
        .dedup(dedup)
        .check(|| {
            let next_req = Arc::new(AtomicU64::new(0));
            let shard_ctxs: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&next_req);
                    thread::spawn(move || {
                        [
                            n.fetch_add(1, Ordering::Relaxed),
                            n.fetch_add(1, Ordering::Relaxed),
                        ]
                    })
                })
                .collect();
            let mut ids = vec![
                next_req.fetch_add(1, Ordering::Relaxed),
                next_req.fetch_add(1, Ordering::Relaxed),
            ];
            for ctx in shard_ctxs {
                ids.extend(ctx.join());
            }
            ids.sort_unstable();
            assert_eq!(
                ids,
                [0, 1, 2, 3, 4, 5, 6, 7],
                "cross-shard id watermark issued a duplicate or sparse id"
            );
        })
        .expect("cross-shard id allocation must be unique and dense in every schedule")
}

#[test]
fn model_cross_shard_id_watermark_is_unique_and_dense() {
    let stats = check_cross_shard_id_watermark(true);
    assert!(
        stats.schedules >= 100,
        "id-watermark model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "id-watermark model hit the step bound: {stats:?}"
    );
}

/// Mutant: the allocator demoted from `fetch_add` to a racy
/// load-then-store. Two shards can read the same watermark and hand out
/// the same request id — the checker must find that schedule.
#[test]
fn model_cross_shard_id_watermark_load_store_mutant_is_caught() {
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let next_req = Arc::new(AtomicU64::new(0));
            let alloc = |n: &AtomicU64| {
                // mutant: read-modify-write torn into two operations.
                let id = n.load(Ordering::Relaxed);
                n.store(id + 1, Ordering::Relaxed);
                id
            };
            let n = Arc::clone(&next_req);
            let shard = thread::spawn(move || alloc(&n));
            let mine = alloc(&next_req);
            let theirs = shard.join();
            assert_ne!(mine, theirs, "duplicate request id allocated across shards");
        })
        .expect_err("the load-then-store watermark mutant must be caught");
    assert!(
        failure.message.contains("duplicate request id"),
        "wrong failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "the failing path must be replayable: {failure}"
    );
}

// ---------------------------------------------------------------------
// 2. Steal protocol round-trip.
// ---------------------------------------------------------------------

/// The full donation round-trip over the real [`StealGroup`]: the
/// victim (shard 0) donates two requests to the thief (shard 1); the
/// thief transmits them and pushes one `Done` per request back. In
/// every schedule the victim collects exactly one completion per
/// donated request — none lost, none doubled.
fn check_steal_round_trip(dedup: bool) -> CheckStats {
    Checker::new()
        .max_schedules(15_000)
        .dedup(dedup)
        .check(|| {
            let group: Arc<StealGroup<u64>> = Arc::new(StealGroup::new(2));
            let g = Arc::clone(&group);
            let thief = thread::spawn(move || {
                let mut handled = 0u32;
                while handled < 2 {
                    let stolen = g.drain(1);
                    if stolen.is_empty() {
                        spin_loop();
                        continue;
                    }
                    for token in stolen {
                        handled += 1;
                        // Transmit complete: report Done to the victim.
                        g.push(0, token + 100).expect("victim never departs");
                    }
                }
            });
            group.push(1, 1).expect("thief is alive");
            group.push(1, 2).expect("thief is alive");
            let mut dones = Vec::new();
            while dones.len() < 2 {
                let got = group.drain(0);
                if got.is_empty() {
                    spin_loop();
                }
                dones.extend(got);
            }
            thief.join();
            dones.sort_unstable();
            assert_eq!(
                dones,
                [101, 102],
                "a donated request was lost or completed twice"
            );
            assert_eq!(
                group.drain(0),
                Vec::<u64>::new(),
                "a phantom completion appeared after the round-trip"
            );
        })
        .expect("every donation must round-trip to exactly one Done in every schedule")
}

#[test]
fn model_steal_round_trip_conserves_every_donation() {
    let stats = check_steal_round_trip(true);
    assert!(
        stats.schedules >= 100,
        "steal round-trip model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "steal round-trip model hit the step bound: {stats:?}"
    );
}

/// Mutant: competing thieves claiming from a shared donation pool with
/// the claim counter torn into a racy load-then-store (instead of the
/// mailbox's locked handoff). Two thieves can claim the same request —
/// double ownership the checker must catch.
#[test]
fn model_steal_competing_thieves_mutant_is_caught() {
    struct WeakPool {
        tokens: [u64; 2],
        claimed: AtomicUsize,
    }
    impl WeakPool {
        fn claim(&self) -> Option<u64> {
            // mutant: claim index read and advanced non-atomically.
            let i = self.claimed.load(Ordering::Relaxed);
            if i >= 2 {
                return None;
            }
            self.claimed.store(i + 1, Ordering::Relaxed);
            Some(self.tokens[i])
        }
    }
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let pool = Arc::new(WeakPool {
                tokens: [7, 8],
                claimed: AtomicUsize::new(0),
            });
            let p = Arc::clone(&pool);
            let rival = thread::spawn(move || p.claim());
            let mine = pool.claim();
            let theirs = rival.join();
            if let (Some(a), Some(b)) = (mine, theirs) {
                assert_ne!(a, b, "request doubly owned across competing steals");
            }
        })
        .expect_err("the racy claim-counter mutant must be caught");
    assert!(
        failure.message.contains("doubly owned"),
        "wrong failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "the failing path must be replayable: {failure}"
    );
}

// ---------------------------------------------------------------------
// 3. Per-destination FIFO.
// ---------------------------------------------------------------------

/// Routing is a pure function of the flow, so one flow's messages all
/// land in one shard's submission ring — in submission order — even
/// while another flow races into the other ring. Both endpoints agree
/// on the owner (the hash is symmetric in the node pair), which is what
/// keeps per-flow FIFO global, not per-node.
fn check_per_destination_fifo(dedup: bool) -> CheckStats {
    Checker::new()
        .max_schedules(15_000)
        .dedup(dedup)
        .check(|| {
            let rings: Arc<[SubmitRing<u64>; 2]> =
                Arc::new([SubmitRing::new(8), SubmitRing::new(8)]);
            let route =
                |a: NodeId, b: NodeId, tag: Tag| ShardPolicy::HashByDest.route(2, a, b, tag);
            // Sender and receiver sides agree on the owning shard.
            assert_eq!(
                route(NodeId(0), NodeId(1), Tag(3)),
                route(NodeId(1), NodeId(0), Tag(3)),
                "routing hash is not symmetric in the node pair"
            );
            let r = Arc::clone(&rings);
            let producer_a = thread::spawn(move || {
                for msg in [1u64, 2, 3] {
                    // Route recomputed per message: purity is the point.
                    r[route(NodeId(0), NodeId(1), Tag(3))].push(msg);
                }
            });
            let r = Arc::clone(&rings);
            let producer_c = thread::spawn(move || {
                for msg in [201u64, 202] {
                    r[route(NodeId(0), NodeId(2), Tag(3))].push(msg);
                }
            });
            for msg in [101u64, 102, 103] {
                rings[route(NodeId(0), NodeId(1), Tag(4))].push(msg);
            }
            producer_a.join();
            producer_c.join();
            let shard_a = route(NodeId(0), NodeId(1), Tag(3));
            let shard_b = route(NodeId(0), NodeId(1), Tag(4));
            let shard_c = route(NodeId(0), NodeId(2), Tag(3));
            let mut per_ring: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
            for (shard, out) in per_ring.iter_mut().enumerate() {
                while let Some(v) = rings[shard].pop() {
                    out.push(v);
                }
            }
            let flow = |shard: usize, lo: u64, hi: u64| -> Vec<u64> {
                per_ring[shard]
                    .iter()
                    .copied()
                    .filter(|&v| (lo..hi).contains(&v))
                    .collect()
            };
            assert_eq!(
                flow(shard_a, 0, 100),
                [1, 2, 3],
                "flow split shards or broke FIFO"
            );
            assert_eq!(
                flow(shard_b, 100, 200),
                [101, 102, 103],
                "flow split shards or broke FIFO"
            );
            assert_eq!(
                flow(shard_c, 200, 300),
                [201, 202],
                "flow split shards or broke FIFO"
            );
        })
        .expect("per-destination FIFO must hold in every schedule")
}

#[test]
fn model_per_destination_fifo_survives_cross_flow_races() {
    let stats = check_per_destination_fifo(true);
    assert!(
        stats.schedules >= 100,
        "per-destination FIFO model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "per-destination FIFO model hit the step bound: {stats:?}"
    );
}

/// Mutant: the route demoted from a pure function to a mutable
/// "rebalance cache" read with `Relaxed` per message, while a
/// rebalancer thread retargets the flow mid-stream. The flow then
/// splits across rings and the harvest order breaks FIFO — the checker
/// must find that schedule.
#[test]
fn model_per_destination_fifo_rebalance_cache_mutant_is_caught() {
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let rings: Arc<[SubmitRing<u64>; 2]> =
                Arc::new([SubmitRing::new(8), SubmitRing::new(8)]);
            let cache = Arc::new(AtomicUsize::new(1));
            let (r, c) = (Arc::clone(&rings), Arc::clone(&cache));
            let producer = thread::spawn(move || {
                for msg in [1u64, 2, 3] {
                    // mutant: route read from a mutable cache, not
                    // recomputed from the flow key.
                    r[c.load(Ordering::Relaxed)].push(msg);
                }
            });
            // Rebalancer retargets the flow while it is in flight.
            cache.store(0, Ordering::Relaxed);
            producer.join();
            let mut merged = Vec::new();
            for shard in 0..2 {
                while let Some(v) = rings[shard].pop() {
                    merged.push(v);
                }
            }
            assert_eq!(
                merged,
                [1, 2, 3],
                "per-destination FIFO broken by the racy route"
            );
        })
        .expect_err("the rebalance-cache mutant must be caught");
    assert!(
        failure.message.contains("per-destination FIFO broken"),
        "wrong failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "the failing path must be replayable: {failure}"
    );
}

// ---------------------------------------------------------------------
// Exploration volume.
// ---------------------------------------------------------------------

/// The three shard suites together explore at least ten thousand
/// schedules, none truncated — the acceptance bar for this suite. Run
/// without state dedup so the count reflects every distinct
/// interleaving actually executed, not just its canonical states.
#[test]
fn model_shard_suites_cover_ten_thousand_schedules() {
    let suites = [
        check_cross_shard_id_watermark(false),
        check_steal_round_trip(false),
        check_per_destination_fifo(false),
    ];
    let total: u64 = suites.iter().map(|s| s.schedules).sum();
    let truncated: u64 = suites.iter().map(|s| s.truncated).sum();
    assert!(
        total >= 10_000,
        "shard model suites underexplored: {total} schedules across {suites:?}"
    );
    assert_eq!(truncated, 0, "a shard model hit the step bound: {suites:?}");
}
