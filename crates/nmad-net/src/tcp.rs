//! Real TCP driver — event-driven, massive-fanout capable.
//!
//! The paper's prototype includes a TCP/Ethernet transfer module (§4);
//! this is ours, over genuine non-blocking sockets. Frames are
//! length-prefixed; the source node is implied by the socket. All
//! operations are non-blocking: buffered bytes move during
//! [`Driver::pump`], which both `poll_recv` and `test_send` invoke.
//!
//! Unlike the first-generation driver (which linearly scanned every
//! connection on every pump), this one is built for **thousands of
//! concurrent sockets per endpoint**:
//!
//! * a readiness poller ([`crate::poller`]: epoll on Linux, `poll(2)`
//!   fallback) makes each pump O(ready sockets), not O(held sockets);
//! * per-connection state lives in a generation-checked slab
//!   ([`EndpointTable`]) — O(1) accept, lookup and teardown, tokens
//!   double as poller keys, and a late event for a torn-down socket
//!   dies on the generation check instead of aliasing a reused slot;
//! * each connection walks an explicit state machine
//!   (accept → handshake → established → draining → closed) with
//!   non-blocking handshakes under a deadline, partial-write
//!   resumption, and interest re-registration only on edge
//!   transitions;
//! * **backpressure**: a socket whose parsed-frame backlog exceeds the
//!   receive budget — or the whole endpoint, when the engine signals
//!   that its optimization window / completion board saturated
//!   ([`Driver::set_rx_backpressure`]) — simply stops being read until
//!   the backlog drains. TCP's own flow control then pushes back on
//!   the sender.
//!
//! A connection that misbehaves (handshake timeout, malformed frame,
//! socket error) is torn down and counted in [`EndpointStats`]; it
//! never poisons the other connections — a wedged peer costs exactly
//! one endpoint, which is what "serve many users" requires.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::driver::{Capabilities, Driver, NetError, NetResult, RxFrame, SendHandle};
use crate::endpoint::{EndpointStats, EndpointTable, Token};
use crate::poller::{Event, Interest, Poller};
use nmad_sim::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Frame length prefix width.
const LEN_PREFIX: usize = 4;
/// Largest frame we accept from the wire (corrupt-stream guard).
const MAX_FRAME: usize = 256 << 20;
/// Poller key reserved for the listening socket.
const LISTEN_KEY: usize = usize::MAX;
/// Default receive backlog (parsed frames queued towards the engine)
/// above which a socket's reads pause. Generous: eager frames are
/// small; the cap exists so one firehose peer cannot buffer unbounded
/// memory while the engine is busy.
const DEFAULT_RX_BACKLOG_CAP: usize = 4096;
/// Handshakes must complete within this of the accept.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Where a connection is in its life cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    /// Accepted; reading the peer's 4-byte node-id handshake.
    Handshaking,
    /// Identified and exchanging frames.
    Established,
    /// Peer EOF seen with output still buffered: flush, then close.
    Draining,
}

/// One connection's flat state. Kept lean — 10k of these should sit
/// hot in cache.
struct Endpoint {
    stream: TcpStream,
    state: ConnState,
    /// Peer node, once the handshake identified it.
    peer: Option<NodeId>,
    /// Interest currently registered with the poller; re-registered
    /// only when the desired set differs (edge transitions).
    interest: Interest,
    /// Outgoing bytes not yet accepted by the kernel.
    out: VecDeque<u8>,
    /// Cumulative bytes enqueued / flushed towards this peer.
    enqueued: u64,
    flushed: u64,
    /// Incoming bytes not yet parsed into frames.
    in_buf: Vec<u8>,
    /// Handshake bytes collected so far.
    hs_have: u8,
    hs_buf: [u8; LEN_PREFIX],
    /// Handshake deadline (only meaningful while `Handshaking`).
    hs_deadline: Instant,
    /// Reads paused: local backlog cap or engine backpressure.
    read_paused: bool,
}

impl Endpoint {
    fn new(stream: TcpStream, state: ConnState, peer: Option<NodeId>) -> NetResult<Endpoint> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Endpoint {
            stream,
            state,
            peer,
            interest: Interest::NONE,
            out: VecDeque::new(),
            enqueued: 0,
            flushed: 0,
            in_buf: Vec::new(),
            hs_have: 0,
            hs_buf: [0; LEN_PREFIX],
            hs_deadline: Instant::now() + HANDSHAKE_TIMEOUT, // BLOCKING-OK: one clock read per accepted connection, not per frame
            read_paused: false,
        })
    }

    /// The interest this endpoint should be registered with right now.
    fn desired_interest(&self, engine_paused: bool) -> Interest {
        let readable = match self.state {
            ConnState::Handshaking => true,
            ConnState::Established => !self.read_paused && !engine_paused,
            ConnState::Draining => false,
        };
        Interest {
            readable,
            writable: !self.out.is_empty(),
        }
    }
}

/// A [`Driver`] endpoint over real TCP sockets: a fixed full mesh
/// (HPC style, [`TcpDriver::full_mesh`]), a loopback pair
/// ([`TcpDriver::pair`]), or a fan-in server accepting thousands of
/// identified clients under churn ([`TcpDriver::server`]).
pub struct TcpDriver {
    node: NodeId,
    caps: Capabilities,
    poller: Poller,
    table: EndpointTable<Endpoint>,
    /// Dense node → token map (`RxFrame::src` and `post_send` both
    /// speak node ids).
    by_node: Vec<Option<Token>>,
    listener: Option<TcpListener>,
    /// Tokens currently handshaking (transient, small): the only
    /// endpoints whose deadlines the pump must sweep.
    handshaking: Vec<Token>,
    /// Tokens paused by the local backlog cap, resumed as the engine
    /// drains `rx_ready`.
    paused: Vec<Token>,
    rx_ready: VecDeque<RxFrame>,
    rx_backlog_cap: usize,
    /// Engine-signalled backpressure (window/board saturation).
    engine_paused: bool,
    /// Endpoints with non-empty `out` — O(1) `tx_idle`.
    tx_busy: usize,
    pending: HashMap<SendHandle, (usize, u64)>,
    next_handle: u64,
    stats: EndpointStats,
    /// Readiness scratch, reused across pumps.
    events: Vec<Event>,
}

fn tcp_caps() -> Capabilities {
    Capabilities {
        name: "tcp".to_string(),
        latency_ns: 30_000,
        bandwidth_bps: 1_000_000_000,
        // We stage into a userspace buffer anyway, so gather is
        // effectively unlimited (writev semantics).
        gather_max_segs: usize::MAX,
        rdv_threshold: 64 * 1024,
        supports_rdma: false,
        mtu: MAX_FRAME,
    }
}

/// Accept/mesh-setup poll timeout: short enough to keep checking
/// deadlines, long enough not to spin.
const SETUP_POLL: Duration = Duration::from_millis(10);
/// Connect-retry schedule: 1 ms doubling to 50 ms (the peer's listener
/// may not be up yet; later attempts wait longer).
const CONNECT_BACKOFF: BackoffPolicy = BackoffPolicy::new(1_000_000, 50_000_000);

impl TcpDriver {
    fn empty(node: NodeId, capacity: usize, listener: Option<TcpListener>) -> NetResult<TcpDriver> {
        let mut poller = Poller::new()?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            poller.add(l, LISTEN_KEY, Interest::READABLE)?;
        }
        Ok(TcpDriver {
            node,
            caps: tcp_caps(),
            poller,
            table: EndpointTable::new(),
            by_node: (0..capacity).map(|_| None).collect(),
            listener,
            handshaking: Vec::new(),
            paused: Vec::new(),
            rx_ready: VecDeque::new(),
            rx_backlog_cap: DEFAULT_RX_BACKLOG_CAP,
            engine_paused: false,
            tx_busy: 0,
            pending: HashMap::new(),
            next_handle: 0,
            stats: EndpointStats::default(),
            events: Vec::new(),
        })
    }

    /// Registers `ep` with the poller under a fresh token and applies
    /// its desired interest.
    fn adopt(&mut self, ep: Endpoint) -> NetResult<Token> {
        let desired = ep.desired_interest(self.engine_paused);
        let token = self.table.insert(ep);
        let ep = self.table.get_mut(token).expect("just inserted"); // PANIC-OK: slot filled by the insert on the line above
        ep.interest = desired;
        self.poller.add(&ep.stream, token.key(), desired)?;
        Ok(token)
    }

    /// Establishes a full mesh between `addrs.len()` nodes; this process
    /// is node `me` and must be able to bind `addrs[me]`.
    ///
    /// Lower-numbered nodes accept connections from higher-numbered
    /// ones; a 4-byte node-id handshake identifies each peer. Outbound
    /// dials retry on the shared [`BackoffPolicy`] schedule and inbound
    /// handshakes stay non-blocking under a per-connection deadline, so
    /// a stalled peer delays only itself, for up to `timeout`.
    pub fn full_mesh(me: NodeId, addrs: &[SocketAddr], timeout: Duration) -> NetResult<Self> {
        let n = addrs.len();
        assert!(me.index() < n, "node id out of range");
        let listener = TcpListener::bind(addrs[me.index()])?;
        let mut driver = TcpDriver::empty(me, n, Some(listener))?;
        let deadline = Instant::now() + timeout;

        // Outbound dials to every lower-numbered node, each on its own
        // backoff schedule.
        struct Dial {
            peer: usize,
            backoff: Backoff,
            next_attempt: Instant,
        }
        let mut dials: Vec<Dial> = (0..me.index())
            .map(|peer| Dial {
                peer,
                backoff: Backoff::new(CONNECT_BACKOFF),
                next_attempt: Instant::now(),
            })
            .collect();

        let expected = n - 1;
        let established = |d: &TcpDriver| {
            d.by_node
                .iter()
                .enumerate()
                .filter(|&(i, t)| i != me.index() && t.is_some())
                .count()
        };
        while established(&driver) < expected {
            if Instant::now() > deadline {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "peers did not connect in time",
                )));
            }
            // Dials whose backoff elapsed get one bounded attempt.
            let now = Instant::now();
            let mut i = 0;
            while i < dials.len() {
                if now < dials[i].next_attempt {
                    i += 1;
                    continue;
                }
                let peer = dials[i].peer;
                match TcpStream::connect_timeout(
                    &addrs[peer],
                    SETUP_POLL.max(Duration::from_millis(50)),
                ) {
                    Ok(mut stream) => {
                        // 4 bytes always fit a fresh socket buffer.
                        stream.write_all(&(me.0).to_le_bytes())?;
                        let ep = Endpoint::new(
                            stream,
                            ConnState::Established,
                            Some(NodeId(peer as u32)),
                        )?;
                        let token = driver.adopt(ep)?;
                        driver.by_node[peer] = Some(token);
                        dials.swap_remove(i);
                    }
                    Err(_) => {
                        dials[i].next_attempt = now + Duration::from_nanos(dials[i].backoff.step());
                        i += 1;
                    }
                }
            }
            // Accepts + inbound handshakes progress through the normal
            // event loop; a short real timeout replaces sleep loops.
            driver.pump_with_timeout(Some(SETUP_POLL))?;
        }
        Ok(driver)
    }

    /// Builds a connected pair on loopback (test/example convenience).
    pub fn pair() -> NetResult<(TcpDriver, TcpDriver)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let a_stream = TcpStream::connect(addr)?;
        let (b_stream, _) = listener.accept()?;
        let mk = |node: usize, stream: TcpStream| -> NetResult<TcpDriver> {
            let mut d = TcpDriver::empty(NodeId(node as u32), 2, None)?;
            let other = 1 - node;
            let ep = Endpoint::new(stream, ConnState::Established, Some(NodeId(other as u32)))?;
            let token = d.adopt(ep)?;
            d.by_node[other] = Some(token);
            Ok(d)
        };
        Ok((mk(0, a_stream)?, mk(1, b_stream)?))
    }

    /// A fan-in server endpoint: binds `addr` and accepts up to
    /// `capacity - 1` concurrent clients, each identifying itself with
    /// the 4-byte node-id handshake (ids `0..capacity`, distinct from
    /// `me` and from each other; an id frees on teardown and may be
    /// reused by a reconnect). Built for churn: accepts, handshakes
    /// and teardowns all happen inside [`Driver::pump`].
    pub fn server(me: NodeId, addr: SocketAddr, capacity: usize) -> NetResult<TcpDriver> {
        assert!(me.index() < capacity, "node id out of range");
        let listener = TcpListener::bind(addr)?;
        TcpDriver::empty(me, capacity, Some(listener))
    }

    /// The listening address, when this endpoint has a listener.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Fully-established connections right now.
    pub fn connected_peers(&self) -> usize {
        self.by_node.iter().flatten().count()
    }

    /// Endpoint-layer counters (also via [`Driver::endpoint_stats`]).
    pub fn stats(&self) -> EndpointStats {
        let mut s = self.stats;
        let p = self.poller.stats();
        s.readiness_wakeups = p.wakeups;
        s.sockets_polled = p.events;
        s
    }

    /// Readiness backend in use (`"epoll"` / `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        self.poller.backend_name()
    }

    /// Caps the parsed-frame receive backlog; sockets pause (stop
    /// being read) above it and resume as the engine drains.
    pub fn set_rx_backlog_cap(&mut self, cap: usize) {
        self.rx_backlog_cap = cap.max(1);
    }

    // --- event loop -------------------------------------------------

    // HOT-PATH: driver pump
    fn pump_with_timeout(&mut self, timeout: Option<Duration>) -> NetResult<()> {
        self.sweep_handshake_deadlines();
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        let res = self
            .poller
            .wait(&mut events, timeout.or(Some(Duration::ZERO))); // BLOCKING-OK: zero timeout when busy; idle waits are the contract of pump_with_timeout
        match res {
            Ok(_) => {}
            Err(e) => {
                self.events = events;
                return Err(e.into());
            }
        }
        for ev in &events {
            if ev.key == LISTEN_KEY {
                self.accept_ready()?;
                continue;
            }
            let token = Token::from_key(ev.key);
            // Stale tokens (events raced a teardown) fail the
            // generation check inside and are dropped.
            let progressed = self.service(token, ev.readable, ev.writable)?;
            if !progressed {
                self.stats.spurious_wakeups += 1;
            }
        }
        self.events = events;
        Ok(())
    }

    /// Accepts every pending connection (edge-complete: the listener
    /// is level-triggered, but draining it fully keeps accept latency
    /// off the next pump).
    fn accept_ready(&mut self) -> NetResult<()> {
        loop {
            let listener = self
                .listener
                .as_ref()
                .expect("listen event without listener"); // PANIC-OK: token registered as the listener at bind
            match listener.accept() {
                Ok((stream, _)) => {
                    let ep = Endpoint::new(stream, ConnState::Handshaking, None)?;
                    let token = self.adopt(ep)?;
                    self.handshaking.push(token);
                    // The id may already sit in the socket buffer;
                    // greedy completion saves a pump.
                    self.drive_handshake(token)?;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (aborted
                // handshakes, fd pressure) must not kill the server.
                Err(_) => {
                    self.stats.handshake_failures += 1;
                    return Ok(());
                }
            }
        }
    }

    /// One socket's readiness: dispatch on its state machine. Returns
    /// whether anything moved (spurious-wakeup accounting).
    fn service(&mut self, token: Token, readable: bool, writable: bool) -> NetResult<bool> {
        let Some(ep) = self.table.get(token) else {
            return Ok(true); // stale event after teardown: not spurious, just late
        };
        let mut progressed = false;
        match ep.state {
            ConnState::Handshaking => {
                if readable {
                    progressed = self.drive_handshake(token)?;
                }
            }
            ConnState::Established | ConnState::Draining => {
                if writable {
                    progressed |= self.flush(token)?;
                }
                if readable && self.table.get(token).is_some() {
                    progressed |= self.read_ready(token)?;
                }
                self.update_interest(token)?;
            }
        }
        Ok(progressed)
    }

    /// Advances a handshake: reads id bytes, validates, establishes.
    fn drive_handshake(&mut self, token: Token) -> NetResult<bool> {
        let Some(ep) = self.table.get_mut(token) else {
            return Ok(false);
        };
        let mut progressed = false;
        while (ep.hs_have as usize) < LEN_PREFIX {
            match ep.stream.read(&mut ep.hs_buf[ep.hs_have as usize..]) {
                Ok(0) => {
                    self.fail_handshake(token);
                    return Ok(true);
                }
                Ok(k) => {
                    ep.hs_have += k as u8;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(progressed),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail_handshake(token);
                    return Ok(true);
                }
            }
        }
        let peer = u32::from_le_bytes(ep.hs_buf) as usize;
        if peer >= self.by_node.len() || peer == self.node.index() || self.by_node[peer].is_some() {
            self.fail_handshake(token);
            return Ok(true);
        }
        let ep = self.table.get_mut(token).expect("checked live above"); // PANIC-OK: liveness checked at entry
        ep.state = ConnState::Established;
        ep.peer = Some(NodeId(peer as u32));
        self.by_node[peer] = Some(token);
        self.stats.accepts += 1;
        self.handshaking.retain(|&t| t != token);
        self.update_interest(token)?;
        Ok(true)
    }

    fn fail_handshake(&mut self, token: Token) {
        self.stats.handshake_failures += 1;
        self.handshaking.retain(|&t| t != token);
        if let Some(ep) = self.table.remove(token) {
            let _ = self.poller.delete(&ep.stream);
        }
    }

    /// Expires handshakes past their deadline. O(handshaking), which
    /// is transiently small — never O(established).
    fn sweep_handshake_deadlines(&mut self) {
        if self.handshaking.is_empty() {
            return;
        }
        let now = Instant::now(); // BLOCKING-OK: one clock read per pump for the deadline sweep
        let expired: Vec<Token> = self
            .handshaking
            .iter()
            .copied()
            .filter(|&t| self.table.get(t).is_some_and(|ep| now > ep.hs_deadline))
            .collect();
        for token in expired {
            self.fail_handshake(token);
        }
    }

    /// Flushes buffered output; resumes partial writes exactly where
    /// the kernel stopped accepting. Returns whether bytes moved.
    fn flush(&mut self, token: Token) -> NetResult<bool> {
        let Some(ep) = self.table.get_mut(token) else {
            return Ok(false);
        };
        let was_busy = !ep.out.is_empty();
        let mut progressed = false;
        while !ep.out.is_empty() {
            let (front, _) = ep.out.as_slices();
            match ep.stream.write(front) {
                Ok(0) => {
                    self.teardown(token);
                    return Ok(true);
                }
                Ok(k) => {
                    ep.out.drain(..k);
                    ep.flushed += k as u64;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(token);
                    return Ok(true);
                }
            }
        }
        if was_busy && ep.out.is_empty() {
            self.tx_busy -= 1;
            if ep.state == ConnState::Draining {
                self.teardown(token);
            }
        }
        Ok(progressed)
    }

    /// Drains readable bytes and parses complete frames, pausing at
    /// the backlog cap. Returns whether anything moved.
    fn read_ready(&mut self, token: Token) -> NetResult<bool> {
        let Some(ep) = self.table.get_mut(token) else {
            return Ok(false);
        };
        if ep.read_paused || self.engine_paused || ep.state != ConnState::Established {
            return Ok(false);
        }
        let peer = ep.peer.expect("established endpoints are identified"); // PANIC-OK: established endpoints always carry a peer id
        let mut progressed = false;
        let mut eof = false;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if self.rx_ready.len() >= self.rx_backlog_cap {
                ep.read_paused = true;
                self.stats.backpressure_stalls += 1;
                self.paused.push(token);
                break;
            }
            match ep.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    progressed = true;
                    break;
                }
                Ok(k) => {
                    ep.in_buf.extend_from_slice(&chunk[..k]);
                    progressed = true;
                    // Parse inline so the backlog cap sees fresh frames.
                    match parse_frames(&mut ep.in_buf, peer, &mut self.rx_ready) {
                        Ok(()) => {}
                        Err(_) => {
                            // Malformed stream: this peer dies, the
                            // endpoint lives on.
                            self.teardown(token);
                            return Ok(true);
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(token);
                    return Ok(true);
                }
            }
        }
        if eof {
            let ep = self.table.get_mut(token).expect("live: no teardown above"); // PANIC-OK: no teardown between lookup and use
            if ep.out.is_empty() {
                self.teardown(token);
            } else {
                // Half-close: the peer stopped sending but may still
                // read; finish flushing, then close.
                ep.state = ConnState::Draining;
            }
        }
        Ok(progressed)
    }

    /// Re-registers interest iff the desired set changed (the edge-
    /// transition contract: no per-pump kernel chatter).
    fn update_interest(&mut self, token: Token) -> NetResult<()> {
        let engine_paused = self.engine_paused;
        let Some(ep) = self.table.get_mut(token) else {
            return Ok(());
        };
        let desired = ep.desired_interest(engine_paused);
        if desired != ep.interest {
            ep.interest = desired;
            self.poller.modify(&ep.stream, token.key(), desired)?;
        }
        Ok(())
    }

    /// Closes a connection and frees its slot (the node id may be
    /// reused by a reconnect).
    fn teardown(&mut self, token: Token) {
        let Some(ep) = self.table.remove(token) else {
            return;
        };
        let _ = self.poller.delete(&ep.stream);
        if !ep.out.is_empty() {
            self.tx_busy -= 1;
        }
        if let Some(peer) = ep.peer {
            if self.by_node.get(peer.index()).copied().flatten() == Some(token) {
                self.by_node[peer.index()] = None;
            }
            // Sends fully handed to the kernel before the close
            // completed from our side; a receiver that read them and
            // hung up must not fail the sender's completion harvest.
            // Unflushed residue keeps its handle and surfaces Closed.
            self.pending
                .retain(|_, &mut (idx, target)| idx != peer.index() || target > ep.flushed);
            self.stats.teardowns += 1;
        } else {
            self.stats.handshake_failures += 1;
        }
        self.handshaking.retain(|&t| t != token);
        self.paused.retain(|&t| t != token);
    }

    /// Resumes sockets paused on the backlog cap once the engine
    /// drained below half of it (hysteresis: no pause/resume flapping
    /// at the boundary).
    fn maybe_resume_reads(&mut self) -> NetResult<()> {
        if self.paused.is_empty() || self.rx_ready.len() > self.rx_backlog_cap / 2 {
            return Ok(());
        }
        let paused = std::mem::take(&mut self.paused);
        for token in paused {
            if let Some(ep) = self.table.get_mut(token) {
                ep.read_paused = false;
            }
            self.update_interest(token)?;
        }
        Ok(())
    }
}

/// Parses complete length-prefixed frames from `in_buf` into
/// `rx_ready`, leaving any partial tail in place. Errors on a frame
/// that exceeds the protocol maximum.
fn parse_frames(
    in_buf: &mut Vec<u8>,
    src: NodeId,
    rx_ready: &mut VecDeque<RxFrame>,
) -> Result<(), ()> {
    let mut consumed = 0;
    while in_buf.len() - consumed >= LEN_PREFIX {
        let hdr = &in_buf[consumed..consumed + LEN_PREFIX];
        let len = u32::from_le_bytes(hdr.try_into().expect("4 bytes")) as usize; // PANIC-OK: 4-byte slice by construction
        if len > MAX_FRAME {
            return Err(());
        }
        if in_buf.len() - consumed < LEN_PREFIX + len {
            break;
        }
        let start = consumed + LEN_PREFIX;
        rx_ready.push_back(RxFrame {
            src,
            payload: in_buf[start..start + len].to_vec().into(),
        });
        consumed = start + len;
    }
    if consumed > 0 {
        in_buf.drain(..consumed);
    }
    Ok(())
}

impl Driver for TcpDriver {
    fn caps(&self) -> &Capabilities {
        &self.caps
    }

    fn local_node(&self) -> NodeId {
        self.node
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let idx = dst.index();
        let token = self
            .by_node
            .get(idx)
            .copied()
            .flatten()
            .ok_or(NetError::Closed)?;
        let ep = self.table.get_mut(token).ok_or(NetError::Closed)?;
        if ep.state != ConnState::Established {
            return Err(NetError::Closed);
        }
        let len: usize = iov.iter().map(|s| s.len()).sum();
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge {
                len,
                mtu: MAX_FRAME,
            });
        }
        if ep.out.is_empty() {
            self.tx_busy += 1;
        }
        ep.out
            .extend(u32::try_from(len).expect("checked above").to_le_bytes()); // PANIC-OK: length validated against the frame cap above
        for seg in iov {
            ep.out.extend(seg.iter().copied());
        }
        ep.enqueued += (LEN_PREFIX + len) as u64;
        let target = ep.enqueued;
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        self.pending.insert(handle, (idx, target));
        // Immediate flush attempt (latency), then interest for the
        // residue, then a zero-timeout pump as the old driver did.
        self.flush(token)?;
        self.update_interest(token)?;
        self.pump()?;
        Ok(handle)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        self.pump()?;
        match self.pending.get(&handle) {
            None => Ok(true),
            Some(&(idx, target)) => {
                let token = self
                    .by_node
                    .get(idx)
                    .copied()
                    .flatten()
                    .ok_or(NetError::Closed)?;
                let flushed = self.table.get(token).ok_or(NetError::Closed)?.flushed;
                if flushed >= target {
                    self.pending.remove(&handle);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        if let Some(f) = self.rx_ready.pop_front() {
            self.maybe_resume_reads()?;
            return Ok(Some(f));
        }
        self.pump()?;
        let f = self.rx_ready.pop_front();
        self.maybe_resume_reads()?;
        Ok(f)
    }

    fn tx_idle(&self) -> bool {
        self.tx_busy == 0
    }

    // HOT-PATH: endpoint pump
    fn pump(&mut self) -> NetResult<()> {
        self.pump_with_timeout(Some(Duration::ZERO))
    }

    fn endpoint_stats(&self) -> EndpointStats {
        self.stats()
    }

    fn set_rx_backpressure(&mut self, paused: bool) {
        if paused == self.engine_paused {
            return;
        }
        self.engine_paused = paused;
        if paused {
            self.stats.backpressure_stalls += 1;
        }
        // One interest edge per established endpoint, per transition —
        // not per pump.
        for token in self.table.tokens() {
            let _ = self.update_interest(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_blocking(d: &mut TcpDriver) -> RxFrame {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut backoff = Backoff::new(BackoffPolicy::new(50_000, 1_000_000));
        loop {
            if let Some(f) = d.poll_recv().unwrap() {
                return f;
            }
            assert!(Instant::now() < deadline, "timed out waiting for frame");
            backoff.sleep();
        }
    }

    #[test]
    fn pair_exchanges_frames_both_ways() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        a.post_send(NodeId(1), &[b"from a, ", b"gathered"]).unwrap();
        b.post_send(NodeId(0), &[b"from b"]).unwrap();
        assert_eq!(recv_blocking(&mut b).payload, b"from a, gathered");
        let f = recv_blocking(&mut a);
        assert_eq!(f.payload, b"from b");
        assert_eq!(f.src, NodeId(1));
    }

    #[test]
    fn large_frame_survives_fragmentation() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        let big: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        let h = a.post_send(NodeId(1), &[&big]).unwrap();
        // Drain on both sides concurrently with completion testing.
        let mut got = None;
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.is_none() {
            assert!(Instant::now() < deadline);
            let _ = a.test_send(h).unwrap();
            got = b.poll_recv().unwrap();
        }
        assert_eq!(got.unwrap().payload, big);
        // Eventually the send tests complete.
        while !a.test_send(h).unwrap() {
            std::thread::yield_now();
        }
    }

    #[test]
    fn flushed_send_completes_after_peer_reads_and_hangs_up() {
        // A receiver that consumes everything and closes must not turn
        // the sender's completion harvest into a Closed error: the
        // bytes left our kernel before the teardown.
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        let h = a.post_send(NodeId(1), &[b"parting words"]).unwrap();
        assert_eq!(recv_blocking(&mut b).payload, b"parting words");
        drop(b);
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.connected_peers() > 0 {
            assert!(Instant::now() < deadline, "EOF teardown never observed");
            a.pump().unwrap();
        }
        assert!(a.test_send(h).unwrap(), "flushed send must complete");
        // But a send the peer never drained does surface the failure.
        assert!(matches!(
            a.post_send(NodeId(1), &[b"too late"]),
            Err(NetError::Closed)
        ));
    }

    #[test]
    fn many_small_frames_preserve_order() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        for i in 0..100u32 {
            a.post_send(NodeId(1), &[&i.to_le_bytes()]).unwrap();
        }
        for i in 0..100u32 {
            let f = recv_blocking(&mut b);
            assert_eq!(
                u32::from_le_bytes(f.payload.as_slice().try_into().unwrap()),
                i
            );
        }
    }

    #[test]
    fn full_mesh_three_nodes() {
        let base: Vec<SocketAddr> = {
            // Reserve three distinct loopback ports.
            let ls: Vec<TcpListener> = (0..3)
                .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
                .collect();
            ls.iter().map(|l| l.local_addr().unwrap()).collect()
            // listeners dropped here; small race window acceptable in test
        };
        let mk = |i: u32| {
            let addrs = base.clone();
            std::thread::spawn(move || {
                TcpDriver::full_mesh(NodeId(i), &addrs, Duration::from_secs(10)).unwrap()
            })
        };
        let handles: Vec<_> = (0..3).map(mk).collect();
        let mut drivers: Vec<TcpDriver> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Node 2 sends to node 0 and 1.
        drivers[2].post_send(NodeId(0), &[b"to zero"]).unwrap();
        drivers[2].post_send(NodeId(1), &[b"to one"]).unwrap();
        assert_eq!(recv_blocking(&mut drivers[0]).payload, b"to zero");
        assert_eq!(recv_blocking(&mut drivers[1]).payload, b"to one");
    }

    /// Drives `server.pump` until `cond` holds or the deadline passes.
    fn pump_until(server: &mut TcpDriver, mut cond: impl FnMut(&TcpDriver) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond(server) {
            assert!(Instant::now() < deadline, "server condition timed out");
            server
                .pump_with_timeout(Some(Duration::from_millis(2)))
                .unwrap();
        }
    }

    fn client(addr: SocketAddr, id: u32) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&id.to_le_bytes()).unwrap();
        s
    }

    #[test]
    fn server_accepts_identified_clients_and_frees_ids_on_teardown() {
        let mut server = TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), 64).unwrap();
        let addr = server.local_addr().unwrap();
        let c1 = client(addr, 1);
        let c2 = client(addr, 2);
        pump_until(&mut server, |s| s.connected_peers() == 2);
        assert_eq!(server.stats().accepts, 2);

        // Client 2 hangs up; its id frees and a reconnect reuses it.
        drop(c2);
        pump_until(&mut server, |s| s.connected_peers() == 1);
        assert_eq!(server.stats().teardowns, 1);
        let _c2b = client(addr, 2);
        pump_until(&mut server, |s| s.connected_peers() == 2);
        assert_eq!(server.stats().accepts, 3);
        drop(c1);
    }

    #[test]
    fn bad_handshakes_are_counted_not_fatal() {
        let mut server = TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), 4).unwrap();
        let addr = server.local_addr().unwrap();
        // Out-of-range id.
        let _bad = client(addr, 99);
        // Server's own id.
        let _own = client(addr, 0);
        let _good = client(addr, 2);
        pump_until(&mut server, |s| s.connected_peers() == 1);
        pump_until(&mut server, |s| s.stats().handshake_failures == 2);
        assert_eq!(server.stats().accepts, 1);
    }

    #[test]
    fn half_open_peer_cannot_stall_other_peers() {
        // Regression for the blocking-handshake wedge: a client that
        // connects and never sends its id must not delay frames
        // between the server and well-behaved clients.
        let mut server = TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), 8).unwrap();
        let addr = server.local_addr().unwrap();
        let _stalled = TcpStream::connect(addr).unwrap(); // no handshake, ever
        let mut good = client(addr, 3);
        pump_until(&mut server, |s| s.connected_peers() == 1);

        // Frames still flow both ways past the half-open socket.
        good.write_all(&4u32.to_le_bytes()).unwrap();
        good.write_all(b"ping").unwrap();
        let f = {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                if let Some(f) = server.poll_recv().unwrap() {
                    break f;
                }
                assert!(Instant::now() < deadline);
            }
        };
        assert_eq!(f.src, NodeId(3));
        assert_eq!(f.payload, b"ping");
        server.post_send(NodeId(3), &[b"pong"]).unwrap();
        good.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 8];
        let mut got = 0;
        while got < 8 {
            server.pump().unwrap();
            match good.read(&mut buf[got..]) {
                Ok(0) => panic!("server closed the good client"),
                Ok(k) => got += k,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(&buf[..4], &4u32.to_le_bytes());
        assert_eq!(&buf[4..8], b"pong");
        // The stalled socket is still just handshaking — one endpoint
        // wedged, everything else live.
        assert_eq!(server.stats().accepts, 1);
    }

    #[test]
    fn backlog_cap_pauses_and_resumes_reads() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        b.set_rx_backlog_cap(4);
        for i in 0..32u32 {
            a.post_send(NodeId(1), &[&i.to_le_bytes()]).unwrap();
        }
        // Drain everything; the cap forces pause/resume cycles along
        // the way and order must survive them.
        for i in 0..32u32 {
            let f = recv_blocking(&mut b);
            assert_eq!(
                u32::from_le_bytes(f.payload.as_slice().try_into().unwrap()),
                i
            );
        }
        assert!(
            b.stats().backpressure_stalls > 0,
            "cap of 4 must trip on 32 frames"
        );
    }

    #[test]
    fn engine_backpressure_parks_and_unparks_reading() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        b.set_rx_backpressure(true);
        a.post_send(NodeId(1), &[b"held"]).unwrap();
        // Paused: repeated pumps deliver nothing.
        for _ in 0..20 {
            assert!(b.poll_recv().unwrap().is_none());
            std::thread::sleep(Duration::from_millis(1));
        }
        b.set_rx_backpressure(false);
        assert_eq!(recv_blocking(&mut b).payload, b"held");
        assert!(b.stats().backpressure_stalls >= 1);
    }

    #[test]
    fn stats_expose_o_ready_pump_cost() {
        let mut server = TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), 128).unwrap();
        let addr = server.local_addr().unwrap();
        let clients: Vec<TcpStream> = (1..=64).map(|i| client(addr, i)).collect();
        pump_until(&mut server, |s| s.connected_peers() == 64);
        let before = server.stats();
        // Idle pumps over 64 established sockets poll nothing.
        for _ in 0..50 {
            server.pump().unwrap();
        }
        let after = server.stats();
        assert_eq!(
            after.sockets_polled, before.sockets_polled,
            "idle pumps must not touch idle sockets"
        );
        drop(clients);
    }
}
