//! Computation/communication overlap benchmark (paper §4: "a
//! *progression engine* [...] lets communication progress in the
//! background while the application computes").
//!
//! One round posts a burst of sends, busy-computes for a fixed time
//! slice, then drains. With **inline** progression the whole world is
//! polled by the application thread, so nothing moves while it
//! computes and the post-compute drain pays the full communication
//! time. With **threaded** progression both endpoints run progression
//! threads that move the bytes *during* the compute phase, so the
//! drain is nearly free. The overlap metric is the share of the
//! reference communication cost taken off the application's critical
//! path:
//!
//! ```text
//! overlap% = clamp((T_comm - T_drain) / T_comm, 0..1) * 100
//! ```
//!
//! where `T_comm` is the median drain of an **inline** round with no
//! compute phase — the full communication cost when nothing can hide
//! it — and `T_drain` the median post-compute drain of a full round in
//! the mode under test. Inline mode therefore scores ~0% by
//! construction, and a mode only scores high by genuinely finishing
//! communication while the application computes. (Scoring against the
//! whole round or per-mode calibration is misleading on small
//! machines, where the OS can schedule progression work into the
//! *post* phase.) Results land in `BENCH_overlap.json` (override with
//! `--json PATH`).
//!
//! Run: `cargo run --release -p bench --bin overlap [-- --quick]`

use std::time::{Duration, Instant};

use bench::{fmt_size, median, OverlapReport, OverlapRow, Table, BENCH_OVERLAP_JSON_PATH};
use nmad_core::prelude::*;
use nmad_net::mem::mem_fabric;
use nmad_net::{MemDriver, NullMeter};
use nmad_sim::NodeId;

/// Messages posted per round (a burst, so the window and aggregation
/// paths are exercised, not a single in-flight transfer).
const MSGS_PER_ROUND: usize = 8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = bench::json_arg().unwrap_or_else(|| BENCH_OVERLAP_JSON_PATH.to_string());
    let reps = if quick { 3 } else { 7 };
    let sizes = [16 * 1024usize, 64 * 1024, 256 * 1024];
    let report = OverlapReport::new();

    println!("\n## computation/communication overlap — mem driver, {MSGS_PER_ROUND} msgs/round\n");
    let mut table = Table::new(vec![
        "mode",
        "size",
        "comm (us)",
        "compute",
        "total",
        "overlap",
        "drain (us)",
    ]);
    for &size in &sizes {
        // Inline first: its zero-compute drain is the reference
        // communication cost the threaded row is scored against.
        let inline_row = run_mode(false, size, reps, None);
        let threaded_row = run_mode(true, size, reps, Some(inline_row.comm_us));
        for row in [inline_row, threaded_row] {
            table.row(vec![
                row.mode.clone(),
                fmt_size(row.size),
                format!("{:.1}", row.comm_us),
                format!("{:.1}", row.compute_us),
                format!("{:.1}", row.total_us),
                format!("{:.1}%", row.overlap_pct),
                format!("{:.1}", row.drain_us),
            ]);
            report.record(row);
        }
    }
    table.print();
    report.write(&json);
}

fn engine(d: MemDriver) -> NmadEngine {
    NmadEngine::new(
        vec![Box::new(d)],
        Box::new(NullMeter),
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

/// Busy-computes for `dur` without ever touching the engine — the
/// application's "useful work" phase.
fn compute(dur: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < dur {
        std::hint::spin_loop();
    }
}

/// One progression mode at one size: calibrate the communication cost
/// (drain of a round with no compute), pick the compute slice, then
/// measure full rounds. `baseline` overrides the calibrated cost with
/// the inline reference so both modes are scored on the same scale.
fn run_mode(threaded: bool, size: usize, reps: usize, baseline: Option<f64>) -> OverlapRow {
    let mut fabric = mem_fabric(2);
    let sink = fabric.pop().expect("two");
    let init = fabric.pop().expect("two");
    // Both endpoints run the mode under test: the inline rows measure a
    // fully polled world (nothing anywhere moves during compute), the
    // threaded rows a fully background-progressed one.
    let mut bench: Box<dyn Round> = if threaded {
        Box::new(ThreadedRound {
            init: ThreadedEngine::launch(engine(init), EngineConfig::threaded()),
            sink: ThreadedEngine::launch(engine(sink), EngineConfig::threaded()),
        })
    } else {
        Box::new(InlineRound {
            init: engine(init),
            sink: engine(sink),
        })
    };

    // Warmup + calibration: rounds with no compute phase; the drain is
    // the communication cost on the critical path when nothing hides it.
    bench.round(size, Duration::ZERO);
    let comm: Vec<f64> = (0..reps)
        .map(|_| bench.round(size, Duration::ZERO).1)
        .collect();
    let comm_us = baseline.unwrap_or_else(|| median(&comm));
    // The compute slice dwarfs the communication so hidden vs exposed
    // communication separates clearly; floored for tiny messages where
    // timer noise would otherwise dominate.
    let compute_us = (2.0 * comm_us).max(200.0);
    let slice = Duration::from_secs_f64(compute_us / 1e6);

    let mut totals = Vec::with_capacity(reps);
    let mut drains = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (total, drain) = bench.round(size, slice);
        totals.push(total);
        drains.push(drain);
    }
    let drain_us = median(&drains);
    let overlap_pct =
        (((comm_us - drain_us) / comm_us.max(f64::EPSILON)) * 100.0).clamp(0.0, 100.0);
    OverlapRow {
        mode: if threaded { "threaded" } else { "inline" }.to_string(),
        size,
        msgs_per_round: MSGS_PER_ROUND,
        comm_us,
        compute_us,
        total_us: median(&totals),
        overlap_pct,
        drain_us,
    }
}

/// One post→compute→drain round; returns (total µs, post-compute
/// drain µs).
trait Round {
    fn round(&mut self, size: usize, compute_for: Duration) -> (f64, f64);
}

struct InlineRound {
    init: NmadEngine,
    sink: NmadEngine,
}

impl Round for InlineRound {
    fn round(&mut self, size: usize, compute_for: Duration) -> (f64, f64) {
        let recvs: Vec<_> = (0..MSGS_PER_ROUND)
            .map(|i| self.sink.post_recv(NodeId(0), Tag(i as u32), size))
            .collect();
        let payload = vec![0xA5u8; size];
        let t0 = Instant::now();
        let sends: Vec<_> = (0..MSGS_PER_ROUND)
            .map(|i| self.init.isend(NodeId(1), Tag(i as u32), payload.clone()))
            .collect();
        // Inline progression: while the application computes, nobody
        // pumps either engine — communication sits still. That is the
        // behaviour this benchmark quantifies.
        compute(compute_for);
        let t_drain = Instant::now();
        loop {
            let moved = self.init.progress_until_idle();
            let moved = self.sink.progress_until_idle() || moved;
            if sends.iter().all(|&s| self.init.is_send_done(s))
                && recvs.iter().all(|&r| self.sink.is_recv_done(r))
            {
                break;
            }
            assert!(moved, "inline drain stalled with transfers pending");
        }
        let total = t0.elapsed().as_secs_f64() * 1e6;
        let drain = t_drain.elapsed().as_secs_f64() * 1e6;
        for r in recvs {
            self.sink.try_take_recv(r);
        }
        (total, drain)
    }
}

struct ThreadedRound {
    init: ThreadedEngine,
    sink: ThreadedEngine,
}

impl Round for ThreadedRound {
    fn round(&mut self, size: usize, compute_for: Duration) -> (f64, f64) {
        let h = self.init.handle();
        let sink = self.sink.handle();
        let recvs: Vec<_> = (0..MSGS_PER_ROUND)
            .map(|i| sink.post_recv(NodeId(0), Tag(i as u32), size))
            .collect();
        let payload = vec![0xA5u8; size];
        let t0 = Instant::now();
        let sends: Vec<_> = (0..MSGS_PER_ROUND)
            .map(|i| h.isend(NodeId(1), Tag(i as u32), payload.clone()))
            .collect();
        // The progression threads move the bytes while we compute.
        compute(compute_for);
        let t_drain = Instant::now();
        while !(sends.iter().all(|&s| h.is_send_done(s))
            && recvs.iter().all(|&r| sink.is_recv_done(r)))
        {
            std::thread::yield_now();
        }
        let total = t0.elapsed().as_secs_f64() * 1e6;
        let drain = t_drain.elapsed().as_secs_f64() * 1e6;
        for r in recvs {
            sink.try_take_recv(r);
        }
        (total, drain)
    }
}
