//! The paper's multi-rails strategy (§4, §7).
//!
//! "A multi-rails [strategy] which balances the communication flow over
//! the set of available NICs, possibly by splitting messages in a
//! heterogeneous manner if necessary."
//!
//! Two mechanisms:
//!
//! * **stream balancing** — eager segments live on the common list;
//!   whichever NIC goes idle first pulls the next batch, so streams of
//!   small messages spread across rails automatically;
//! * **heterogeneous splitting** — a granted rendezvous segment is cut
//!   into per-rail chunks sized proportionally to each rail's
//!   advertised bandwidth, so a fast and a slow rail finish their shares
//!   at about the same time ("later reassembled on the receiving side",
//!   §7; reassembly is offset-based in the matching layer).

use super::{
    eager_cutoff, plan_ctrl, plan_rdv_chunk, Budget, FramePlan, NicView, PlanEntry, Strategy,
};
use crate::window::Window;
use nmad_net::Capabilities;

/// Never split below this: tiny chunks waste per-packet overhead.
const MIN_SPLIT: usize = 4 * 1024;

/// See the module documentation.
#[derive(Debug, Default)]
pub struct StratMultirail {
    total_bw: u64,
    rail_bw: Vec<u64>,
}

impl StratMultirail {
    /// Proportional share of `remaining` for rail `index`.
    fn quantum(&self, index: usize, remaining: usize) -> usize {
        if self.total_bw == 0 || self.rail_bw.len() <= 1 {
            return remaining;
        }
        let share =
            (remaining as u128 * self.rail_bw[index] as u128 / self.total_bw as u128) as usize;
        share.clamp(MIN_SPLIT.min(remaining), remaining)
    }
}

impl Strategy for StratMultirail {
    fn name(&self) -> &'static str {
        "multirail"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        // Bandwidth shares re-derive from `init` over the shard's rails.
        Box::new(StratMultirail::default())
    }

    fn init(&mut self, nics: &[Capabilities]) {
        self.rail_bw = nics.iter().map(|c| c.bandwidth_bps).collect();
        self.total_bw = self.rail_bw.iter().sum();
    }

    fn on_rail_fault(&mut self, rail: usize) {
        // The dead rail no longer counts towards the bandwidth split:
        // survivors absorb its share of future rendezvous chunks.
        if let Some(bw) = self.rail_bw.get_mut(rail) {
            *bw = 0;
        }
        self.total_bw = self.rail_bw.iter().sum();
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        let dst = window.next_dst(nic.index)?;
        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);

        plan_ctrl(&mut plan, window, &mut budget);

        // Split rendezvous payload proportionally to this rail's
        // bandwidth; the other rails pull their shares as they go idle.
        let remaining = window.rdv_front_for(dst).map(|j| j.remaining());
        if let Some(remaining) = remaining {
            let quantum = self.quantum(nic.index, remaining);
            plan_rdv_chunk(&mut plan, window, &mut budget, quantum);
        }

        // Aggregate eager traffic exactly like the aggregation
        // strategy; the common list makes the stream balance itself.
        let cutoff = eager_cutoff(nic.caps);
        loop {
            let fits = |w: &crate::segment::PackWrapper| {
                w.dst == dst && (w.len() > cutoff || budget.fits_data(w.len()))
            };
            let Some(wrapper) = window.take_front_if(nic.index, fits) else {
                break;
            };
            if wrapper.len() > cutoff {
                if !budget.fits_bare() {
                    window.push_segment(wrapper, None);
                    break;
                }
                budget.add_bare();
                plan.entries.push(PlanEntry::Rts(wrapper));
            } else {
                budget.add_data(wrapper.len());
                plan.entries.push(PlanEntry::Data(wrapper));
            }
        }

        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use crate::window::RdvJob;
    use bytes::Bytes;
    use nmad_sim::{nic, NodeId};

    fn two_rail_caps() -> Vec<Capabilities> {
        vec![
            Capabilities::from_nic(&nic::mx_myri10g()), // 1240 MB/s
            Capabilities::from_nic(&nic::quadrics_qm500()), // 880 MB/s
        ]
    }

    #[test]
    fn rendezvous_chunks_split_proportionally_to_bandwidth() {
        let caps = two_rail_caps();
        let mut s = StratMultirail::default();
        s.init(&caps);
        let total = 1 << 20;
        let mut w = Window::new(2);
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![0u8; total]),
            SendReqId(0),
        ));
        let p0 = s
            .schedule(
                &mut w,
                &NicView {
                    index: 0,
                    caps: &caps[0],
                },
            )
            .unwrap();
        let c0 = match &p0.entries[0] {
            PlanEntry::RdvChunk(c) => c.data.len(),
            e => panic!("unexpected {e:?}"),
        };
        let expected0 = total * 1240 / (1240 + 880);
        let tolerance = total / 100;
        assert!(
            c0.abs_diff(expected0) < tolerance,
            "rail 0 share {c0}, expected ≈{expected0}"
        );
        // Rail 1 then picks up (a proportional slice of) the rest.
        let p1 = s
            .schedule(
                &mut w,
                &NicView {
                    index: 1,
                    caps: &caps[1],
                },
            )
            .unwrap();
        assert!(matches!(p1.entries[0], PlanEntry::RdvChunk(_)));
    }

    #[test]
    fn chunks_cover_entire_job_across_rails() {
        let caps = two_rail_caps();
        let mut s = StratMultirail::default();
        s.init(&caps);
        let total = 256 * 1024;
        let mut w = Window::new(2);
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![7u8; total]),
            SendReqId(0),
        ));
        let mut covered = 0;
        let mut rail = 0;
        let mut saw_last = false;
        while w.has_rdv() {
            let view = NicView {
                index: rail,
                caps: &caps[rail],
            };
            if let Some(p) = s.schedule(&mut w, &view) {
                for e in p.entries {
                    if let PlanEntry::RdvChunk(c) = e {
                        covered += c.data.len();
                        saw_last |= c.last;
                    }
                }
            }
            rail = 1 - rail;
        }
        assert_eq!(covered, total);
        assert!(saw_last);
    }

    #[test]
    fn single_rail_degenerates_to_whole_chunks() {
        let caps = vec![Capabilities::from_nic(&nic::mx_myri10g())];
        let mut s = StratMultirail::default();
        s.init(&caps);
        let mut w = Window::new(1);
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![0u8; 1 << 20]),
            SendReqId(0),
        ));
        let p = s
            .schedule(
                &mut w,
                &NicView {
                    index: 0,
                    caps: &caps[0],
                },
            )
            .unwrap();
        match &p.entries[0] {
            PlanEntry::RdvChunk(c) => {
                assert_eq!(c.data.len(), 1 << 20, "no pointless splitting");
                assert!(c.last);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn rail_fault_shifts_the_whole_split_to_survivors() {
        let caps = two_rail_caps();
        let mut s = StratMultirail::default();
        s.init(&caps);
        s.on_rail_fault(0);
        let total = 1 << 20;
        let mut w = Window::new(2);
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![0u8; total]),
            SendReqId(0),
        ));
        let p = s
            .schedule(
                &mut w,
                &NicView {
                    index: 1,
                    caps: &caps[1],
                },
            )
            .unwrap();
        match &p.entries[0] {
            PlanEntry::RdvChunk(c) => {
                assert_eq!(c.data.len(), total, "survivor takes the whole job");
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn small_streams_aggregate_like_aggreg() {
        let caps = two_rail_caps();
        let mut s = StratMultirail::default();
        s.init(&caps);
        let mut w = Window::new(2);
        for tag in 0..6 {
            w.push_segment(
                PackWrapper {
                    dst: NodeId(1),
                    tag: Tag(tag),
                    seq: SeqNo(0),
                    priority: Priority::Normal,
                    data: Bytes::from(vec![0u8; 32]),
                    req: SendReqId(0),
                    order: tag as u64,
                },
                None,
            );
        }
        let p = s
            .schedule(
                &mut w,
                &NicView {
                    index: 0,
                    caps: &caps[0],
                },
            )
            .unwrap();
        assert_eq!(p.entries.len(), 6, "common list drained into one frame");
    }
}
