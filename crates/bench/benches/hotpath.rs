//! Microbenchmarks of the two batched-hot-path primitives this crate's
//! `batch` binary measures end to end: the branchless fixed-layout
//! header pack/unpack (`nmad_core::wire`) and the submission ring's
//! slot traffic (`nmad_core::ring`). The perf-gate CI job runs these
//! with `--quick` and archives the text report next to the
//! `BENCH_*.json` deltas.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmad_core::ring::{Batch, SubmitRing};
use nmad_core::segment::{SeqNo, Tag};
use nmad_core::wire::{
    pack_entry_header, pack_frame_header, unpack_entry_header, unpack_frame_header, EntryHeader,
};

fn sample_header(i: u32) -> EntryHeader {
    EntryHeader {
        kind: 1,
        flags: 0,
        lane: (i % 4) as u8,
        tag: Tag(i),
        seq: SeqNo(i.wrapping_mul(7)),
        len: 64 + i,
        offset: 0,
    }
}

fn bench_header_pack(c: &mut Criterion) {
    c.bench_function("hotpath/pack_entry_header", |b| {
        let h = sample_header(42);
        b.iter(|| black_box(pack_entry_header(black_box(h))))
    });
    c.bench_function("hotpath/unpack_entry_header", |b| {
        let img = pack_entry_header(sample_header(42));
        b.iter(|| black_box(unpack_entry_header(black_box(&img))))
    });
    c.bench_function("hotpath/pack_frame_header", |b| {
        b.iter(|| black_box(pack_frame_header(black_box(16))))
    });
    c.bench_function("hotpath/unpack_frame_header", |b| {
        let img = pack_frame_header(16);
        b.iter(|| unpack_frame_header(black_box(&img)).expect("valid"))
    });
}

/// One producer-side push + consumer-side pop per iteration, the
/// single-submission ring cost the batched path amortizes.
fn bench_ring_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/ring");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_single", |b| {
        let ring: SubmitRing<u64> = SubmitRing::new(1024);
        b.iter(|| {
            ring.push_quiet(black_box(7));
            black_box(ring.pop())
        })
    });
    // A full 8-op slot per push: the batched slot format. Per element
    // this should beat push_pop_single by the slot amortization the
    // `batch` binary demonstrates end to end.
    group.bench_function("push_pop_slot8", |b| {
        let ring: SubmitRing<Batch<u64, 8>> = SubmitRing::new(1024);
        b.iter(|| {
            let mut slot = Batch::new();
            for i in 0..8u64 {
                slot.push(black_box(i)).expect("capacity 8");
            }
            ring.push_quiet(slot);
            let got = ring.pop().expect("just pushed");
            let mut sum = 0u64;
            for v in got {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_batch_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/batch");
    for n in [1usize, 8] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fill_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut batch: Batch<u64, 8> = Batch::new();
                for i in 0..n as u64 {
                    batch.push(black_box(i)).expect("fits");
                }
                let mut sum = 0u64;
                for v in batch {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_header_pack,
    bench_ring_push_pop,
    bench_batch_fill
);
criterion_main!(benches);
