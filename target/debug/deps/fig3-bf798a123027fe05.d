/root/repo/target/debug/deps/fig3-bf798a123027fe05.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-bf798a123027fe05: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
