//! Ping-pong smoke benchmark over the `mem` and `sim` drivers.
//!
//! CI's perf-smoke job runs this to watch the zero-copy transmit path:
//! on a gather-capable NIC every multi-entry frame must post as a
//! multi-segment iov (`gather_sends > 0`, `staging_copies == 0`), and
//! steady-state frame buffers must come from the recycling pool
//! (`pool_hits` ≫ `pool_misses`). Results land in
//! `BENCH_pingpong.json` (override with `--bench-json PATH`).
//!
//! Run: `cargo run --release -p bench --bin pingpong [-- --quick]`

use bench::{bench_json_arg, fmt_size, BenchReport, PingPongSample, Table};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_core::prelude::*;
use nmad_net::mem::mem_fabric;
use nmad_net::NullMeter;
use nmad_sim::{nic, NodeId};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = bench_json_arg();
    let reps = if quick { 1 } else { 3 };
    let iters = if quick { 2 } else { 8 };
    let sizes = [16usize, 256, 4 * 1024, 64 * 1024];
    let report = BenchReport::new();

    println!("\n## ping-pong smoke — sim driver (MX/Myri-10G, aggreg)\n");
    let mut table = Table::new(vec![
        "size",
        "one-way (us)",
        "gather",
        "staged",
        "pool hit/miss",
    ]);
    for &size in &sizes {
        let samples: Vec<PingPongSample> = (0..reps)
            .map(|_| {
                bench::pingpong_contig(
                    EngineKind::MadMpi(StrategyKind::Aggreg),
                    nic::mx_myri10g(),
                    size,
                    iters,
                )
            })
            .collect();
        report.record("pingpong/sim/MX/Myri-10G", "madmpi(aggreg)", size, &samples);
        table.row(row_for(size, &samples));
    }
    table.print();

    println!("\n## ping-pong smoke — mem driver (in-process, aggreg)\n");
    let mut table = Table::new(vec![
        "size",
        "one-way (us)",
        "gather",
        "staged",
        "pool hit/miss",
    ]);
    for &size in &sizes {
        let samples: Vec<PingPongSample> = (0..reps).map(|_| pingpong_mem(size, iters)).collect();
        report.record("pingpong/mem", "nmad(aggreg)", size, &samples);
        table.row(row_for(size, &samples));
    }
    table.print();

    report.write(&json);
}

fn row_for(size: usize, samples: &[PingPongSample]) -> Vec<String> {
    let lats: Vec<f64> = samples.iter().map(|s| s.one_way_us).collect();
    let last = samples.last().expect("non-empty");
    let (gather, staged, hits, misses) = match &last.metrics {
        Some(m) => (
            m.engine.gather_sends,
            m.wire.staging_copies,
            m.engine.pool_hits,
            m.engine.pool_misses,
        ),
        None => (0, 0, 0, 0),
    };
    vec![
        fmt_size(size),
        format!("{:.2}", bench::median(&lats)),
        format!("{gather}"),
        format!("{staged}"),
        format!("{hits}/{misses}"),
    ]
}

/// Ping-pong over the in-process `mem` driver: two real engines, wall
/// clock time. Latency here includes host scheduling noise — CI treats
/// it as a smoke signal, not a paper figure.
fn pingpong_mem(size: usize, iters: usize) -> PingPongSample {
    let mut fabric = mem_fabric(2);
    let d1 = fabric.pop().expect("two endpoints");
    let d0 = fabric.pop().expect("two endpoints");
    let mk = |d: nmad_net::MemDriver| {
        NmadEngine::new(
            vec![Box::new(d)],
            Box::new(NullMeter),
            Box::new(StratAggreg),
            EngineCosts::zero(),
        )
    };
    let (mut a, mut b) = (mk(d0), mk(d1));
    let payload = vec![0x5Au8; size];

    let t0 = std::time::Instant::now();
    let frames0 = a.stats().frames_sent;
    for _ in 0..iters {
        let r_pong = a.post_recv(NodeId(1), Tag(0), size);
        let r_ping = b.post_recv(NodeId(0), Tag(0), size);
        let _s = a.isend(NodeId(1), Tag(0), payload.clone());
        while !b.is_recv_done(r_ping) {
            a.progress();
            b.progress();
        }
        let echo = b.try_take_recv(r_ping).expect("tested").data;
        let _s2 = b.isend(NodeId(0), Tag(0), echo);
        while !a.is_recv_done(r_pong) {
            a.progress();
            b.progress();
        }
        a.try_take_recv(r_pong);
    }
    let one_way_us = t0.elapsed().as_secs_f64() * 1e6 / (2.0 * iters as f64);
    let frames = (a.stats().frames_sent - frames0) as f64;
    PingPongSample {
        one_way_us,
        bandwidth_mbs: size as f64 / one_way_us,
        frames_per_ping: frames / iters as f64,
        metrics: Some(a.metrics()),
    }
}
