/root/repo/target/debug/deps/mad_mpi-77bd1c552233d7e1.d: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

/root/repo/target/debug/deps/libmad_mpi-77bd1c552233d7e1.rlib: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

/root/repo/target/debug/deps/libmad_mpi-77bd1c552233d7e1.rmeta: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

crates/mad-mpi/src/lib.rs:
crates/mad-mpi/src/backend.rs:
crates/mad-mpi/src/cluster.rs:
crates/mad-mpi/src/coll.rs:
crates/mad-mpi/src/datatype.rs:
crates/mad-mpi/src/p2p.rs:
