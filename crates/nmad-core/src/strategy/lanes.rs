//! Priority-lane strategy: strict lanes with aging promotion and a
//! weighted deficit share across tenants inside each lane.
//!
//! The optimization window indexes every queued segment by `(dst,
//! lane)` in submission order, so this strategy answers "which lane,
//! which destination, which flow" without scanning the queue:
//!
//! * **Strict lanes** — frames are filled serving [`Priority::Urgent`]
//!   before `High` before `Normal` before `Bulk`, per-lane FIFO (the
//!   receiver restores per-flow order from sequence numbers, so
//!   cross-flow reordering is invisible to applications).
//! * **Aging promotion** — a segment's *effective* lane improves by
//!   one for every `age_step` submissions that entered the window
//!   since it did (`age = order_horizon - order`). A `Bulk` segment is
//!   therefore served as `Urgent` after at most `3 * age_step`
//!   submissions: starvation-freedom is a bound, not a hope.
//! * **Weighted deficit across tenants** — inside one lane, each
//!   tenant (tag) may place at most `quantum` payload bytes into the
//!   frame per round; when every pending tenant has spent its quantum
//!   the round resets. A chatty tenant cannot lock a quiet one out of
//!   its own lane.
//! * **Deadline-aware rendezvous admission** — granted rendezvous
//!   chunks are capped at a fraction of the MTU while expedited
//!   segments are pending, unless the job has aged past the deadline
//!   (see [`super::rdv_admission_cap`]).

use std::collections::HashMap;

use super::{
    contended_chunk, eager_cutoff, plan_ctrl, plan_rdv_chunk, rdv_admission_cap, Budget, FramePlan,
    NicView, PlanEntry, Strategy,
};
use crate::segment::{Priority, Tag, NUM_LANES};
use crate::window::Window;

/// Default aging step: one lane of promotion per this many submissions.
pub const DEFAULT_AGE_STEP: u64 = 512;

/// Default per-tenant deficit quantum per lane round, in payload bytes.
pub const DEFAULT_QUANTUM: usize = 4096;

/// Default rendezvous deadline, in submission stamps.
pub const DEFAULT_RDV_DEADLINE: u64 = 2048;

/// The priority-lane strategy (see module docs).
#[derive(Clone, Debug)]
pub struct StratLanes {
    /// Submissions per lane of aging promotion.
    pub age_step: u64,
    /// Per-tenant payload bytes per lane round.
    pub quantum: usize,
    /// Rendezvous ages past this admit full-size chunks even under
    /// expedited pressure.
    pub rdv_deadline: u64,
}

impl Default for StratLanes {
    fn default() -> Self {
        StratLanes {
            age_step: DEFAULT_AGE_STEP,
            quantum: DEFAULT_QUANTUM,
            rdv_deadline: DEFAULT_RDV_DEADLINE,
        }
    }
}

impl StratLanes {
    /// Default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom tuning. `age_step` and `quantum` are clamped to at
    /// least 1 so the aging and deficit arithmetic stay well-defined.
    pub fn with_params(age_step: u64, quantum: usize, rdv_deadline: u64) -> Self {
        StratLanes {
            age_step: age_step.max(1),
            quantum: quantum.max(1),
            rdv_deadline,
        }
    }

    /// Effective lane of a segment submitted at `order`, under the
    /// current horizon: its priority lane minus one per `age_step`
    /// submissions of age, clamped at `Urgent`.
    fn effective_lane(&self, horizon: u64, priority: Priority, order: u64) -> u8 {
        let age = horizon.saturating_sub(order);
        let promote = (age / self.age_step).min(u64::from(priority.lane())) as u8;
        priority.lane() - promote
    }
}

impl Strategy for StratLanes {
    fn name(&self) -> &'static str {
        "lanes"
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        let horizon = window.order_horizon();

        // Destination: pending grants first (they unblock a receiver
        // that already pinned memory), then the destination of the
        // globally most-urgent *effective* segment, then rendezvous
        // fallback.
        let seg_dst = {
            let mut best: Option<(u8, u64, nmad_sim::NodeId)> = None;
            for lane in 0..NUM_LANES as u8 {
                if let Some((dst, order)) = window.global_oldest_in_lane(lane) {
                    let eff = self.effective_lane(horizon, Priority::from_lane(lane), order);
                    if best.is_none_or(|(be, bo, _)| (eff, order) < (be, bo)) {
                        best = Some((eff, order, dst));
                    }
                }
            }
            best.map(|(_, _, dst)| dst)
        };
        let dst = window
            .ctrl_ref()
            .front()
            .map(|c| c.dst)
            .or(seg_dst)
            .or_else(|| window.next_dst(nic.index))?;

        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);
        let cutoff = eager_cutoff(nic.caps);

        plan_ctrl(&mut plan, window, &mut budget);

        let rdv_cap = rdv_admission_cap(window, dst, contended_chunk(nic.caps), self.rdv_deadline);
        plan_rdv_chunk(&mut plan, window, &mut budget, rdv_cap);

        // Fill the remaining budget serving effective lanes in strict
        // urgency order; per-lane FIFO; per-tenant deficit inside a
        // lane.
        for service in 0..NUM_LANES as u8 {
            let mut used: HashMap<Tag, usize> = HashMap::new();
            let mut took_since_reset = false;
            loop {
                if !budget.fits_bare() {
                    break;
                }
                let taken = window.take_first_matching_tracked(nic.index, |w| {
                    w.dst == dst
                        && self.effective_lane(horizon, w.priority, w.order) == service
                        && (w.len() > cutoff || budget.fits_data(w.len()))
                        && used.get(&w.tag).copied().unwrap_or(0) < self.quantum
                });
                match taken {
                    Some((w, jumped)) => {
                        plan.reordered += u32::from(jumped);
                        took_since_reset = true;
                        *used.entry(w.tag).or_insert(0) += w.len().max(1);
                        if w.len() > cutoff {
                            if !budget.fits_bare() {
                                window.push_segment(w, None);
                                break;
                            }
                            budget.add_bare();
                            plan.entries.push(PlanEntry::Rts(w));
                        } else {
                            budget.add_data(w.len());
                            plan.entries.push(PlanEntry::Data(w));
                        }
                    }
                    None => {
                        // Every pending tenant in this lane may have
                        // spent its quantum: grant a fresh round, but
                        // only if the last round made progress
                        // (otherwise nothing here fits the budget).
                        if took_since_reset {
                            used.clear();
                            took_since_reset = false;
                            continue;
                        }
                        break;
                    }
                }
            }
        }

        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, SendReqId, SeqNo};
    use crate::window::{RdvJob, Window};
    use nmad_net::Capabilities;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn view(caps: &Capabilities) -> NicView<'_> {
        NicView { index: 0, caps }
    }

    fn seg(tag: u32, len: usize, priority: Priority, order: u64) -> PackWrapper {
        PackWrapper {
            dst: NodeId(1),
            tag: Tag(tag),
            seq: SeqNo(0),
            priority,
            data: vec![7u8; len].into(),
            req: SendReqId(0),
            order,
        }
    }

    fn lanes_of(plan: &FramePlan) -> Vec<u8> {
        plan.entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Data(w) | PlanEntry::Rts(w) => Some(w.priority.lane()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn urgent_jumps_the_bulk_queue() {
        let caps = caps();
        let mut w = Window::new(1);
        for i in 0..4 {
            w.push_segment(seg(0, 256, Priority::Bulk, i), None);
        }
        w.push_segment(seg(1, 64, Priority::Urgent, 4), None);
        let mut s = StratLanes::new();
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        assert_eq!(lanes_of(&plan)[0], Priority::Urgent.lane());
        assert!(plan.reordered > 0, "urgent segment jumped the queue");
        assert!(w.index_is_consistent());
    }

    #[test]
    fn per_lane_fifo_is_preserved() {
        let caps = caps();
        let mut w = Window::new(1);
        for i in 0..3 {
            w.push_segment(seg(5, 100 + i as usize, Priority::High, i), None);
        }
        let mut s = StratLanes::new();
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        let lens: Vec<usize> = plan
            .entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Data(w) => Some(w.data.len()),
                _ => None,
            })
            .collect();
        assert_eq!(lens, vec![100, 101, 102], "same-lane same-tag is FIFO");
    }

    #[test]
    fn deficit_round_robin_shares_a_lane_between_tenants() {
        let caps = caps();
        let mut w = Window::new(1);
        // Tenant 0 floods the Normal lane ahead of tenant 1.
        for i in 0..4 {
            w.push_segment(seg(0, 100, Priority::Normal, i), None);
        }
        w.push_segment(seg(1, 100, Priority::Normal, 4), None);
        // One 100-byte segment exhausts a tenant's quantum per round.
        let mut s = StratLanes::with_params(DEFAULT_AGE_STEP, 100, DEFAULT_RDV_DEADLINE);
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        let tags: Vec<u32> = plan
            .entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Data(w) => Some(w.tag.0),
                _ => None,
            })
            .collect();
        // Round 1 serves one segment of each tenant; tenant 1 is done
        // after its first, the rest of tenant 0 follows in later rounds.
        assert_eq!(tags[0], 0);
        assert_eq!(tags[1], 1, "tenant 1 served within one quantum round");
        assert_eq!(tags.iter().filter(|&&t| t == 0).count(), 4);
    }

    #[test]
    fn aging_promotes_bulk_ahead_of_fresh_urgent() {
        let caps = caps();
        let mut w = Window::new(1);
        let step = 4;
        // Bulk submitted at order 0; enough younger traffic follows
        // that its age (horizon - 0) crosses 3 * step => Urgent.
        w.push_segment(seg(0, 64, Priority::Bulk, 0), None);
        w.push_segment(seg(1, 64, Priority::Urgent, 3 * step), None);
        let mut s = StratLanes::with_params(step, DEFAULT_QUANTUM, DEFAULT_RDV_DEADLINE);
        assert_eq!(
            s.effective_lane(w.order_horizon(), Priority::Bulk, 0),
            Priority::Urgent.lane(),
            "aged bulk is effectively urgent"
        );
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        let tags: Vec<u32> = plan
            .entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Data(w) => Some(w.tag.0),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![0, 1], "aged bulk first, then fresh urgent");
    }

    #[test]
    fn rdv_chunks_are_capped_while_expedited_work_is_pending() {
        let caps = caps();
        let mut w = Window::new(1);
        let body: bytes::Bytes = vec![1u8; 200_000].into();
        // A fresh rendezvous job (order = horizon) and a pending
        // urgent segment: chunk must be capped at mtu / 4.
        w.push_segment(seg(1, 64, Priority::Urgent, 9), None);
        w.push_rdv(
            RdvJob::new(NodeId(1), Tag(0), SeqNo(0), body.clone(), SendReqId(1)).with_order(9),
        );
        let mut s = StratLanes::new();
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        let chunk = plan
            .entries
            .iter()
            .find_map(|e| match e {
                PlanEntry::RdvChunk(c) => Some(c.data.len()),
                _ => None,
            })
            .expect("chunk planned");
        assert!(
            chunk <= caps.rdv_threshold,
            "chunk {} exceeds contended cap {}",
            chunk,
            caps.rdv_threshold
        );

        // Past the deadline the same job is admitted at full size.
        let mut w2 = Window::new(1);
        w2.push_segment(seg(1, 64, Priority::Urgent, 5000), None);
        w2.push_rdv(RdvJob::new(NodeId(1), Tag(0), SeqNo(0), body, SendReqId(1)).with_order(0));
        let plan2 = s.schedule(&mut w2, &view(&caps)).expect("plan");
        let chunk2 = plan2
            .entries
            .iter()
            .find_map(|e| match e {
                PlanEntry::RdvChunk(c) => Some(c.data.len()),
                _ => None,
            })
            .expect("chunk planned");
        assert!(
            chunk2 > caps.rdv_threshold,
            "aged job must be admitted past the cap, got {}",
            chunk2
        );
    }

    #[test]
    fn oversized_segments_become_rts_in_lane_order() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(0, caps.rdv_threshold + 10, Priority::Bulk, 0), None);
        w.push_segment(seg(1, caps.rdv_threshold + 10, Priority::Urgent, 1), None);
        let mut s = StratLanes::new();
        let plan = s.schedule(&mut w, &view(&caps)).expect("plan");
        let kinds: Vec<(u32, bool)> = plan
            .entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Rts(w) => Some((w.tag.0, true)),
                PlanEntry::Data(w) => Some((w.tag.0, false)),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![(1, true), (0, true)], "urgent RTS first");
    }
}
