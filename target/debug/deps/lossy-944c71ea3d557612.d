/root/repo/target/debug/deps/lossy-944c71ea3d557612.d: crates/bench/src/bin/lossy.rs Cargo.toml

/root/repo/target/debug/deps/liblossy-944c71ea3d557612.rmeta: crates/bench/src/bin/lossy.rs Cargo.toml

crates/bench/src/bin/lossy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
