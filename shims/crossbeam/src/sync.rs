//! Sync facade for the shim's lock-free queue.
//!
//! The only place in this crate allowed to name raw atomics (enforced
//! by `cargo run -p xtask -- lint`). Under `cfg(nmad_model)` — mapped
//! from the `nmad-model` cargo feature by build.rs — the types route
//! to the nmad-verify model-checking runtime, so `ArrayQueue`'s
//! ticket/sequence protocol can be exhaustively model-checked; in
//! normal builds they are the std atomics, zero-cost.

#[cfg(nmad_model)]
pub use nmad_verify::sync::{fence, spin_loop, AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(nmad_model))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(nmad_model))]
pub use std::hint::spin_loop;
