//! Selective-repeat reliability as a driver decorator.
//!
//! The go-back-N layer ([`ReliableDriver`](crate::reliable)) resends
//! its whole unacknowledged window on any loss — cheap state, expensive
//! wire. `SelectiveDriver` is the classic alternative: every frame is
//! acknowledged *individually*, the receiver buffers out-of-order
//! frames, and only frames whose own timer expires are retransmitted.
//! The lossy-fabric study (`bench --bin lossy`) compares the two.
//!
//! Wire format per frame: `kind (1) + seq (4) + checksum (4) +
//! payload`, where an ack frame's `seq` names the acknowledged data
//! frame. The checksum ([`checksum32`]) covers the rest of the frame;
//! frames that fail to verify are dropped and recovered by each
//! frame's own retransmission timer, which backs off exponentially
//! per attempt (shared [`BackoffPolicy`] schedule).

use crate::backoff::BackoffPolicy;
use crate::driver::{Capabilities, Driver, NetResult, RxFrame, SendHandle};
use crate::fault::{checksum32, FaultPlan, FaultStats};
use bytes::Bytes;
use nmad_sim::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Decorator header: kind (1) + seq (4) + checksum (4).
pub const HEADER_LEN: usize = 9;
/// Frame kind: data carrying an engine frame as payload.
pub const KIND_DATA: u8 = 1;
/// Frame kind: individual acknowledgement of one data frame.
pub const KIND_ACK: u8 = 2;

/// Per-frame retransmission backoff cap, as a multiple of the base RTO.
const RTO_BACKOFF_CAP: u64 = 32;

/// Bound on receiver-side out-of-order buffering per peer.
const REORDER_WINDOW: usize = 1024;

/// Selective-repeat counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectiveStats {
    /// Data frames sent for the first time.
    pub data_sent: u64,
    /// Individual frames retransmitted after their timer expired.
    pub retransmits: u64,
    /// Ack frames sent.
    pub acks_sent: u64,
    /// Duplicate data frames discarded at the receiver.
    pub duplicates_dropped: u64,
    /// Frames discarded because their checksum did not verify.
    pub corrupt_dropped: u64,
}

struct Outstanding {
    payload: Vec<u8>,
    last_tx_ns: u64,
    /// Times this frame's own timer has expired; feeds its
    /// exponentially backed-off RTO.
    attempt: u32,
}

#[derive(Default)]
struct PeerState {
    next_tx_seq: u32,
    unacked: BTreeMap<u32, Outstanding>,
    next_rx_seq: u32,
    out_of_order: BTreeMap<u32, Bytes>,
    /// Seqs received since the last pump, to acknowledge.
    owed_acks: Vec<u32>,
}

/// See the module documentation.
pub struct SelectiveDriver<D> {
    inner: D,
    now: Box<dyn Fn() -> u64 + Send>,
    request_wakeup: Option<Box<dyn Fn(u64) + Send>>,
    rto_ns: u64,
    peers: HashMap<NodeId, PeerState>,
    rx_ready: VecDeque<RxFrame>,
    inner_handles: VecDeque<SendHandle>,
    pending: HashMap<SendHandle, (NodeId, u32)>,
    next_handle: u64,
    stats: SelectiveStats,
}

fn encode(kind: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    encode_iov(kind, seq, &[payload])
}

/// Encodes a decorator frame directly from the engine's gather iov,
/// avoiding an intermediate concatenation buffer.
fn encode_iov(kind: u8, seq: u32, iov: &[&[u8]]) -> Vec<u8> {
    let len: usize = iov.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + len);
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    let crc = {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(iov.len() + 1);
        parts.push(&out[..5]);
        parts.extend_from_slice(iov);
        checksum32(&parts)
    };
    out.extend_from_slice(&crc.to_le_bytes());
    for seg in iov {
        out.extend_from_slice(seg);
    }
    out
}

/// Verifies a received decorator frame's checksum.
fn verify(frame: &[u8]) -> bool {
    debug_assert!(frame.len() >= HEADER_LEN);
    let stamped = u32::from_le_bytes(frame[5..9].try_into().expect("4")); // PANIC-OK: 4-byte slice by construction
    stamped == checksum32(&[&frame[..5], &frame[HEADER_LEN..]])
}

impl<D: Driver> SelectiveDriver<D> {
    /// Wraps `inner` with selective-repeat reliability; parameters as
    /// in [`ReliableDriver::new`](crate::reliable::ReliableDriver::new)
    /// (here the RTO only needs to cover the round trip of a *single*
    /// frame plus its ack).
    pub fn new(
        inner: D,
        now: Box<dyn Fn() -> u64 + Send>,
        request_wakeup: Option<Box<dyn Fn(u64) + Send>>,
        rto_ns: u64,
    ) -> Self {
        assert!(rto_ns > 0, "zero retransmission timeout");
        SelectiveDriver {
            inner,
            now,
            request_wakeup,
            rto_ns,
            peers: HashMap::new(),
            rx_ready: VecDeque::new(),
            inner_handles: VecDeque::new(),
            pending: HashMap::new(),
            next_handle: 0,
            stats: SelectiveStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> SelectiveStats {
        self.stats
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn arm_timer(&self, deadline: u64) {
        if let Some(hook) = &self.request_wakeup {
            hook(deadline);
        }
    }

    fn reap_inner_handles(&mut self) -> NetResult<()> {
        for _ in 0..self.inner_handles.len() {
            let h = self.inner_handles.pop_front().expect("len checked"); // PANIC-OK: len checked in the loop condition
            if !self.inner.test_send(h)? {
                self.inner_handles.push_back(h);
            }
        }
        Ok(())
    }

    fn send_raw(&mut self, dst: NodeId, frame: &[u8]) -> NetResult<()> {
        let h = self.inner.post_send(dst, &[frame])?;
        self.inner_handles.push_back(h);
        Ok(())
    }

    fn handle_data(&mut self, src: NodeId, seq: u32, payload: Bytes) {
        let peer = self.peers.entry(src).or_default();
        peer.owed_acks.push(seq);
        if seq < peer.next_rx_seq || peer.out_of_order.contains_key(&seq) {
            self.stats.duplicates_dropped += 1;
            return;
        }
        if seq == peer.next_rx_seq {
            peer.next_rx_seq += 1;
            self.rx_ready.push_back(RxFrame { src, payload });
            while let Some(p) = peer.out_of_order.remove(&peer.next_rx_seq) {
                peer.next_rx_seq += 1;
                self.rx_ready.push_back(RxFrame { src, payload: p });
            }
        } else if peer.out_of_order.len() < REORDER_WINDOW {
            peer.out_of_order.insert(seq, payload);
        }
    }
}

impl<D: Driver> Driver for SelectiveDriver<D> {
    fn caps(&self) -> &Capabilities {
        self.inner.caps()
    }

    fn local_node(&self) -> NodeId {
        self.inner.local_node()
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let now = (self.now)();
        let (seq, frame) = {
            let peer = self.peers.entry(dst).or_default();
            let seq = peer.next_tx_seq;
            peer.next_tx_seq += 1;
            // Assemble the wire frame straight from the gather iov;
            // the retransmission copy is carved from the frame itself.
            let frame = encode_iov(KIND_DATA, seq, iov);
            peer.unacked.insert(
                seq,
                Outstanding {
                    payload: frame[HEADER_LEN..].to_vec(),
                    last_tx_ns: now,
                    attempt: 0,
                },
            );
            (seq, frame)
        };
        self.send_raw(dst, &frame)?;
        self.stats.data_sent += 1;
        self.arm_timer(now + self.rto_ns);
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        self.pending.insert(handle, (dst, seq));
        Ok(handle)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        self.pump()?;
        Ok(!self.pending.contains_key(&handle))
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        if let Some(f) = self.rx_ready.pop_front() {
            return Ok(Some(f));
        }
        self.pump()?;
        Ok(self.rx_ready.pop_front())
    }

    fn tx_idle(&self) -> bool {
        self.inner.tx_idle()
    }

    fn pump(&mut self) -> NetResult<()> {
        self.inner.pump()?;
        self.reap_inner_handles()?;

        while let Some(frame) = self.inner.poll_recv()? {
            if frame.payload.len() < HEADER_LEN {
                continue;
            }
            if !verify(&frame.payload) {
                self.stats.corrupt_dropped += 1;
                continue;
            }
            let kind = frame.payload[0];
            let seq = u32::from_le_bytes(frame.payload[1..5].try_into().expect("4")); // PANIC-OK: 4-byte slice by construction
            match kind {
                KIND_ACK => {
                    if let Some(peer) = self.peers.get_mut(&frame.src) {
                        peer.unacked.remove(&seq);
                    }
                    self.pending
                        .retain(|_, &mut (peer, s)| !(peer == frame.src && s == seq));
                }
                // Zero-copy: the delivered payload is a slice of the
                // received frame buffer.
                KIND_DATA => self.handle_data(frame.src, seq, frame.payload.slice(HEADER_LEN..)),
                _ => {}
            }
        }

        // Send owed acks, one frame per received seq (individual acks
        // are the essence of selective repeat).
        let owing: Vec<(NodeId, Vec<u32>)> = self
            .peers
            .iter_mut()
            .filter(|(_, p)| !p.owed_acks.is_empty())
            .map(|(&n, p)| (n, std::mem::take(&mut p.owed_acks)))
            .collect();
        for (dst, seqs) in owing {
            for seq in seqs {
                let frame = encode(KIND_ACK, seq, &[]);
                self.send_raw(dst, &frame)?;
                self.stats.acks_sent += 1;
            }
        }

        // Per-frame retransmission timers, each with its own
        // exponentially backed-off deadline (shared backoff schedule,
        // capped at RTO_BACKOFF_CAP × the base RTO).
        let now = (self.now)();
        let policy = BackoffPolicy::new(self.rto_ns, self.rto_ns.saturating_mul(RTO_BACKOFF_CAP));
        let mut resends: Vec<(NodeId, Vec<u8>)> = Vec::new();
        let mut next_deadline: Option<u64> = None;
        for (&dst, peer) in &mut self.peers {
            for (&seq, out) in &mut peer.unacked {
                if now.saturating_sub(out.last_tx_ns) >= policy.delay_for(out.attempt) {
                    out.last_tx_ns = now;
                    out.attempt = out.attempt.saturating_add(1);
                    resends.push((dst, encode(KIND_DATA, seq, &out.payload)));
                }
                let deadline = out.last_tx_ns.saturating_add(policy.delay_for(out.attempt));
                next_deadline = Some(next_deadline.map_or(deadline, |d| d.min(deadline)));
            }
        }
        if let Some(deadline) = next_deadline {
            self.arm_timer(deadline);
        }
        for (dst, frame) in resends {
            self.send_raw(dst, &frame)?;
            self.stats.retransmits += 1;
        }
        Ok(())
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.inner.install_faults(plan)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn endpoint_stats(&self) -> crate::endpoint::EndpointStats {
        self.inner.endpoint_stats()
    }

    fn set_rx_backpressure(&mut self, paused: bool) {
        self.inner.set_rx_backpressure(paused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyDriver;
    use crate::mem::mem_fabric;
    use nmad_verify::sync::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn test_clock() -> (Arc<AtomicU64>, Box<dyn Fn() -> u64 + Send>) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        (t, Box::new(move || t2.load(Ordering::Relaxed)))
    }

    #[test]
    fn lossless_in_order_delivery_without_retransmits() {
        let mut fabric = mem_fabric(2);
        let (_, clk_b) = test_clock();
        let (_, clk_a) = test_clock();
        let mut b = SelectiveDriver::new(fabric.pop().expect("pair"), clk_b, None, 1_000_000);
        let mut a = SelectiveDriver::new(fabric.pop().expect("pair"), clk_a, None, 1_000_000);
        for i in 0..25u8 {
            a.post_send(NodeId(1), &[&[i; 4]]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 25 {
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                got.push(f.payload[0]);
            }
        }
        assert_eq!(got, (0..25).collect::<Vec<u8>>());
        assert_eq!(a.stats().retransmits, 0);
    }

    #[test]
    fn selective_repeat_resends_only_lost_frames() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        // Loss only on a→b data; acks flow losslessly back.
        let mut a =
            SelectiveDriver::new(LossyDriver::new(a_raw, 0.3, 0xD00D), clk_a, None, 500_000);
        let mut b = SelectiveDriver::new(b_raw, clk_b, None, 500_000);
        let n = 60u8;
        for i in 0..n {
            a.post_send(NodeId(1), &[&[i; 16]]).unwrap();
        }
        let first_pass = a.inner().stats().passed;
        let lost = n as u64 - first_pass;
        assert!(lost > 0, "seeded loss must drop something");
        let mut got = Vec::new();
        for _ in 0..100_000 {
            ta.fetch_add(100_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                got.push(f.payload[0]);
            }
            if got.len() == n as usize {
                break;
            }
        }
        assert_eq!(got, (0..n).collect::<Vec<u8>>());
        // The defining property: retransmissions stay in the order of
        // the losses, not of the whole window (go-back-N would resend
        // many follow-on frames per loss).
        let retx = a.stats().retransmits;
        assert!(
            retx < 3 * lost + 6,
            "selective repeat resent {retx} for {lost} losses"
        );
    }

    #[test]
    fn injected_corruption_is_detected_and_recovered() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let mut a_raw = fabric.pop().expect("pair");
        // Flip one bit in roughly half of a's outgoing frames.
        assert!(a_raw.install_faults(FaultPlan::new(0xC0).with_corrupt_probability(0.5)));
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        let mut a = SelectiveDriver::new(a_raw, clk_a, None, 500_000);
        let mut b = SelectiveDriver::new(b_raw, clk_b, None, 500_000);
        let n = 30u8;
        for i in 0..n {
            a.post_send(NodeId(1), &[&[i; 16]]).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..100_000 {
            ta.fetch_add(2_000_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                got.push(f.payload.clone());
            }
            if got.len() == n as usize {
                break;
            }
        }
        assert_eq!(got.len(), n as usize, "all frames recovered");
        for (i, payload) in got.iter().enumerate() {
            assert_eq!(payload, &vec![i as u8; 16], "in-order, uncorrupted content");
        }
        let corrupted_on_wire = a.fault_stats().corrupted;
        assert!(corrupted_on_wire > 0, "the plan must have corrupted frames");
        // Corrupted data frames land at b; corrupted acks land back at a.
        assert!(
            a.stats().corrupt_dropped + b.stats().corrupt_dropped > 0,
            "checksum must have caught corruption"
        );
    }

    #[test]
    fn per_frame_rto_backs_off_exponentially() {
        let mut fabric = mem_fabric(2);
        let _b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        // No peer ever pumps, so the single frame times out repeatedly.
        let mut a = SelectiveDriver::new(a_raw, clk_a, None, 1_000_000);
        a.post_send(NodeId(1), &[b"lonely"]).unwrap();
        let mut timeout_steps = Vec::new();
        for step in 0..64u64 {
            ta.fetch_add(1_000_000, Ordering::Relaxed);
            let before = a.stats().retransmits;
            a.pump().unwrap();
            if a.stats().retransmits > before {
                timeout_steps.push(step);
            }
        }
        assert!(timeout_steps.len() >= 3, "expected several timeouts");
        let gaps: Vec<u64> = timeout_steps.windows(2).map(|w| w[1] - w[0]).collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] >= pair[0], "gaps must not shrink: {gaps:?}");
        }
        assert!(
            gaps.last().expect("gaps") > gaps.first().expect("gaps"),
            "backoff must actually grow: {gaps:?}"
        );
    }

    #[test]
    fn duplicate_data_is_acked_but_not_redelivered() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        // Drop essentially all acks so a keeps retransmitting.
        let mut a = SelectiveDriver::new(a_raw, clk_a, None, 300_000);
        let mut b = SelectiveDriver::new(LossyDriver::new(b_raw, 0.95, 5), clk_b, None, 300_000);
        a.post_send(NodeId(1), &[b"exactly-once"]).unwrap();
        let mut deliveries = 0;
        for _ in 0..60 {
            ta.fetch_add(400_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                assert_eq!(f.payload, b"exactly-once");
                deliveries += 1;
            }
        }
        assert_eq!(deliveries, 1);
        assert!(b.stats().duplicates_dropped > 0);
    }
}
