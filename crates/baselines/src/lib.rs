//! # baselines — the comparator engines of the evaluation
//!
//! The NewMadeleine paper compares MAD-MPI against MPICH (over MX and
//! Quadrics) and OpenMPI 1.1 (over MX). Those libraries map basic
//! point-to-point requests directly onto the low-level interface —
//! exceptionally efficient for single transfers, but with "no message
//! reordering or multiplexing" (§6). [`DirectEngine`] reproduces that
//! design over the same simulated drivers the engine runs on:
//!
//! * one application request → one wire message, posted immediately;
//! * efficient pipelining of back-to-back sends via the NIC queue
//!   (§5.2 credits MPICH with this);
//! * eager/rendezvous switching at the driver threshold;
//! * derived datatypes packed into a contiguous buffer on the sender
//!   and dispatched from a temporary area on the receiver (§5.3) —
//!   the copies are charged by the MPI layer via
//!   [`DirectEngine::charge_memcpy`] and [`UnpackMode`].
//!
//! Two calibrated flavours: [`mpich_config`] and [`ompi_config`]. They
//! differ in per-request software cost (OpenMPI's component stack is
//! heavier) and in rendezvous chunking (OpenMPI overlaps receive-side
//! unpacking chunk by chunk).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod direct;

pub use direct::{mpich_config, ompi_config, DirectConfig, DirectEngine, DirectStats, UnpackMode};
