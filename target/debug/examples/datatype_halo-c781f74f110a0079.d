/root/repo/target/debug/examples/datatype_halo-c781f74f110a0079.d: examples/datatype_halo.rs Cargo.toml

/root/repo/target/debug/examples/libdatatype_halo-c781f74f110a0079.rmeta: examples/datatype_halo.rs Cargo.toml

examples/datatype_halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
