/root/repo/target/debug/examples/multirail_transfer-f1ecdf9cbc2fd527.d: examples/multirail_transfer.rs

/root/repo/target/debug/examples/multirail_transfer-f1ecdf9cbc2fd527: examples/multirail_transfer.rs

examples/multirail_transfer.rs:
