//! Real-time microbenchmarks of the wire codecs: the per-entry header
//! packing/parsing cost is the engine's critical-path constant (§5.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmad_core::segment::{SeqNo, Tag};
use nmad_core::wire::{parse_frame, FrameBuilder};

fn build_frame(entries: usize, payload: usize) -> Vec<u8> {
    let body = vec![7u8; payload];
    let mut fb = FrameBuilder::new();
    for i in 0..entries {
        fb.push_data(Tag(i as u32), SeqNo(i as u32), &body);
    }
    fb.finish()
}

fn bench_frame_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/build");
    for entries in [1usize, 8, 16, 64] {
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| b.iter(|| black_box(build_frame(entries, 64))),
        );
    }
    group.finish();
}

fn bench_frame_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/parse");
    for entries in [1usize, 8, 16, 64] {
        let frame = build_frame(entries, 64);
        group.throughput(Throughput::Elements(entries as u64));
        group.bench_with_input(BenchmarkId::from_parameter(entries), &frame, |b, frame| {
            b.iter(|| parse_frame(black_box(frame)).expect("valid frame"))
        });
    }
    group.finish();
}

fn bench_baseline_codec(c: &mut Criterion) {
    use baselines::codec::{decode, Msg};
    let payload = vec![7u8; 64];
    let wire = Msg::Eager {
        tag: Tag(3),
        seq: SeqNo(5),
        payload: &payload,
    }
    .encode();
    c.bench_function("baseline/encode", |b| {
        b.iter(|| {
            black_box(
                Msg::Eager {
                    tag: Tag(3),
                    seq: SeqNo(5),
                    payload: black_box(&payload),
                }
                .encode(),
            )
        })
    });
    c.bench_function("baseline/decode", |b| {
        b.iter(|| decode(black_box(&wire)).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_frame_build,
    bench_frame_parse,
    bench_baseline_codec
);
criterion_main!(benches);
