/root/repo/target/debug/examples/tcp_pingpong-4e0d72ea71f8ef54.d: examples/tcp_pingpong.rs

/root/repo/target/debug/examples/tcp_pingpong-4e0d72ea71f8ef54: examples/tcp_pingpong.rs

examples/tcp_pingpong.rs:
