//! Real-transport example: the engine over genuine TCP sockets (the
//! paper's TCP/Ethernet port, §4), two endpoints on two threads.
//!
//! No simulation here — real sockets, real time, the same engine code.
//!
//! Run: `cargo run --example tcp_pingpong`

use newmadeleine::core::prelude::*;
use newmadeleine::net::{NullMeter, TcpDriver};
use newmadeleine::sim::NodeId;
use std::time::Instant;

const ROUNDS: usize = 200;
const SIZE: usize = 1024;

fn engine_over(driver: TcpDriver) -> NmadEngine {
    NmadEngine::new(
        vec![Box::new(driver)],
        Box::new(NullMeter),
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

fn main() {
    let (a, b) = TcpDriver::pair().expect("loopback pair");
    let mut ping = engine_over(a);

    let echo_thread = std::thread::spawn(move || {
        let mut pong = engine_over(b);
        for _ in 0..ROUNDS {
            let r = pong.post_recv(NodeId(0), Tag(0), SIZE);
            let data = pong.wait_recv(r).data;
            let s = pong.isend(NodeId(0), Tag(0), data);
            pong.wait_send(s);
        }
    });

    let payload = vec![0xABu8; SIZE];
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        let r = ping.post_recv(NodeId(1), Tag(0), SIZE);
        let s = ping.isend(NodeId(1), Tag(0), payload.clone());
        ping.wait_send(s);
        let back = ping.wait_recv(r);
        assert_eq!(back.data.len(), SIZE, "round {round}");
    }
    let elapsed = t0.elapsed();
    echo_thread.join().expect("echo thread");

    let rtt_us = elapsed.as_secs_f64() * 1e6 / ROUNDS as f64;
    println!("{ROUNDS} rounds of {SIZE}-byte ping-pong over loopback TCP");
    println!(
        "  mean RTT: {rtt_us:.1} us  (one-way ≈ {:.1} us)",
        rtt_us / 2.0
    );
    println!("  engine frames sent: {}", ping.stats().frames_sent);
}
