/root/repo/target/debug/deps/bench-7b5cfbda34a546f5.d: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libbench-7b5cfbda34a546f5.rmeta: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
