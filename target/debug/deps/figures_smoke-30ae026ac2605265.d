/root/repo/target/debug/deps/figures_smoke-30ae026ac2605265.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-30ae026ac2605265: tests/figures_smoke.rs

tests/figures_smoke.rs:
