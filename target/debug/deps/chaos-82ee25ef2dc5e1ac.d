/root/repo/target/debug/deps/chaos-82ee25ef2dc5e1ac.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-82ee25ef2dc5e1ac.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
