//! Application programming interfaces (§3.4).
//!
//! The primary interface mirrors the historical MADELEINE one: a message
//! is built *incrementally* out of several pieces of data located
//! anywhere in user space, between a begin and an end call. Each packed
//! piece becomes one engine segment, which is what gives the scheduler
//! its freedom: pieces may be aggregated with pieces of other messages,
//! reordered, or switched to the rendezvous protocol independently.
//!
//! ```
//! # use nmad_core::prelude::*;
//! # use nmad_sim::{nic, shared_world, SimConfig, NodeId, RailId};
//! # use nmad_net::sim::SimDriver;
//! # let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
//! # let d0 = SimDriver::new(world.clone(), NodeId(0), RailId(0));
//! # let m0 = Box::new(d0.meter());
//! # let mut engine = NmadEngine::new(vec![Box::new(d0)], m0, Box::new(StratAggreg), EngineCosts::zero());
//! let req = engine
//!     .message_to(NodeId(1), Tag(7))
//!     .pack(&b"header"[..])
//!     .pack(&b"body"[..])
//!     .finish();
//! ```
//!
//! A second, MPI-flavoured interface ([`NmadEngine::isend`] /
//! [`NmadEngine::post_recv`]) maps one request to one segment; MAD-MPI
//! builds on it.

use bytes::Bytes;

use crate::engine::NmadEngine;
use crate::matching::RecvDone;
use crate::segment::{Priority, RecvReqId, SendReqId, Tag};
use nmad_sim::NodeId;

/// Incremental builder for an outgoing message (Madeleine's
/// `begin_packing` … `pack` … `end_packing`).
pub struct SendMessage<'e> {
    engine: &'e mut NmadEngine,
    dst: NodeId,
    tag: Tag,
    parts: Vec<(Bytes, Priority)>,
    rail_hint: Option<usize>,
}

impl<'e> SendMessage<'e> {
    /// Appends one piece of data as a normal-priority segment.
    pub fn pack(self, data: impl Into<Bytes>) -> Self {
        self.pack_priority(data, Priority::Normal)
    }

    /// Appends one piece with an explicit scheduling priority (a
    /// high-priority piece — e.g. an RPC service id — may be delivered
    /// earlier by reordering strategies).
    pub fn pack_priority(mut self, data: impl Into<Bytes>, priority: Priority) -> Self {
        self.parts.push((data.into(), priority));
        self
    }

    /// Appends one latency-critical piece (lane 0): tail-aware
    /// strategies serve it before every other lane and cap competing
    /// aggregates on its behalf.
    pub fn pack_urgent(self, data: impl Into<Bytes>) -> Self {
        self.pack_priority(data, Priority::Urgent)
    }

    /// Appends one background bulk piece (lane 3): it yields the rail
    /// to every other lane and relies on aging for starvation freedom.
    pub fn pack_bulk(self, data: impl Into<Bytes>) -> Self {
        self.pack_priority(data, Priority::Bulk)
    }

    /// Pins the whole message onto one NIC's dedicated list instead of
    /// the load-balanced common list (§3.3).
    pub fn via_rail(mut self, nic_index: usize) -> Self {
        self.rail_hint = Some(nic_index);
        self
    }

    /// Ends the message: every packed piece is handed to the collect
    /// layer. The returned request completes when all pieces have left
    /// the host.
    pub fn finish(self) -> SendReqId {
        self.engine
            .submit_send_parts(self.dst, self.tag, self.parts, self.rail_hint)
    }
}

/// Incremental builder for an incoming message: one `unpack` per piece
/// the sender packed, in the same order.
pub struct RecvMessage<'e> {
    engine: &'e mut NmadEngine,
    src: NodeId,
    tag: Tag,
    reqs: Vec<RecvReqId>,
}

impl<'e> RecvMessage<'e> {
    /// Posts the receive of the next piece (at most `max` bytes).
    pub fn unpack(mut self, max: usize) -> Self {
        let req = self.engine.post_recv(self.src, self.tag, max);
        self.reqs.push(req);
        self
    }

    /// Ends the message, returning a handle over all pieces.
    pub fn finish(self) -> RecvHandle {
        RecvHandle { reqs: self.reqs }
    }
}

/// Completion handle over the pieces of one incoming message.
#[derive(Debug, Clone)]
pub struct RecvHandle {
    reqs: Vec<RecvReqId>,
}

impl RecvHandle {
    /// The per-piece receive requests, in pack order.
    pub fn requests(&self) -> &[RecvReqId] {
        &self.reqs
    }

    /// True once every piece has arrived.
    pub fn is_done(&self, engine: &NmadEngine) -> bool {
        self.reqs.iter().all(|&r| engine.is_recv_done(r))
    }

    /// Takes every piece's payload, in pack order. Call only after
    /// [`is_done`](Self::is_done).
    pub fn take_all(&self, engine: &mut NmadEngine) -> Vec<RecvDone> {
        self.reqs
            .iter()
            .map(|&r| {
                engine
                    .try_take_recv(r)
                    .expect("take_all called before completion")
            })
            .collect()
    }
}

impl NmadEngine {
    /// Begins building an outgoing message towards `dst` on flow `tag`.
    pub fn message_to(&mut self, dst: NodeId, tag: Tag) -> SendMessage<'_> {
        SendMessage {
            engine: self,
            dst,
            tag,
            parts: Vec::new(),
            rail_hint: None,
        }
    }

    /// Begins consuming an incoming message from `src` on flow `tag`.
    pub fn message_from(&mut self, src: NodeId, tag: Tag) -> RecvMessage<'_> {
        RecvMessage {
            engine: self,
            src,
            tag,
            reqs: Vec::new(),
        }
    }

    /// Spins this engine's progress loop until the send completes.
    ///
    /// Only meaningful on *real* transports (TCP, mem): on simulated
    /// transports time does not advance inside one engine, use the
    /// co-simulation runner instead.
    pub fn wait_send(&mut self, req: SendReqId) {
        while !self.is_send_done(req) {
            if !self.progress() {
                std::thread::yield_now();
            }
        }
    }

    /// Spins this engine's progress loop until the receive completes
    /// and returns its payload. Same transport caveat as
    /// [`wait_send`](Self::wait_send).
    pub fn wait_recv(&mut self, req: RecvReqId) -> RecvDone {
        loop {
            if let Some(done) = self.try_take_recv(req) {
                return done;
            }
            if !self.progress() {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineCosts;
    use crate::strategy::StratAggreg;
    use nmad_net::mem::mem_fabric;

    fn mem_pair() -> (NmadEngine, NmadEngine) {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().expect("two endpoints");
        let a = fabric.pop().expect("two endpoints");
        let mk = |d: nmad_net::MemDriver| {
            NmadEngine::new(
                vec![Box::new(d)],
                Box::new(nmad_net::NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            )
        };
        (mk(a), mk(b))
    }

    #[test]
    fn pack_unpack_roundtrip_over_mem_driver() {
        let (mut a, mut b) = mem_pair();
        let req = a
            .message_to(NodeId(1), Tag(1))
            .pack(&b"alpha"[..])
            .pack(&b"beta"[..])
            .pack(&b"gamma"[..])
            .finish();
        let handle = b
            .message_from(NodeId(0), Tag(1))
            .unpack(16)
            .unpack(16)
            .unpack(16)
            .finish();
        a.wait_send(req);
        while !handle.is_done(&b) {
            b.progress();
        }
        let pieces = handle.take_all(&mut b);
        let texts: Vec<&[u8]> = pieces.iter().map(|p| p.data.as_slice()).collect();
        assert_eq!(texts, vec![&b"alpha"[..], &b"beta"[..], &b"gamma"[..]]);
    }

    #[test]
    fn priority_pack_is_accepted() {
        let (mut a, mut b) = mem_pair();
        let req = a
            .message_to(NodeId(1), Tag(2))
            .pack_priority(&b"service-id"[..], Priority::High)
            .pack(&b"args"[..])
            .finish();
        let handle = b
            .message_from(NodeId(0), Tag(2))
            .unpack(32)
            .unpack(32)
            .finish();
        a.wait_send(req);
        while !handle.is_done(&b) {
            b.progress();
        }
        assert_eq!(handle.take_all(&mut b)[0].data, b"service-id");
    }

    #[test]
    fn wait_recv_returns_payload() {
        let (mut a, mut b) = mem_pair();
        let s = a.isend(NodeId(1), Tag(0), &b"blocking"[..]);
        let r = b.post_recv(NodeId(0), Tag(0), 32);
        a.wait_send(s);
        assert_eq!(b.wait_recv(r).data, b"blocking");
    }

    #[test]
    fn empty_message_completes_immediately() {
        let (mut a, _b) = mem_pair();
        let req = a.message_to(NodeId(1), Tag(0)).finish();
        assert!(a.is_send_done(req));
    }
}
