/root/repo/target/debug/deps/report-a5c09b1921a37cf7.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-a5c09b1921a37cf7: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
