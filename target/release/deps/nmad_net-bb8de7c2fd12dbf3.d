/root/repo/target/release/deps/nmad_net-bb8de7c2fd12dbf3.d: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs

/root/repo/target/release/deps/libnmad_net-bb8de7c2fd12dbf3.rlib: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs

/root/repo/target/release/deps/libnmad_net-bb8de7c2fd12dbf3.rmeta: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs

crates/nmad-net/src/lib.rs:
crates/nmad-net/src/backoff.rs:
crates/nmad-net/src/driver.rs:
crates/nmad-net/src/fault.rs:
crates/nmad-net/src/lossy.rs:
crates/nmad-net/src/mem.rs:
crates/nmad-net/src/reliable.rs:
crates/nmad-net/src/selective.rs:
crates/nmad-net/src/sim.rs:
crates/nmad-net/src/tcp.rs:
