/root/repo/target/debug/deps/baselines-a6178869736bfadd.d: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-a6178869736bfadd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/codec.rs:
crates/baselines/src/direct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
