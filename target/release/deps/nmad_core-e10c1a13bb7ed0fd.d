/root/repo/target/release/deps/nmad_core-e10c1a13bb7ed0fd.d: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

/root/repo/target/release/deps/libnmad_core-e10c1a13bb7ed0fd.rlib: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

/root/repo/target/release/deps/libnmad_core-e10c1a13bb7ed0fd.rmeta: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

crates/nmad-core/src/lib.rs:
crates/nmad-core/src/api.rs:
crates/nmad-core/src/engine.rs:
crates/nmad-core/src/matching.rs:
crates/nmad-core/src/metrics.rs:
crates/nmad-core/src/segment.rs:
crates/nmad-core/src/strategy/mod.rs:
crates/nmad-core/src/strategy/aggreg.rs:
crates/nmad-core/src/strategy/default.rs:
crates/nmad-core/src/strategy/dynamic.rs:
crates/nmad-core/src/strategy/multirail.rs:
crates/nmad-core/src/strategy/reorder.rs:
crates/nmad-core/src/window.rs:
crates/nmad-core/src/wire.rs:
