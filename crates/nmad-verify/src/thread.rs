//! Model-aware thread spawn/join.
//!
//! On a model thread, `spawn` registers a new *model* thread with the
//! current execution: its operations become part of the explored
//! schedule, and `join` establishes the usual happens-before edge from
//! the child's last operation. Outside a model execution these are
//! plain `std::thread` wrappers.

use crate::exec;
use std::sync::Arc;

enum Repr<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<exec::Exec>,
        tid: usize,
        slot: Arc<std::sync::Mutex<Option<T>>>,
    },
}

pub struct JoinHandle<T>(Repr<T>);

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::current() {
        Some((exec, _tid)) => {
            let slot = Arc::new(std::sync::Mutex::new(None));
            let out = Arc::clone(&slot);
            let tid = exec.spawn_model_thread(
                move || {
                    let v = f();
                    *out.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                },
                false,
            );
            JoinHandle(Repr::Model { exec, tid, slot })
        }
        None => JoinHandle(Repr::Real(std::thread::spawn(f))),
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its result. A panic in the
    /// joined thread panics here too (in the model it has already been
    /// recorded as the execution's failure).
    pub fn join(self) -> T {
        match self.0 {
            Repr::Real(h) => h.join().expect("joined thread panicked"),
            Repr::Model { exec, tid, slot } => {
                exec.join_thread(tid);
                slot.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("joined model thread produced no result")
            }
        }
    }
}

/// Cooperative yield: on a model thread this hands control to another
/// runnable thread (same fairness rule as [`crate::sync::spin_loop`]).
pub fn yield_now() {
    match exec::current() {
        Some((exec, _)) => exec.spin_loop(),
        None => std::thread::yield_now(),
    }
}
