//! MPI derived datatypes (§3.4, §5.3).
//!
//! A derived datatype describes noncontiguous memory: a list of (offset,
//! length) blocks within an *extent*. The paper's fig. 4 experiment uses
//! an indexed type alternating one small block (64 B) and one large
//! block (256 KB).
//!
//! How a datatype is transmitted is the point of the experiment:
//!
//! * the baselines **pack** every block into one contiguous buffer
//!   (one memcpy of the full payload), send it as a single message, and
//!   **unpack** on the receiver (a second full memcpy);
//! * MAD-MPI generates *one engine segment per block*, letting the
//!   scheduler aggregate the small blocks (with reordering) alongside
//!   the large blocks' rendezvous handshakes, and land the large blocks
//!   zero-copy at their final offsets.

use std::fmt;

/// A committed datatype: resolved block layout within one extent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datatype {
    blocks: Vec<(usize, usize)>,
    extent: usize,
}

/// Construction errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DatatypeError {
    /// Blocks must lie inside the extent.
    BlockOutOfExtent {
        /// Offending block's offset.
        offset: usize,
        /// Offending block's length.
        len: usize,
        /// The datatype's declared extent.
        extent: usize,
    },
    /// Blocks must be sorted and non-overlapping.
    OverlappingBlocks {
        /// Index of the offending block.
        at: usize,
    },
}

impl fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatatypeError::BlockOutOfExtent {
                offset,
                len,
                extent,
            } => write!(
                f,
                "block [{offset}, {offset}+{len}) exceeds extent {extent}"
            ),
            DatatypeError::OverlappingBlocks { at } => {
                write!(f, "block {at} overlaps or precedes its predecessor")
            }
        }
    }
}

impl std::error::Error for DatatypeError {}

impl Datatype {
    /// A contiguous run of `len` bytes (the trivial datatype).
    pub fn contiguous(len: usize) -> Self {
        Datatype {
            blocks: if len == 0 { vec![] } else { vec![(0, len)] },
            extent: len,
        }
    }

    /// MPI_Type_vector in bytes: `count` blocks of `blocklen` bytes,
    /// starting `stride` bytes apart (`stride ≥ blocklen`).
    pub fn vector(count: usize, blocklen: usize, stride: usize) -> Result<Self, DatatypeError> {
        assert!(stride >= blocklen, "stride smaller than block length");
        let blocks: Vec<_> = (0..count).map(|i| (i * stride, blocklen)).collect();
        let extent = if count == 0 {
            0
        } else {
            (count - 1) * stride + blocklen
        };
        Self::indexed_with_extent(blocks, extent)
    }

    /// MPI_Type_indexed in bytes: explicit (offset, len) blocks, sorted
    /// by offset and non-overlapping.
    pub fn indexed(blocks: Vec<(usize, usize)>) -> Result<Self, DatatypeError> {
        let extent = blocks.iter().map(|&(o, l)| o + l).max().unwrap_or(0);
        Self::indexed_with_extent(blocks, extent)
    }

    /// Indexed type with an explicit (possibly padded) extent.
    pub fn indexed_with_extent(
        blocks: Vec<(usize, usize)>,
        extent: usize,
    ) -> Result<Self, DatatypeError> {
        let mut high = 0usize;
        for (i, &(offset, len)) in blocks.iter().enumerate() {
            if offset + len > extent {
                return Err(DatatypeError::BlockOutOfExtent {
                    offset,
                    len,
                    extent,
                });
            }
            if offset < high {
                return Err(DatatypeError::OverlappingBlocks { at: i });
            }
            high = offset + len;
        }
        Ok(Datatype { blocks, extent })
    }

    /// `count` copies of `child` placed back to back (MPI_Type_contiguous
    /// over a derived type).
    pub fn contiguous_of(count: usize, child: &Datatype) -> Self {
        Self::hvector(count, child.extent(), child).expect("back-to-back copies cannot overlap")
    }

    /// `count` copies of `child` placed `stride` bytes apart
    /// (MPI_Type_create_hvector over a derived type; `stride ≥
    /// child.extent()`).
    pub fn hvector(count: usize, stride: usize, child: &Datatype) -> Result<Self, DatatypeError> {
        let mut blocks = Vec::with_capacity(count * child.block_count());
        for i in 0..count {
            let base = i * stride;
            for &(offset, len) in child.blocks() {
                blocks.push((base + offset, len));
            }
        }
        let extent = if count == 0 {
            0
        } else {
            (count - 1) * stride + child.extent()
        };
        Self::indexed_with_extent(Self::merge_adjacent(blocks), extent)
    }

    /// A structure: each child datatype placed at its field offset
    /// (MPI_Type_create_struct). Fields must be sorted by offset and
    /// non-overlapping.
    pub fn struct_of(fields: &[(usize, Datatype)]) -> Result<Self, DatatypeError> {
        let mut blocks = Vec::new();
        let mut extent = 0usize;
        for (field_offset, child) in fields {
            for &(offset, len) in child.blocks() {
                blocks.push((field_offset + offset, len));
            }
            extent = extent.max(field_offset + child.extent());
        }
        Self::indexed_with_extent(Self::merge_adjacent(blocks), extent)
    }

    /// Coalesces blocks that touch (`a.end == b.start`) so nested
    /// constructions do not fragment contiguous memory into many tiny
    /// wire segments.
    fn merge_adjacent(blocks: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(blocks.len());
        for (offset, len) in blocks {
            if len == 0 {
                continue;
            }
            if let Some(last) = out.last_mut() {
                if last.0 + last.1 == offset {
                    last.1 += len;
                    continue;
                }
            }
            out.push((offset, len));
        }
        out
    }

    /// The fig. 4 workload: `pairs` repetitions of one `small`-byte
    /// block followed by one `large`-byte block, tightly packed.
    pub fn alternating(small: usize, large: usize, pairs: usize) -> Self {
        let mut blocks = Vec::with_capacity(2 * pairs);
        let mut at = 0;
        for _ in 0..pairs {
            blocks.push((at, small));
            at += small;
            blocks.push((at, large));
            at += large;
        }
        Self::indexed(blocks).expect("constructed blocks are sorted and disjoint")
    }

    /// Resolved (offset, len) block list.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }

    /// Bytes of actual payload (sum of block lengths).
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(|&(_, l)| l).sum()
    }

    /// Span of the described memory region.
    pub fn extent(&self) -> usize {
        self.extent
    }

    /// Block count.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Gathers the blocks of `src` (an extent-sized region) into one
    /// contiguous buffer — the baselines' send-side behaviour.
    pub fn pack(&self, src: &[u8]) -> Vec<u8> {
        assert!(
            src.len() >= self.extent,
            "source region smaller than the datatype extent"
        );
        let mut out = Vec::with_capacity(self.total_bytes());
        for &(offset, len) in &self.blocks {
            out.extend_from_slice(&src[offset..offset + len]);
        }
        out
    }

    /// Scatters a packed buffer back into an extent-sized region (gaps
    /// zeroed) — the baselines' receive-side behaviour.
    pub fn unpack(&self, packed: &[u8]) -> Vec<u8> {
        assert_eq!(
            packed.len(),
            self.total_bytes(),
            "packed buffer length mismatch"
        );
        let mut out = vec![0u8; self.extent];
        let mut at = 0;
        for &(offset, len) in &self.blocks {
            out[offset..offset + len].copy_from_slice(&packed[at..at + len]);
            at += len;
        }
        out
    }

    /// Scatters per-block payloads into an extent-sized region — the
    /// MAD-MPI receive-side assembly (each block arrived as its own
    /// segment).
    pub fn scatter_blocks(&self, parts: &[Vec<u8>]) -> Vec<u8> {
        assert_eq!(parts.len(), self.blocks.len(), "block count mismatch");
        let mut out = vec![0u8; self.extent];
        for (&(offset, len), part) in self.blocks.iter().zip(parts) {
            assert_eq!(part.len(), len, "block length mismatch at offset {offset}");
            out[offset..offset + len].copy_from_slice(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_one_block() {
        let t = Datatype::contiguous(100);
        assert_eq!(t.blocks(), &[(0, 100)]);
        assert_eq!(t.total_bytes(), 100);
        assert_eq!(t.extent(), 100);
        assert_eq!(Datatype::contiguous(0).block_count(), 0);
    }

    #[test]
    fn vector_layout_matches_mpi_semantics() {
        let t = Datatype::vector(3, 4, 10).unwrap();
        assert_eq!(t.blocks(), &[(0, 4), (10, 4), (20, 4)]);
        assert_eq!(t.extent(), 24);
        assert_eq!(t.total_bytes(), 12);
    }

    #[test]
    fn pack_unpack_roundtrip_preserves_blocks_and_zeroes_gaps() {
        let t = Datatype::vector(3, 2, 5).unwrap();
        let src: Vec<u8> = (0..t.extent() as u8).collect();
        let packed = t.pack(&src);
        assert_eq!(packed, vec![0, 1, 5, 6, 10, 11]);
        let back = t.unpack(&packed);
        for &(offset, len) in t.blocks() {
            assert_eq!(&back[offset..offset + len], &src[offset..offset + len]);
        }
        // Gap bytes are zeroed, not copied.
        assert_eq!(back[2], 0);
        assert_eq!(back[3], 0);
    }

    #[test]
    fn alternating_matches_the_fig4_workload() {
        let t = Datatype::alternating(64, 256 * 1024, 4);
        assert_eq!(t.block_count(), 8);
        assert_eq!(t.total_bytes(), 4 * (64 + 256 * 1024));
        assert_eq!(t.blocks()[0], (0, 64));
        assert_eq!(t.blocks()[1], (64, 256 * 1024));
    }

    #[test]
    fn scatter_blocks_reassembles_typed_receive() {
        let t = Datatype::indexed(vec![(0, 2), (5, 3)]).unwrap();
        let out = t.scatter_blocks(&[vec![1, 2], vec![7, 8, 9]]);
        assert_eq!(out, vec![1, 2, 0, 0, 0, 7, 8, 9]);
    }

    #[test]
    fn hvector_of_indexed_flattens_and_nests() {
        // child: two blocks [0,2) and [5,8) in an extent of 10.
        let child = Datatype::indexed_with_extent(vec![(0, 2), (5, 3)], 10).unwrap();
        let t = Datatype::hvector(3, 16, &child).unwrap();
        assert_eq!(
            t.blocks(),
            &[(0, 2), (5, 3), (16, 2), (21, 3), (32, 2), (37, 3)]
        );
        assert_eq!(t.extent(), 2 * 16 + 10);
        assert_eq!(t.total_bytes(), 15);
    }

    #[test]
    fn contiguous_of_merges_touching_blocks() {
        let child = Datatype::contiguous(8);
        let t = Datatype::contiguous_of(4, &child);
        // Four back-to-back 8-byte runs merge into one 32-byte block.
        assert_eq!(t.blocks(), &[(0, 32)]);
        assert_eq!(t.extent(), 32);
    }

    #[test]
    fn struct_of_places_fields_at_offsets() {
        let header = Datatype::contiguous(4);
        let body = Datatype::vector(2, 3, 8).unwrap();
        let t = Datatype::struct_of(&[(0, header), (8, body)]).unwrap();
        assert_eq!(t.blocks(), &[(0, 4), (8, 3), (16, 3)]);
        assert_eq!(t.extent(), 8 + 11);
    }

    #[test]
    fn struct_of_rejects_overlapping_fields() {
        let a = Datatype::contiguous(8);
        let b = Datatype::contiguous(8);
        assert!(matches!(
            Datatype::struct_of(&[(0, a), (4, b)]),
            Err(DatatypeError::OverlappingBlocks { .. })
        ));
    }

    #[test]
    fn nested_pack_unpack_roundtrips() {
        // struct { u32 tag; padding; [block; 3] } repeated 5 times.
        let element = Datatype::struct_of(&[
            (0, Datatype::contiguous(4)),
            (8, Datatype::vector(3, 2, 4).unwrap()),
        ])
        .unwrap();
        let t = Datatype::hvector(5, 24, &element).unwrap();
        let src: Vec<u8> = (0..t.extent()).map(|i| (i % 251) as u8).collect();
        let packed = t.pack(&src);
        assert_eq!(packed.len(), t.total_bytes());
        let back = t.unpack(&packed);
        for &(offset, len) in t.blocks() {
            assert_eq!(&back[offset..offset + len], &src[offset..offset + len]);
        }
    }

    #[test]
    fn hvector_zero_count_is_empty() {
        let child = Datatype::contiguous(8);
        let t = Datatype::hvector(0, 16, &child).unwrap();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.extent(), 0);
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        assert_eq!(
            Datatype::indexed_with_extent(vec![(0, 10)], 5).unwrap_err(),
            DatatypeError::BlockOutOfExtent {
                offset: 0,
                len: 10,
                extent: 5
            }
        );
        assert_eq!(
            Datatype::indexed(vec![(0, 5), (3, 2)]).unwrap_err(),
            DatatypeError::OverlappingBlocks { at: 1 }
        );
    }

    #[test]
    fn empty_datatype_is_consistent() {
        let t = Datatype::indexed(vec![]).unwrap();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.extent(), 0);
        assert_eq!(t.pack(&[]), Vec::<u8>::new());
        assert_eq!(t.unpack(&[]), Vec::<u8>::new());
    }
}
