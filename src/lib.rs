//! # newmadeleine — umbrella crate
//!
//! Rust reproduction of *"NewMadeleine: a Fast Communication Scheduling
//! Engine for High Performance Networks"* (Aumage, Brunet, Furmento,
//! Namyst — INRIA RR-6085 / IPPS 2007).
//!
//! This facade re-exports the whole public API:
//!
//! * [`sim`] — discrete-event network substrate (virtual clock,
//!   calibrated NIC models for MX/Myri-10G, Elan/Quadrics, GM, SISCI);
//! * [`net`] — driver abstraction + simulated, TCP and in-process
//!   memory transports;
//! * [`core`] — the engine: optimization window, pluggable strategies
//!   (aggregation, reordering, multirail), eager/rendezvous transfer;
//! * [`mpi`] — MAD-MPI: the MPI subset (communicators, nonblocking
//!   point-to-point, derived datatypes, collectives) plus the MPICH-
//!   and OpenMPI-like comparator backends;
//! * [`baseline`] — the comparator engines themselves.
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every figure of the paper.

#![forbid(unsafe_code)]

pub use baselines as baseline;
pub use mad_mpi as mpi;
pub use nmad_core as core;
pub use nmad_net as net;
pub use nmad_sim as sim;

/// Convenience prelude for applications.
pub mod prelude {
    pub use mad_mpi::{
        mem_cluster, pump_cluster, sim_cluster, sim_cluster_multirail, Comm, Datatype, EngineKind,
        MpiProc, Request, StrategyKind,
    };
    pub use nmad_core::prelude::*;
    pub use nmad_sim::{nic, NicModel, NodeId, RailId, SimConfig, SimDuration, SimTime};
}
