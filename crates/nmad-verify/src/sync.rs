//! Model-aware synchronisation primitives.
//!
//! These types have the same shape as the `std::sync::atomic` /
//! `Mutex` / `Condvar` APIs the engine uses, with one twist: when they
//! are constructed *on a model thread* (inside a
//! [`Checker::check`](crate::Checker::check) closure) they register
//! with the model runtime, and every operation becomes a scheduling +
//! memory-model decision point. Constructed anywhere else they are
//! plain wrappers over the std primitives with zero behavioural
//! change — so a binary compiled with the model feature still runs all
//! of its ordinary tests normally.
//!
//! Consequence worth repeating in every model test: **create the state
//! you want checked inside the closure.** A primitive created outside
//! is invisible to the checker (it stays a real atomic/lock), and a
//! real lock contended between model threads can hang the execution.
//!
//! The model `Mutex<T>` keeps its data in a `std::sync::Mutex` (always
//! uncontended, because only one model thread runs at a time) and the
//! *contention* in the model runtime — which keeps this crate free of
//! `unsafe`.

use crate::exec::{self, Exec};
use std::sync::Arc;
use std::time::Duration;

pub use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Atomics: one shared u64 representation.
// ---------------------------------------------------------------------------

enum AtomicRepr {
    Real(std::sync::atomic::AtomicU64),
    Model { exec: Arc<Exec>, loc: usize },
}

impl AtomicRepr {
    fn new(init: u64) -> Self {
        match exec::current() {
            Some((exec, _tid)) => {
                let loc = exec.new_location(init);
                AtomicRepr::Model { exec, loc }
            }
            None => AtomicRepr::Real(std::sync::atomic::AtomicU64::new(init)),
        }
    }

    fn load(&self, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.load(ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_load(*loc, ord),
        }
    }

    fn store(&self, val: u64, ord: Ordering) {
        match self {
            AtomicRepr::Real(a) => a.store(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_store(*loc, val, ord),
        }
    }

    fn swap(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.swap(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |_| val),
        }
    }

    fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.fetch_add(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |x| x.wrapping_add(val)),
        }
    }

    fn fetch_sub(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.fetch_sub(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |x| x.wrapping_sub(val)),
        }
    }

    fn fetch_or(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.fetch_or(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |x| x | val),
        }
    }

    fn fetch_and(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.fetch_and(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |x| x & val),
        }
    }

    fn fetch_max(&self, val: u64, ord: Ordering) -> u64 {
        match self {
            AtomicRepr::Real(a) => a.fetch_max(val, ord),
            AtomicRepr::Model { exec, loc } => exec.atomic_rmw(*loc, ord, |x| x.max(val)),
        }
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match self {
            AtomicRepr::Real(a) => a.compare_exchange(current, new, success, failure),
            AtomicRepr::Model { exec, loc } => {
                exec.atomic_cas(*loc, current, new, success, failure)
            }
        }
    }
}

macro_rules! atomic_int {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        pub struct $name(AtomicRepr);

        impl $name {
            pub fn new(v: $ty) -> Self {
                $name(AtomicRepr::new(v as u64))
            }
            pub fn load(&self, ord: Ordering) -> $ty {
                self.0.load(ord) as $ty
            }
            pub fn store(&self, v: $ty, ord: Ordering) {
                self.0.store(v as u64, ord)
            }
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.swap(v as u64, ord) as $ty
            }
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.fetch_add(v as u64, ord) as $ty
            }
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.fetch_sub(v as u64, ord) as $ty
            }
            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.fetch_or(v as u64, ord) as $ty
            }
            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.fetch_and(v as u64, ord) as $ty
            }
            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.fetch_max(v as u64, ord) as $ty
            }
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
            /// The model has no spurious CAS failures, so this is the
            /// strong compare-exchange; algorithms must therefore not
            /// *rely* on spurious failure (none do).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match &self.0 {
                    AtomicRepr::Real(a) => write!(f, "{}({:?})", stringify!($name), a),
                    AtomicRepr::Model { loc, .. } => {
                        write!(f, "{}(model loc {})", stringify!($name), loc)
                    }
                }
            }
        }
    };
}

atomic_int!(
    AtomicU64,
    u64,
    "Model-aware `AtomicU64` (see the module docs)."
);
atomic_int!(
    AtomicUsize,
    usize,
    "Model-aware `AtomicUsize` (see the module docs)."
);
atomic_int!(
    AtomicU32,
    u32,
    "Model-aware `AtomicU32` (see the module docs)."
);

/// Model-aware `AtomicBool` (see the module docs).
pub struct AtomicBool(AtomicRepr);

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool(AtomicRepr::new(u64::from(v)))
    }
    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord) != 0
    }
    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(u64::from(v), ord)
    }
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.0.swap(u64::from(v), ord) != 0
    }
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.0
            .compare_exchange(u64::from(current), u64::from(new), success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            AtomicRepr::Real(a) => write!(f, "AtomicBool({:?})", a),
            AtomicRepr::Model { loc, .. } => write!(f, "AtomicBool(model loc {})", loc),
        }
    }
}

/// Model-aware memory fence.
pub fn fence(ord: Ordering) {
    match exec::current() {
        Some((exec, _)) => exec.fence(ord),
        None => std::sync::atomic::fence(ord),
    }
}

/// Busy-wait hint. On a model thread this is a fairness yield to some
/// other runnable thread (spin loops would otherwise run the spinner
/// to the step bound before the thread it polls ever executes); on a
/// real thread it is `std::hint::spin_loop`.
pub fn spin_loop() {
    match exec::current() {
        Some((exec, _)) => exec.spin_loop(),
        None => std::hint::spin_loop(),
    }
}

// ---------------------------------------------------------------------------
// Mutex & Condvar.
// ---------------------------------------------------------------------------

enum LockRepr {
    Real,
    Model { exec: Arc<Exec>, id: usize },
}

/// Model-aware, poison-free mutex with the `parking_lot` calling
/// convention (`lock()` returns the guard directly).
pub struct Mutex<T> {
    repr: LockRepr,
    data: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        let repr = match exec::current() {
            Some((exec, _)) => {
                let id = exec.mutex_new();
                LockRepr::Model { exec, id }
            }
            None => LockRepr::Real,
        };
        Mutex {
            repr,
            data: std::sync::Mutex::new(t),
        }
    }

    fn data_guard(&self) -> std::sync::MutexGuard<'_, T> {
        self.data.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let LockRepr::Model { exec, id } = &self.repr {
            exec.mutex_lock(*id);
        }
        MutexGuard {
            lock: self,
            inner: Some(self.data_guard()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match &self.repr {
            LockRepr::Model { exec, id } => {
                if !exec.mutex_try_lock(*id) {
                    return None;
                }
                Some(MutexGuard {
                    lock: self,
                    inner: Some(self.data_guard()),
                })
            }
            LockRepr::Real => match self.data.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex {{ data: {:?} }}", self.data)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first: the model unlock wakes other
        // model threads, which will want the data lock next.
        self.inner.take();
        if let LockRepr::Model { exec, id } = &self.lock.repr {
            exec.mutex_unlock(*id);
        }
    }
}

impl<'a, T> MutexGuard<'a, T> {
    /// Dismantles the guard *without* releasing the model lock —
    /// condvar wait needs the pieces.
    fn into_parts(mut self) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, T>) {
        let inner = self.inner.take().expect("guard still holds the lock");
        let lock = self.lock;
        std::mem::forget(self);
        (lock, inner)
    }
}

enum CvRepr {
    Real(std::sync::Condvar),
    Model { exec: Arc<Exec>, id: usize },
}

/// Model-aware condition variable.
///
/// In the model, a `wait_timeout` "timeout" fires only as a last
/// resort — when *no* model thread can otherwise make progress. This
/// keeps missed-wakeup bugs observable (the execution does not
/// deadlock, it times out and the [`CheckStats::timeouts_fired`]
/// counter records it) without exploding the schedule space with
/// spurious early wakeups.
///
/// [`CheckStats::timeouts_fired`]: crate::CheckStats::timeouts_fired
pub struct Condvar(CvRepr);

impl Condvar {
    pub fn new() -> Self {
        match exec::current() {
            Some((exec, _)) => {
                let id = exec.condvar_new();
                Condvar(CvRepr::Model { exec, id })
            }
            None => Condvar(CvRepr::Real(std::sync::Condvar::new())),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    /// Returns the reacquired guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        self.wait_inner(guard, Some(dur))
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, bool) {
        match (&self.0, &guard.lock.repr) {
            (CvRepr::Real(cv), LockRepr::Real) => {
                let (lock, std_guard) = guard.into_parts();
                let (std_guard, timed_out) = match dur {
                    Some(dur) => {
                        let (g, res) = cv
                            .wait_timeout(std_guard, dur)
                            .unwrap_or_else(|p| p.into_inner());
                        (g, res.timed_out())
                    }
                    None => (cv.wait(std_guard).unwrap_or_else(|p| p.into_inner()), false),
                };
                (
                    MutexGuard {
                        lock,
                        inner: Some(std_guard),
                    },
                    timed_out,
                )
            }
            (CvRepr::Model { exec, id }, LockRepr::Model { id: mid, .. }) => {
                let (lock, std_guard) = guard.into_parts();
                // Free the data lock before parking; the model lock is
                // released (and reacquired) by `condvar_wait`.
                drop(std_guard);
                let timed_out = exec.condvar_wait(*id, *mid, dur.is_some());
                (
                    MutexGuard {
                        lock,
                        inner: Some(lock.data_guard()),
                    },
                    timed_out,
                )
            }
            _ => panic!(
                "Condvar and Mutex were created in different contexts \
                 (one inside a model execution, one outside)"
            ),
        }
    }

    pub fn notify_one(&self) {
        match &self.0 {
            CvRepr::Real(cv) => cv.notify_one(),
            CvRepr::Model { exec, id } => exec.condvar_notify_one(*id),
        }
    }

    pub fn notify_all(&self) {
        match &self.0 {
            CvRepr::Real(cv) => cv.notify_all(),
            CvRepr::Model { exec, id } => exec.condvar_notify_all(*id),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            CvRepr::Real(_) => write!(f, "Condvar(real)"),
            CvRepr::Model { id, .. } => write!(f, "Condvar(model cv {})", id),
        }
    }
}
