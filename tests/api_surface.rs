//! Integration: remaining public-API surface — rail pinning, truncation
//! through the MPI layer, wakeup scheduling, TCP edge cases, timeline
//! rendering of real traffic.

use newmadeleine::core::prelude::*;
use newmadeleine::mpi::{pump_cluster, sim_cluster, EngineKind, StrategyKind};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{Driver, SimCpuMeter, TcpDriver};
use newmadeleine::sim::{
    nic, shared_world, timeline, NodeId, RailId, SharedWorld, SimConfig, SimDuration, SimTime,
};

fn multirail_engine(world: &SharedWorld, node: u32) -> NmadEngine {
    let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(world, NodeId(node))
        .into_iter()
        .map(|d| Box::new(d) as Box<dyn Driver>)
        .collect();
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        drivers,
        meter,
        Box::new(StratMultirail::default()),
        EngineCosts::zero(),
    )
}

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) {
    for _ in 0..1_000_000 {
        let moved = a.progress() | b.progress();
        if done(a, b) {
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

#[test]
fn via_rail_pins_traffic_to_the_dedicated_nic() {
    let world = shared_world(SimConfig::two_nodes_multirail(vec![
        nic::mx_myri10g(),
        nic::quadrics_qm500(),
    ]));
    let mut a = multirail_engine(&world, 0);
    let mut b = multirail_engine(&world, 1);

    // Pin everything onto rail 1 (Quadrics).
    let req = a
        .message_to(NodeId(1), Tag(0))
        .pack(vec![1u8; 4000])
        .pack(vec![2u8; 4000])
        .via_rail(1)
        .finish();
    let handle = b
        .message_from(NodeId(0), Tag(0))
        .unpack(4000)
        .unpack(4000)
        .finish();
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(req) && handle.is_done(b)
    });
    let stats = world.lock().stats().clone();
    assert_eq!(
        stats.per_rail_bytes[0], 0,
        "rail 0 must stay silent: {:?}",
        stats.per_rail_bytes
    );
    assert!(stats.per_rail_bytes[1] > 8000);
    let pieces = handle.take_all(&mut b);
    assert_eq!(pieces[0].data, vec![1u8; 4000]);
    assert_eq!(pieces[1].data, vec![2u8; 4000]);
}

#[test]
fn truncation_is_reported_at_the_engine_level() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mk = |n: u32| {
        let d = SimDriver::new(world.clone(), NodeId(n), RailId(0));
        let m = Box::new(d.meter());
        NmadEngine::new(
            vec![Box::new(d)],
            m,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        )
    };
    let (mut a, mut b) = (mk(0), mk(1));
    let s = a.isend(NodeId(1), Tag(0), vec![7u8; 100]);
    let r = b.post_recv(NodeId(0), Tag(0), 40);
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    let done = b.try_take_recv(r).expect("completed");
    assert!(done.truncated, "posted 40 B for a 100 B segment");
    assert_eq!(done.data, vec![7u8; 40]);
}

#[test]
fn schedule_wakeup_bounds_time_jumps() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    {
        let mut w = world.lock();
        w.post_send(NodeId(0), RailId(0), NodeId(1), vec![0u8; 1 << 20]);
        // Register an intermediate wakeup well before the delivery:
        // the clock must stop there instead of jumping straight to it.
        let wake = SimTime::from_ns(1_000);
        w.schedule_wakeup(wake);
        let mut stops = Vec::new();
        while let Some(t) = w.advance() {
            stops.push(t);
        }
        assert!(
            stops.contains(&wake),
            "advance sequence {stops:?} skipped the scheduled wakeup"
        );
        // Stale wakeups (≤ now) are dropped, not revisited.
        w.schedule_wakeup(SimTime::from_ns(500));
        assert!(w.advance().is_none());
    }
}

#[test]
fn cpu_charge_returns_completion_instant() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut w = world.lock();
    let d = SimDuration::from_us(7);
    let t = w.charge_cpu(NodeId(0), d);
    assert_eq!(t, SimTime::ZERO + d);
    // Zero charges are free and do not move the account.
    let t2 = w.charge_cpu(NodeId(0), SimDuration::ZERO);
    assert_eq!(t2, t);
}

#[test]
fn tcp_zero_length_frames_roundtrip() {
    let (mut a, mut b) = TcpDriver::pair().expect("pair");
    a.post_send(NodeId(1), &[]).expect("empty gather");
    a.post_send(NodeId(1), &[b""]).expect("empty slice");
    a.post_send(NodeId(1), &[b"end"]).expect("sentinel");
    let mut got = Vec::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while got.len() < 3 {
        assert!(std::time::Instant::now() < deadline, "timed out");
        if let Some(f) = b.poll_recv().expect("poll") {
            got.push(f.payload);
        }
    }
    assert_eq!(got, vec![Vec::<u8>::new(), Vec::new(), b"end".to_vec()]);
}

#[test]
fn tcp_send_to_self_is_rejected() {
    let (mut a, _b) = TcpDriver::pair().expect("pair");
    assert!(a.post_send(NodeId(0), &[b"self"]).is_err());
}

#[test]
fn timeline_summarizes_real_engine_traffic() {
    let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
    world.lock().enable_trace();
    let mk = |n: u32| {
        let d = SimDriver::new(world.clone(), NodeId(n), RailId(0));
        let m = Box::new(d.meter());
        NmadEngine::new(
            vec![Box::new(d)],
            m,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        )
    };
    let (mut a, mut b) = (mk(0), mk(1));
    let sends: Vec<_> = (0..4u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![0u8; 256]))
        .collect();
    let recvs: Vec<_> = (0..4u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 256))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    let trace = world.lock().take_trace();
    let summaries = timeline::summarize(&trace);
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries[0].frames_sent, 1, "aggregated burst = one frame");
    assert_eq!(summaries[1].frames_received, 1);
    assert_eq!(summaries[0].bytes_sent, summaries[1].bytes_received);
    let text = timeline::render_events(&trace);
    assert!(text.contains("send") && text.contains("recv"));
}

#[test]
fn mpi_layer_delivers_truncated_prefix_on_short_recv() {
    // MPI semantics for too-small receive buffers: the prefix is
    // delivered (our subset does not model MPI_ERR_TRUNCATE).
    let (world, mut procs) = sim_cluster(
        2,
        nic::mx_myri10g(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let comm = procs[0].comm_world();
    procs[0].isend(comm, 1, 0, vec![9u8; 64]);
    let r = procs[1].irecv(comm, 0, 0, 16);
    pump_cluster(&world, &mut procs, |p| p[1].test(r));
    assert_eq!(procs[1].take(r).unwrap(), vec![9u8; 16]);
}

#[test]
fn persistent_requests_cycle_start_wait() {
    let (world, mut procs) = sim_cluster(
        2,
        nic::quadrics_qm500(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let comm = procs[0].comm_world();
    let mut ps = procs[0].send_init(comm, 1, 3, &b"persistent payload"[..]);
    let mut pr = procs[1].recv_init(comm, 0, 3, 32);
    for round in 0..5 {
        let s = procs[0].start(&mut ps);
        let r = procs[1].start(&mut pr);
        pump_cluster(&world, &mut procs, |p| p[0].test(s) && p[1].test(r));
        assert_eq!(
            procs[1].take(r).unwrap(),
            b"persistent payload",
            "round {round}"
        );
    }
    assert!(ps.active().is_some());
}
