//! Maps the `nmad-model` cargo feature onto `cfg(nmad_model)` — same
//! scheme as nmad-core's build script.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(nmad_model)");
    if std::env::var_os("CARGO_FEATURE_NMAD_MODEL").is_some() {
        println!("cargo::rustc-cfg=nmad_model");
    }
}
