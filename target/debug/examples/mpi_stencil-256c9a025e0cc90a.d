/root/repo/target/debug/examples/mpi_stencil-256c9a025e0cc90a.d: examples/mpi_stencil.rs

/root/repo/target/debug/examples/mpi_stencil-256c9a025e0cc90a: examples/mpi_stencil.rs

examples/mpi_stencil.rs:
