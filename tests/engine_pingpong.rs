//! Integration: the engine end-to-end over every strategy and NIC
//! preset, plus determinism of the co-simulation.

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::Driver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

fn engine(world: &SharedWorld, node: u32, strategy: StrategyKind) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        strategy_box(strategy),
        EngineCosts::zero(),
    )
}

fn strategy_box(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::Default => Box::new(StratDefault),
        StrategyKind::Aggreg => Box::new(StratAggreg),
        StrategyKind::Reorder => Box::new(StratReorder),
        StrategyKind::Multirail => Box::new(StratMultirail::default()),
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum StrategyKind {
    Default,
    Aggreg,
    Reorder,
    Multirail,
}

const ALL_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Default,
    StrategyKind::Aggreg,
    StrategyKind::Reorder,
    StrategyKind::Multirail,
];

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) -> SimTime {
    for _ in 0..1_000_000 {
        let mut moved = a.progress_until_idle();
        moved |= b.progress_until_idle();
        if done(a, b) {
            return world.lock().now();
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

#[test]
fn payload_integrity_across_strategies_and_nics() {
    for nic_model in nmad_sim::nic::all_presets() {
        for strategy in ALL_STRATEGIES {
            // Keep sizes within the SISCI MTU-constrained preset too.
            let sizes = [0usize, 1, 64, 4000, 120_000];
            let world = shared_world(SimConfig::two_nodes(nic_model.clone()));
            let mut a = engine(&world, 0, strategy);
            let mut b = engine(&world, 1, strategy);
            for (i, &size) in sizes.iter().enumerate() {
                let body: Vec<u8> = (0..size).map(|j| (j % 251) as u8).collect();
                let s = a.isend(NodeId(1), Tag(i as u32), body.clone());
                let r = b.post_recv(NodeId(0), Tag(i as u32), size);
                pump(&world, &mut a, &mut b, |a, b| {
                    a.is_send_done(s) && b.is_recv_done(r)
                });
                let done = b.try_take_recv(r).expect("completed");
                assert_eq!(
                    done.data, body,
                    "{} / {:?} size {size}",
                    nic_model.name, strategy
                );
                assert!(!done.truncated);
            }
        }
    }
}

#[test]
fn burst_order_is_preserved_per_flow() {
    for strategy in ALL_STRATEGIES {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, strategy);
        let mut b = engine(&world, 1, strategy);
        let n = 50u32;
        let sends: Vec<_> = (0..n)
            .map(|i| a.isend(NodeId(1), Tag(7), vec![i as u8; 16]))
            .collect();
        let recvs: Vec<_> = (0..n).map(|_| b.post_recv(NodeId(0), Tag(7), 16)).collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        for (i, r) in recvs.into_iter().enumerate() {
            assert_eq!(
                b.try_take_recv(r).expect("done").data,
                vec![i as u8; 16],
                "{strategy:?} position {i}"
            );
        }
    }
}

#[test]
fn cross_flow_interleaving_keeps_flows_isolated() {
    let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
    let mut a = engine(&world, 0, StrategyKind::Reorder);
    let mut b = engine(&world, 1, StrategyKind::Reorder);
    // Interleave small and rendezvous-sized segments on two flows.
    let mut sends = Vec::new();
    for i in 0..6u32 {
        sends.push(a.isend(NodeId(1), Tag(1), vec![i as u8; 32]));
        sends.push(a.isend(NodeId(1), Tag(2), vec![i as u8; 40_000]));
    }
    let recvs1: Vec<_> = (0..6).map(|_| b.post_recv(NodeId(0), Tag(1), 32)).collect();
    let recvs2: Vec<_> = (0..6)
        .map(|_| b.post_recv(NodeId(0), Tag(2), 40_000))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&s| a.is_send_done(s))
            && recvs1.iter().chain(&recvs2).all(|&r| b.is_recv_done(r))
    });
    for (i, (&r1, &r2)) in recvs1.iter().zip(&recvs2).enumerate() {
        assert_eq!(b.try_take_recv(r1).expect("done").data, vec![i as u8; 32]);
        assert_eq!(
            b.try_take_recv(r2).expect("done").data,
            vec![i as u8; 40_000]
        );
    }
}

#[test]
fn identical_runs_are_bit_for_bit_deterministic() {
    let run = || {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        world.lock().enable_trace();
        let mut a = engine(&world, 0, StrategyKind::Aggreg);
        let mut b = engine(&world, 1, StrategyKind::Aggreg);
        let sends: Vec<_> = (0..10u32)
            .map(|i| a.isend(NodeId(1), Tag(i % 3), vec![i as u8; 100 * (i as usize + 1)]))
            .collect();
        let recvs: Vec<_> = (0..10u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i % 3), 2000))
            .collect();
        let t = pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let trace = world.lock().take_trace();
        (t, trace.len(), trace.sends())
    };
    assert_eq!(run(), run());
}

#[test]
fn window_accumulates_while_nic_busy_then_aggregates() {
    // Occupy the wire with a large eager frame, submit a burst behind
    // it: the burst must leave in (far) fewer frames than segments.
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, StrategyKind::Aggreg);
    let mut b = engine(&world, 1, StrategyKind::Aggreg);
    let first = a.isend(NodeId(1), Tag(0), vec![0u8; 30_000]);
    let r0 = b.post_recv(NodeId(0), Tag(0), 30_000);
    // One progress pushes the first frame onto the wire.
    a.progress();
    let burst: Vec<_> = (1..=16u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
        .collect();
    let recvs: Vec<_> = (1..=16u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 64))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(first)
            && burst.iter().all(|&s| a.is_send_done(s))
            && b.is_recv_done(r0)
            && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    assert_eq!(
        a.stats().frames_sent,
        2,
        "large frame + one fully aggregated burst frame, got {:?}",
        a.stats()
    );
}
