//! Slab-style endpoint table for massive-fanout transports.
//!
//! A server-grade driver holds thousands of live connections and
//! churns through accepts and teardowns constantly, so the per-
//! connection state must be **dense** (flat `Vec`, cache-friendly to
//! walk, no per-entry allocation) and its handles must be **safe
//! against reuse** (a teardown followed by an accept may land in the
//! same slot; a stale handle from before the teardown must not alias
//! the new connection). [`EndpointTable`] provides exactly that:
//! O(1) insert/lookup/remove through [`Token`]s that carry a slot
//! index *and* a generation — a token minted for a previous occupant
//! of the slot dies with it.
//!
//! Tokens pack into a `usize`, so they double as the registration keys
//! of the readiness poller ([`crate::poller`]): a late readiness event
//! for a torn-down socket fails the generation check and is dropped
//! instead of being delivered to whoever reused the slot.
//!
//! [`EndpointStats`] is the endpoint-layer counter block every
//! connection-oriented driver reports through
//! [`Driver::endpoint_stats`](crate::driver::Driver::endpoint_stats).

/// Generation-checked handle to one slot of an [`EndpointTable`]:
/// slot index in the low 32 bits, generation in the high 32.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Token(u64);

impl Token {
    fn new(index: u32, generation: u32) -> Token {
        Token(((generation as u64) << 32) | index as u64)
    }

    /// Slot index (dense, `0..capacity`).
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// Slot generation this token was minted for.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The token as a poller registration key.
    pub fn key(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a token from a poller key. The generation check at
    /// lookup rejects keys from torn-down registrations.
    pub fn from_key(key: usize) -> Token {
        Token(key as u64)
    }
}

struct Slot<T> {
    /// Bumped on every removal, so old tokens die with their occupant.
    generation: u32,
    value: Option<T>,
}

/// Dense slab of per-connection state with generation-checked O(1)
/// insert, lookup and removal.
pub struct EndpointTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for EndpointTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EndpointTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        EndpointTable {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> Token {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            Token::new(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("endpoint table exceeds u32 slots"); // PANIC-OK: table size bounded far below u32 by fd limits
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            Token::new(index, 0)
        }
    }

    fn slot(&self, token: Token) -> Option<&Slot<T>> {
        self.slots
            .get(token.index() as usize)
            .filter(|s| s.generation == token.generation())
    }

    /// The entry `token` refers to, unless it was torn down (or the
    /// slot was reused by a later connection — the generation check).
    pub fn get(&self, token: Token) -> Option<&T> {
        self.slot(token).and_then(|s| s.value.as_ref())
    }

    /// Mutable [`get`](Self::get).
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        self.slots
            .get_mut(token.index() as usize)
            .filter(|s| s.generation == token.generation())
            .and_then(|s| s.value.as_mut())
    }

    /// Removes and returns the entry, bumping the slot generation so
    /// every outstanding token for it goes stale.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let slot = self.slots.get_mut(token.index() as usize)?;
        if slot.generation != token.generation() {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(token.index());
        self.len -= 1;
        Some(value)
    }

    /// Iterates live entries (shutdown sweeps; the hot path never
    /// walks the table).
    pub fn iter(&self) -> impl Iterator<Item = (Token, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value
                .as_ref()
                .map(|v| (Token::new(i as u32, s.generation), v))
        })
    }

    /// Mutable [`iter`](Self::iter).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Token, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.value
                .as_mut()
                .map(move |v| (Token::new(i as u32, generation), v))
        })
    }

    /// Tokens of all live entries (teardown sweeps that need `&mut`
    /// access per entry afterwards).
    pub fn tokens(&self) -> Vec<Token> {
        self.iter().map(|(t, _)| t).collect()
    }
}

/// Endpoint-layer counters of a connection-oriented driver.
///
/// All cumulative since driver construction. The readiness pair
/// (`readiness_wakeups`, `sockets_polled`) is the massive-fanout
/// scaling story in two numbers: pump cost tracks sockets *polled*
/// (ready), not sockets *held* — `sockets_polled / readiness_wakeups`
/// stays flat as the connection count grows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Connections accepted and fully handshaken.
    pub accepts: u64,
    /// Inbound connections dropped during the handshake (bad id, slot
    /// collision, deadline expiry, socket error).
    pub handshake_failures: u64,
    /// Established connections torn down (EOF, error, protocol
    /// violation, drain completion).
    pub teardowns: u64,
    /// Pump polls that returned at least one readiness event.
    pub readiness_wakeups: u64,
    /// Per-socket readiness events serviced — the O(ready) work term.
    pub sockets_polled: u64,
    /// Readiness events that produced no progress (no bytes moved, no
    /// state change).
    pub spurious_wakeups: u64,
    /// Times a socket's reads were paused for backpressure (receive
    /// backlog or engine saturation signal).
    pub backpressure_stalls: u64,
}

impl EndpointStats {
    /// Sums `other` into `self` (aggregation across rails/shards).
    pub fn absorb(&mut self, other: &EndpointStats) {
        self.accepts += other.accepts;
        self.handshake_failures += other.handshake_failures;
        self.teardowns += other.teardowns;
        self.readiness_wakeups += other.readiness_wakeups;
        self.sockets_polled += other.sockets_polled;
        self.spurious_wakeups += other.spurious_wakeups;
        self.backpressure_stalls += other.backpressure_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = EndpointTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get(b), Some(&"b"));
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.get(a), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stale_tokens_die_with_their_occupant() {
        let mut t = EndpointTable::new();
        let a = t.insert(1);
        t.remove(a);
        // The freed slot is reused…
        let b = t.insert(2);
        assert_eq!(b.index(), a.index());
        // …but the old token no longer resolves, in any API.
        assert_eq!(t.get(a), None);
        assert_eq!(t.get_mut(a), None);
        assert_eq!(t.remove(a), None);
        assert_eq!(t.get(b), Some(&2));
        // Round-trip through a poller key preserves the generation.
        assert_eq!(t.get(Token::from_key(a.key())), None);
        assert_eq!(t.get(Token::from_key(b.key())), Some(&2));
    }

    #[test]
    fn double_remove_is_inert() {
        let mut t = EndpointTable::new();
        let a = t.insert(7);
        assert_eq!(t.remove(a), Some(7));
        assert_eq!(t.remove(a), None);
        assert_eq!(t.len(), 0);
        // The slot is on the free list exactly once.
        let b = t.insert(8);
        let c = t.insert(9);
        assert_ne!(b.index(), c.index());
    }

    #[test]
    fn token_packs_index_and_generation() {
        let tok = Token::new(42, 7);
        assert_eq!(tok.index(), 42);
        assert_eq!(tok.generation(), 7);
        assert_eq!(Token::from_key(tok.key()), tok);
    }

    #[test]
    fn iteration_sees_exactly_the_live_entries() {
        let mut t = EndpointTable::new();
        let toks: Vec<Token> = (0..5).map(|i| t.insert(i)).collect();
        t.remove(toks[1]);
        t.remove(toks[3]);
        let mut live: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        live.sort_unstable();
        assert_eq!(live, vec![0, 2, 4]);
        assert_eq!(t.tokens().len(), 3);
        for (_, v) in t.iter_mut() {
            *v += 10;
        }
        let mut bumped: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        bumped.sort_unstable();
        assert_eq!(bumped, vec![10, 12, 14]);
    }

    #[test]
    fn endpoint_stats_absorb_sums_every_field() {
        let one = EndpointStats {
            accepts: 1,
            handshake_failures: 2,
            teardowns: 3,
            readiness_wakeups: 4,
            sockets_polled: 5,
            spurious_wakeups: 6,
            backpressure_stalls: 7,
        };
        let mut sum = one;
        sum.absorb(&one);
        assert_eq!(
            sum,
            EndpointStats {
                accepts: 2,
                handshake_failures: 4,
                teardowns: 6,
                readiness_wakeups: 8,
                sockets_polled: 10,
                spurious_wakeups: 12,
                backpressure_stalls: 14,
            }
        );
    }
}
