//! Exhaustive model-checking of the priority-lane machinery.
//!
//! Compiled only under `--features nmad-model` (mapped to
//! `cfg(nmad_model)` by build.rs). The lane-aware window index and the
//! sharded submission path together promise *per-lane FIFO across
//! shards*: one flow's segments land in one shard, and inside that
//! shard the window serves each lane in submission order, no matter
//! how racing submitters interleave. Two properties are proven over
//! every explored schedule, each with a deliberately weakened mutant
//! the checker must catch:
//!
//! 1. **Per-lane FIFO across shards** — flows of different priorities
//!    race through the per-shard submission rings into lane-indexed
//!    windows; per-lane extraction yields every flow in submission
//!    order, wholly inside the shard the pure routing hash names.
//! 2. **Lane occupancy conservation** — the per-lane depth counters
//!    the strategies plan from agree with what was actually submitted,
//!    across every interleaving of the producers.

#![cfg(nmad_model)]

use bytes::Bytes;
use nmad_core::ring::SubmitRing;
use nmad_core::sync::{AtomicU64, Ordering};
use nmad_core::{PackWrapper, Priority, SendReqId, SeqNo, ShardPolicy, Tag, Window, NUM_LANES};
use nmad_sim::NodeId;
use nmad_verify::{thread, CheckStats, Checker};
use std::sync::Arc;

/// One submitted segment as it crosses a shard ring: flow destination,
/// flow tag, priority lane, per-flow sequence.
type RingMsg = (u32, u32, u8, u32);

fn wrapper(msg: RingMsg, order: u64) -> PackWrapper {
    let (dst, tag, lane, seq) = msg;
    PackWrapper {
        dst: NodeId(dst),
        tag: Tag(tag),
        seq: SeqNo(seq),
        priority: Priority::from_lane(lane),
        data: Bytes::from_static(b"m"),
        req: SendReqId(u64::from(seq)),
        order,
    }
}

// ---------------------------------------------------------------------
// 1. Per-lane FIFO across shards.
// ---------------------------------------------------------------------

/// Three flows of three different priorities race through two shard
/// rings (route recomputed per message — purity is what pins a flow to
/// one shard). Each ring drains in pop order into that shard's
/// lane-indexed window; per-lane extraction must then yield every flow
/// in exact submission order, entirely inside its routed shard.
fn check_per_lane_fifo_across_shards(dedup: bool) -> CheckStats {
    Checker::new()
        .max_schedules(15_000)
        .dedup(dedup)
        .check(|| {
            let rings: Arc<[SubmitRing<RingMsg>; 2]> =
                Arc::new([SubmitRing::new(8), SubmitRing::new(8)]);
            let route = |dst: u32, tag: u32| {
                ShardPolicy::HashByDest.route(2, NodeId(0), NodeId(dst), Tag(tag))
            };

            // Urgent flow to node 1, from a racing shard context.
            let r = Arc::clone(&rings);
            let urgent = thread::spawn(move || {
                for seq in [1u32, 2, 3] {
                    r[route(1, 3)].push((1, 3, 0, seq));
                }
            });
            // Normal flow to node 2, from another.
            let r = Arc::clone(&rings);
            let normal = thread::spawn(move || {
                for seq in [201u32, 202] {
                    r[route(2, 3)].push((2, 3, 2, seq));
                }
            });
            // Bulk flow to node 1 from the main context, same tag space.
            for seq in [101u32, 102, 103] {
                rings[route(1, 4)].push((1, 4, 3, seq));
            }
            urgent.join();
            normal.join();

            // Drain each ring in pop order into that shard's window,
            // stamping submission orders per shard as the engine does.
            let mut windows = [Window::new(1), Window::new(1)];
            for (shard, win) in windows.iter_mut().enumerate() {
                let mut order = 0u64;
                while let Some(msg) = rings[shard].pop() {
                    win.push_segment(wrapper(msg, order), None);
                    order += 1;
                }
            }

            // Per-lane extraction: every flow comes out in submission
            // order, wholly inside the shard the routing hash names.
            let mut flows: [(usize, Vec<u32>); 3] = [
                (route(1, 3), Vec::new()),
                (route(2, 3), Vec::new()),
                (route(1, 4), Vec::new()),
            ];
            for (shard, win) in windows.iter_mut().enumerate() {
                for lane in 0..NUM_LANES as u8 {
                    while let Some((w, _)) =
                        win.take_first_matching_tracked(0, |x| x.priority.lane() == lane)
                    {
                        let f = match (w.dst.0, w.tag.0) {
                            (1, 3) => 0,
                            (2, 3) => 1,
                            (1, 4) => 2,
                            other => panic!("phantom flow {other:?}"),
                        };
                        assert_eq!(flows[f].0, shard, "a flow leaked out of its routed shard");
                        flows[f].1.push(w.seq.0);
                    }
                }
                assert!(win.is_empty(), "lane extraction left segments behind");
            }
            assert_eq!(flows[0].1, [1, 2, 3], "urgent flow broke per-lane FIFO");
            assert_eq!(flows[1].1, [201, 202], "normal flow broke per-lane FIFO");
            assert_eq!(flows[2].1, [101, 102, 103], "bulk flow broke per-lane FIFO");
        })
        .expect("per-lane FIFO across shards must hold in every schedule")
}

#[test]
fn model_per_lane_fifo_across_shards_survives_racing_flows() {
    let stats = check_per_lane_fifo_across_shards(true);
    assert!(
        stats.schedules >= 100,
        "per-lane FIFO model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "per-lane FIFO model hit the step bound: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// 2. Lane occupancy conservation.
// ---------------------------------------------------------------------

/// The strategies plan frames from [`Window::lane_depth`]; that index
/// must agree with what was actually submitted across every
/// interleaving of racing producers — a miscount either starves a lane
/// (depth 0 with segments queued) or spins the scheduler (depth > 0
/// with nothing to take).
fn check_lane_occupancy_conservation(dedup: bool) -> CheckStats {
    Checker::new()
        .max_schedules(15_000)
        .dedup(dedup)
        .check(|| {
            let ring: Arc<SubmitRing<RingMsg>> = Arc::new(SubmitRing::new(8));
            let r = Arc::clone(&ring);
            let producer = thread::spawn(move || {
                r.push((1, 7, 0, 1));
                r.push((1, 7, 3, 2));
            });
            ring.push((1, 8, 3, 3));
            ring.push((1, 8, 1, 4));
            producer.join();

            let mut win = Window::new(1);
            let mut order = 0u64;
            while let Some(msg) = ring.pop() {
                win.push_segment(wrapper(msg, order), None);
                order += 1;
            }
            let depths: Vec<usize> = (0..NUM_LANES as u8).map(|l| win.lane_depth(l)).collect();
            assert_eq!(
                depths,
                [1, 1, 0, 2],
                "lane occupancy diverged from the submitted segments"
            );
        })
        .expect("lane occupancy must be conserved in every schedule")
}

#[test]
fn model_lane_occupancy_is_conserved_across_racing_producers() {
    let stats = check_lane_occupancy_conservation(true);
    assert!(
        stats.schedules >= 100,
        "lane occupancy model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "lane occupancy model hit the step bound: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// Seeded mutant.
// ---------------------------------------------------------------------

/// Mutant: the submission-order stamp demoted from `fetch_add` to a
/// torn load-then-store. Aging promotion (`age = horizon - order`) and
/// the per-lane FIFO tie-break both lean on stamps being unique; two
/// shard contexts reading the same watermark hand out the same stamp —
/// the checker must find that schedule and hand back a replayable path.
#[test]
fn model_torn_lane_order_stamp_mutant_is_caught() {
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let horizon = Arc::new(AtomicU64::new(0));
            let stamp = |h: &AtomicU64| {
                // mutant: read-modify-write torn into two operations.
                let order = h.load(Ordering::Relaxed);
                h.store(order + 1, Ordering::Relaxed);
                order
            };
            let h = Arc::clone(&horizon);
            let shard = thread::spawn(move || stamp(&h));
            let mine = stamp(&horizon);
            let theirs = shard.join();
            assert_ne!(
                mine, theirs,
                "duplicate lane order stamp breaks per-lane FIFO and aging"
            );
        })
        .expect_err("the torn order-stamp mutant must be caught");
    assert!(
        failure.message.contains("duplicate lane order stamp"),
        "wrong failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "the failing path must be replayable: {failure}"
    );
}

// ---------------------------------------------------------------------
// Exploration volume.
// ---------------------------------------------------------------------

/// The lane suites together explore at least ten thousand schedules,
/// none truncated — the acceptance bar for this suite. Run without
/// state dedup so the count reflects every distinct interleaving
/// actually executed, not just its canonical states.
#[test]
fn model_lane_suites_cover_ten_thousand_schedules() {
    let suites = [
        check_per_lane_fifo_across_shards(false),
        check_lane_occupancy_conservation(false),
    ];
    let total: u64 = suites.iter().map(|s| s.schedules).sum();
    let truncated: u64 = suites.iter().map(|s| s.truncated).sum();
    assert!(
        total >= 10_000,
        "lane model suites underexplored: {total} schedules across {suites:?}"
    );
    assert_eq!(truncated, 0, "a lane model hit the step bound: {suites:?}");
}
