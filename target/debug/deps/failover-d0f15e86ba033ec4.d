/root/repo/target/debug/deps/failover-d0f15e86ba033ec4.d: tests/failover.rs

/root/repo/target/debug/deps/failover-d0f15e86ba033ec4: tests/failover.rs

tests/failover.rs:
