/root/repo/target/debug/deps/newmadeleine-fb0c75857f4600ca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewmadeleine-fb0c75857f4600ca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
