//! Minimal aligned-markdown table printer for harness output.

use std::fmt::Write as _;

/// A column-aligned markdown table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, " {cell:>w$} |", w = widths[i]);
            }
            out.push_str(&line);
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in widths.iter().take(cols) {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["size", "us"]);
        t.row(vec!["4", "3.1"]);
        t.row(vec!["1024", "12.75"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[1].starts_with("|---") || lines[1].starts_with("|-"));
        // All lines equally wide (alignment).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
