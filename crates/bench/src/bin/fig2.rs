//! Figure 2 — raw point-to-point ping-pong (paper §5.1).
//!
//! Regenerates all four panels: latency and bandwidth over MX/Myri-10G
//! (MadMPI vs MPICH vs OpenMPI) and over Elan/Quadrics (MadMPI vs
//! MPICH), for single-segment messages of 4 B to 2 MB, plus the §5.1
//! headline numbers (constant overhead < 0.5 µs, peak bandwidths).
//!
//! Run: `cargo run --release -p bench --bin fig2 [-- --quick] [-- --json PATH]`

use bench::{
    bench_json_arg, byte_sizes, fmt_size, json_arg, pingpong_contig, write_json_report,
    BenchReport, LogLogChart, Series, Table,
};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_core::MetricsRegistry;
use nmad_sim::{nic, NicModel};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_arg();
    let iters = if quick { 1 } else { 4 };
    let max = if quick { 64 * 1024 } else { 2 << 20 };
    let sizes = byte_sizes(4, max);
    let registry = MetricsRegistry::new();
    let report = BenchReport::new();

    let madmpi = EngineKind::MadMpi(StrategyKind::Aggreg);

    run_platform(
        "Fig 2(a)/(b) — MX/Myri-10G",
        nic::mx_myri10g(),
        &[madmpi, EngineKind::Mpich, EngineKind::Ompi],
        &sizes,
        iters,
        &registry,
        &report,
    );
    run_platform(
        "Fig 2(c)/(d) — Elan/Quadrics",
        nic::quadrics_qm500(),
        &[madmpi, EngineKind::Mpich],
        &sizes,
        iters,
        &registry,
        &report,
    );
    write_json_report(json.as_deref(), &registry);
    report.write(&bench_json_arg());
}

fn run_platform(
    title: &str,
    nic_model: NicModel,
    kinds: &[EngineKind],
    sizes: &[usize],
    iters: usize,
    registry: &MetricsRegistry,
    report: &BenchReport,
) {
    println!("\n## {title}\n");
    let mut lat = Table::new(
        std::iter::once("size".to_string())
            .chain(kinds.iter().map(|k| format!("{} lat (us)", k.label())))
            .collect(),
    );
    let mut bw = Table::new(
        std::iter::once("size".to_string())
            .chain(kinds.iter().map(|k| format!("{} bw (MB/s)", k.label())))
            .collect(),
    );
    let mut small_overheads: Vec<f64> = Vec::new();
    let mut peaks = vec![0f64; kinds.len()];
    let glyphs = ['*', 'o', '+'];
    let mut lat_series: Vec<Series> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| Series::new(k.label(), glyphs[i % glyphs.len()]))
        .collect();
    let mut bw_series: Vec<Series> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| Series::new(k.label(), glyphs[i % glyphs.len()]))
        .collect();

    for &size in sizes {
        let samples: Vec<_> = kinds
            .iter()
            .map(|&k| pingpong_contig(k, nic_model.clone(), size, iters))
            .collect();
        for (k, s) in kinds.iter().zip(&samples) {
            if let Some(m) = &s.metrics {
                registry.record(
                    format!("fig2/{}/{}/{}", nic_model.name, k.label(), fmt_size(size)),
                    m.clone(),
                );
            }
            report.record(
                &format!("fig2/{}", nic_model.name),
                k.label(),
                size,
                std::slice::from_ref(s),
            );
        }
        lat.row(
            std::iter::once(fmt_size(size))
                .chain(samples.iter().map(|s| format!("{:.2}", s.one_way_us)))
                .collect(),
        );
        bw.row(
            std::iter::once(fmt_size(size))
                .chain(samples.iter().map(|s| format!("{:.1}", s.bandwidth_mbs)))
                .collect(),
        );
        for (i, s) in samples.iter().enumerate() {
            peaks[i] = peaks[i].max(s.bandwidth_mbs);
            lat_series[i].push(size as f64, s.one_way_us);
            bw_series[i].push(size as f64, s.bandwidth_mbs);
        }
        // Overhead vs MPICH at small sizes (≤ 1 KB); kinds[1] is MPICH.
        if size <= 1024 && kinds.len() >= 2 {
            small_overheads.push(samples[0].one_way_us - samples[1].one_way_us);
        }
    }

    println!("### latency (one-way, us)\n");
    lat.print();
    println!();
    let mut chart = LogLogChart::new(
        format!("{title} — latency"),
        "message size (B)",
        "one-way us",
    );
    for s in lat_series {
        chart.add(s);
    }
    chart.print();
    println!("\n### bandwidth (MB/s)\n");
    bw.print();
    println!();
    let mut chart = LogLogChart::new(format!("{title} — bandwidth"), "message size (B)", "MB/s");
    for s in bw_series {
        chart.add(s);
    }
    chart.print();

    println!("\n### §5.1 headline checks\n");
    if !small_overheads.is_empty() {
        let max_ovh = small_overheads.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "- MadMPI latency overhead vs MPICH at ≤1K: max {max_ovh:.3} us (paper: constant, < 0.5 us)"
        );
    }
    for (kind, peak) in kinds.iter().zip(&peaks) {
        println!("- {} peak bandwidth: {:.0} MB/s", kind.label(), peak);
    }
}
