/root/repo/target/debug/deps/nmad_net-0cc47f7d5133fcb4.d: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs Cargo.toml

/root/repo/target/debug/deps/libnmad_net-0cc47f7d5133fcb4.rmeta: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs Cargo.toml

crates/nmad-net/src/lib.rs:
crates/nmad-net/src/backoff.rs:
crates/nmad-net/src/driver.rs:
crates/nmad-net/src/fault.rs:
crates/nmad-net/src/lossy.rs:
crates/nmad-net/src/mem.rs:
crates/nmad-net/src/reliable.rs:
crates/nmad-net/src/selective.rs:
crates/nmad-net/src/sim.rs:
crates/nmad-net/src/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
