//! A minimal JSON reader for the `BENCH_*.json` reports.
//!
//! The workspace has no serde; the bench reports are written by
//! hand-rolled formatters (`bench::report`), so the grammar this has
//! to accept is tiny and fully under our control. Still, this is a
//! complete recursive-descent JSON parser — numbers, strings with
//! escapes, arrays, objects, the three literals — so a report that
//! gained fields or reordered keys keeps parsing.

/// A parsed JSON value. Numbers are `f64` (the reports carry nothing
/// outside its exact range); object key order is preserved but lookup
/// is by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal: backslash,
/// quote, and every control character (U+0000..U+001F must be escaped
/// per RFC 8259 — a raw tab in a flagged source line used to produce
/// invalid output). The one emitter shared by every hand-rolled JSON
/// writer in xtask (`lint`/`analyze` reports, `bench-diff --json`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in the
                            // reports; map them to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| format!("invalid utf8 in string: {e}"))?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_report_shape() {
        let doc = parse(
            r#"{"batch":[{"bench":"submit","variant":"b1","ns_per_op":12.5,"ops":256}],
                "speedups":{"a_vs_b":3.25}}"#,
        )
        .expect("valid");
        let rows = doc.get("batch").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("ns_per_op").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            doc.get("speedups")
                .and_then(|s| s.get("a_vs_b"))
                .and_then(Json::as_f64),
            Some(3.25)
        );
    }

    #[test]
    fn parses_escapes_negatives_and_exponents() {
        let doc = parse(r#"{"s":"a\"b\\c\nd","n":-1.5e3,"t":true,"x":null}"#).expect("valid");
        assert_eq!(doc.get("s"), Some(&Json::Str("a\"b\\c\nd".into())));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("x"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse(r#"{"a":01x}"#).is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn escape_covers_control_characters() {
        // The regression that motivated the shared escaper: a raw tab
        // in a flagged source excerpt produced invalid JSON.
        assert_eq!(escape("a\tb"), "a\\tb");
        assert_eq!(escape("a\nb\rc"), "a\\nb\\rc");
        assert_eq!(escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(escape(r#"q"\"#), r#"q\"\\"#);
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "tab\there \"quote\" back\\slash\nnew\u{7}bell";
        let doc = parse(&format!("{{\"k\":\"{}\"}}", escape(nasty))).expect("escaped JSON parses");
        assert_eq!(doc.get("k"), Some(&Json::Str(nasty.to_string())));
    }
}
