//! The driver abstraction of the transfer layer.
//!
//! The paper's transfer layer is "a minimal network API (initialisation,
//! closing, sending, receiving and polling methods)" plus a handful of
//! collected facts about the card: rendezvous threshold, gather/scatter
//! and RDMA availability (§4). [`Driver`] is exactly that surface;
//! everything above it (window, strategies, rendezvous, matching) is
//! network-independent, so — as in the paper — "any strategy can be
//! directly combined with any network protocol".
//!
//! Drivers are *frame* transports: they move opaque byte frames between
//! nodes, preserving per-link FIFO order, and report transmit-side
//! completion. The engine's multiplexing headers live inside the frame.

use crate::endpoint::EndpointStats;
use crate::fault::{FaultPlan, FaultStats};
use bytes::Bytes;
use nmad_sim::NodeId;
use std::fmt;

/// Static facts the engine collects from a driver at initialisation
/// (paper §4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Technology name for reports (`"MX/Myri-10G"`, `"tcp"`, ...).
    pub name: String,
    /// Advertised one-way latency in nanoseconds (scheduling hint only).
    pub latency_ns: u64,
    /// Advertised bandwidth in bytes/second (scheduling hint only).
    pub bandwidth_bps: u64,
    /// Max gather entries per send descriptor; `1` = no hardware gather,
    /// the engine must stage multi-segment packets through a copy.
    pub gather_max_segs: usize,
    /// Driver-suggested eager→rendezvous switch point in bytes.
    pub rdv_threshold: usize,
    /// Remote direct memory access available (zero-copy large path).
    pub supports_rdma: bool,
    /// Largest frame the driver accepts.
    pub mtu: usize,
}

/// Handle to an in-progress send, scoped to the driver that issued it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendHandle(pub u64);

/// A received frame.
///
/// The payload is a shared [`Bytes`] buffer so the engine can hand
/// zero-copy slices of it to the matching layer (unexpected-message
/// queue, eager delivery) and recycle the buffer once every slice has
/// been consumed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RxFrame {
    /// Source node.
    pub src: NodeId,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Driver-level failures.
#[derive(Debug)]
pub enum NetError {
    /// Peer went away / transport closed.
    Closed,
    /// Frame exceeds the driver MTU.
    FrameTooLarge {
        /// Offending frame length in bytes.
        len: usize,
        /// The driver's MTU in bytes.
        mtu: usize,
    },
    /// More gather segments than the hardware accepts — engine bug, the
    /// scheduler must stage-copy instead.
    TooManySegments {
        /// Gather entries requested.
        got: usize,
        /// Hardware maximum.
        max: usize,
    },
    /// Underlying I/O error (real transports).
    Io(std::io::Error),
    /// Peer sent bytes that do not decode as protocol frames.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "transport closed"),
            NetError::FrameTooLarge { len, mtu } => {
                write!(f, "frame of {len} bytes exceeds mtu {mtu}")
            }
            NetError::TooManySegments { got, max } => {
                write!(f, "{got} gather segments exceed hardware max {max}")
            }
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Result alias for driver operations.
pub type NetResult<T> = Result<T, NetError>;

/// Cumulative transmit-side link counters a driver reports for
/// observability. Drivers that do no accounting keep the all-zero
/// default; decorators (reliability layers) add their own counters on
/// top of the inner driver's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Nanoseconds the transmit side spent with a frame on the wire.
    pub busy_ns: u64,
    /// Nanoseconds the transmit side sat idle since initialisation.
    pub idle_ns: u64,
    /// Frames re-sent by a reliability layer.
    pub retransmits: u64,
    /// Acknowledgement frames sent by a reliability layer.
    pub acks: u64,
}

/// One frame-synthesis decision taken by a scheduling strategy,
/// reported through [`CpuMeter::note_decision`] so simulated transports
/// can trace scheduling behaviour alongside wire events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrategyDecision {
    /// Name of the strategy that synthesized the frame.
    pub strategy: &'static str,
    /// Wire entries in the synthesized frame.
    pub entries: u32,
    /// Eager data entries among them.
    pub data_entries: u32,
    /// Rendezvous announcements among them.
    pub rts_entries: u32,
    /// Rendezvous grants among them.
    pub cts_entries: u32,
    /// Rendezvous payload chunks among them.
    pub chunk_entries: u32,
    /// Entries the strategy took out of submission order.
    pub reordered: u32,
}

/// A frame transport bound to one local node on one rail.
pub trait Driver: Send {
    /// Facts collected at initialisation.
    fn caps(&self) -> &Capabilities;

    /// The node this endpoint belongs to.
    fn local_node(&self) -> NodeId;

    /// Posts a gather send of the concatenation of `iov` towards `dst`.
    ///
    /// The driver may reject more than `caps().gather_max_segs` entries;
    /// the scheduler is responsible for staging copies when the
    /// hardware cannot gather.
    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle>;

    /// True once the send has left the host (frame buffers reusable).
    /// Polling an already-completed handle keeps returning true.
    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool>;

    /// Next delivered frame, if any. Non-blocking.
    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>>;

    /// True when the transmit side has no queued work — the signal the
    /// transfer layer uses to ask the scheduler for the next packet.
    fn tx_idle(&self) -> bool;

    /// Lets real transports move buffered bytes; simulated transports
    /// need no pump and use the default no-op.
    fn pump(&mut self) -> NetResult<()> {
        Ok(())
    }

    /// Cumulative transmit-side counters for observability. Drivers
    /// without accounting keep the all-zero default.
    fn link_stats(&self) -> LinkStats {
        LinkStats::default()
    }

    /// Installs a deterministic [`FaultPlan`] on this endpoint.
    ///
    /// Returns `true` if the driver consumes the plan (the simulated
    /// transports do; decorators forward to their inner driver). The
    /// default refuses: real transports cannot inject faults.
    fn install_faults(&mut self, _plan: FaultPlan) -> bool {
        false
    }

    /// Counters from an installed fault plan; all-zero when no plan is
    /// installed (or the driver does not support injection).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Endpoint-layer counters of connection-oriented transports
    /// (accepts, teardowns, readiness wakeups, backpressure stalls).
    /// Connectionless and simulated drivers keep the all-zero default;
    /// decorators forward to their inner driver.
    fn endpoint_stats(&self) -> EndpointStats {
        EndpointStats::default()
    }

    /// Engine-side backpressure signal: `true` parks receive-side
    /// progress (stop reading sockets) because the optimization window
    /// or the unexpected-message queue saturated; `false` resumes it.
    /// The kernel's transport flow control then pushes back on remote
    /// senders. Drivers without a receive side to park ignore it.
    fn set_rx_backpressure(&mut self, _paused: bool) {}

    /// True when this endpoint may be owned and polled by a background
    /// progression thread (the engine's threaded mode). Real transports
    /// are (`Driver: Send` and their pumps touch only their own state);
    /// the simulated driver overrides this to `false` — virtual time
    /// only advances through the co-simulation loop on the application
    /// thread, so it must stay inline to remain deterministic.
    fn threaded_progress_safe(&self) -> bool {
        true
    }
}

/// Accounts engine CPU costs.
///
/// On the simulated transports this charges virtual time to the node's
/// CPU account so software costs (scheduler inspection, header packing,
/// staging copies) shape the measured curves exactly as they shaped the
/// paper's. On real transports it is a no-op: the cost is paid by
/// actually executing the code.
pub trait CpuMeter: Send {
    /// Accounts a fixed software cost of `ns` nanoseconds.
    fn charge_ns(&mut self, ns: u64);

    /// Accounts one memory copy of `bytes` bytes.
    fn charge_memcpy(&mut self, bytes: usize);

    /// Observes one strategy scheduling decision. Free (no virtual
    /// time is charged); simulated transports forward it to the event
    /// trace, real transports use the default no-op.
    fn note_decision(&mut self, _decision: &StrategyDecision) {}
}

/// Meter for real transports: executing the code *is* the cost.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullMeter;

impl CpuMeter for NullMeter {
    fn charge_ns(&mut self, _ns: u64) {}
    fn charge_memcpy(&mut self, _bytes: usize) {}
}

impl Capabilities {
    /// Derives driver capabilities from a simulated NIC model.
    pub fn from_nic(model: &nmad_sim::NicModel) -> Self {
        Capabilities {
            name: model.name.to_string(),
            latency_ns: model.latency.as_ns(),
            bandwidth_bps: model.bandwidth_bps,
            gather_max_segs: model.gather_max_segs,
            rdv_threshold: model.rdv_threshold,
            supports_rdma: model.supports_rdma,
            mtu: model.mtu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_mirror_nic_model() {
        let caps = Capabilities::from_nic(&nmad_sim::nic::mx_myri10g());
        assert_eq!(caps.name, "MX/Myri-10G");
        assert_eq!(caps.gather_max_segs, 32);
        assert_eq!(caps.rdv_threshold, 32 * 1024);
        assert!(caps.supports_rdma);
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = NetError::FrameTooLarge { len: 10, mtu: 5 };
        assert!(e.to_string().contains("exceeds mtu"));
        let e = NetError::TooManySegments { got: 9, max: 4 };
        assert!(e.to_string().contains("gather"));
    }
}
