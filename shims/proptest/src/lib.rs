//! Offline shim for the `proptest` crate.
//!
//! Deterministic property testing with proptest's API shape: the
//! `proptest!` macro, composable strategies (ranges, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `any::<T>()`), and the
//! `prop_assert*` macros. Cases are generated from a seed derived from
//! the test's module path, so failures reproduce exactly on re-run.
//! Unlike real proptest there is **no shrinking**: a failing case is
//! reported with its case index and the values are re-derivable from
//! the deterministic stream.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from an assertion message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type the generated property bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator feeding every strategy (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator from a fixed seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)` in `u128` space.
        pub fn below(&mut self, lo: u128, hi: u128) -> u128 {
            assert!(lo < hi, "cannot sample empty range");
            lo + u128::from(self.next_u64()) % (hi - lo)
        }
    }

    /// FNV-1a hash of the test's identity: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u128, self.end as u128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(*self.start() as u128, *self.end() as u128 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Object-safe strategy view, used by [`Union`] arms.
    pub trait DynStrategy<T> {
        /// Draws one value from `rng`.
        fn new_value_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// Boxes one weighted `prop_oneof!` arm (monomorphization helper).
    pub fn dyn_arm<S: Strategy + 'static>(
        weight: u32,
        strategy: S,
    ) -> (u32, Box<dyn DynStrategy<S::Value>>) {
        (weight, Box::new(strategy))
    }

    /// Weighted choice between strategies of one value type.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds the union; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Union<T> {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total_weight;
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.new_value_dyn(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum covered above")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start as u128, self.size.end as u128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// Uniform boolean strategy.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Weighted (or uniform) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::dyn_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $($crate::strategy::dyn_arm(1u32, $strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                // Some bodies mutate their generated bindings, some do
                // not; the macro cannot tell which.
                #[allow(unused_mut)]
                let mut run = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(err) = run() {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, err,
                    );
                }
            }
        }
        $crate::__proptest_each! { @config($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Pair {
        a: u32,
        b: usize,
    }

    fn pair_gen() -> impl crate::strategy::Strategy<Value = Pair> {
        (
            0u32..10,
            prop_oneof![3 => 0usize..100, 1 => 1_000usize..2_000],
        )
            .prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..9, y in 1usize..=3) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn composed_strategies_generate_valid_values(
            pairs in crate::collection::vec(pair_gen(), 0..8),
            flag in crate::bool::ANY,
        ) {
            for p in &pairs {
                prop_assert!(p.a < 10);
                prop_assert!(p.b < 100 || (1_000..2_000).contains(&p.b), "weighted arm: {}", p.b);
            }
            prop_assert!([false, true].contains(&flag));
            prop_assert_ne!(1, 2);
        }

        #[test]
        fn any_covers_integers(v in crate::collection::vec(any::<u8>(), 0..32)) {
            prop_assert_eq!(v.len(), v.clone().len(), "length is stable");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let mut rng1 = crate::test_runner::TestRng::from_seed(9);
        let mut rng2 = crate::test_runner::TestRng::from_seed(9);
        let strat = pair_gen();
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut rng1), strat.new_value(&mut rng2));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
