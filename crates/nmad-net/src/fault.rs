//! Deterministic, seeded fault injection for the simulated transports.
//!
//! The paper's transfer layer assumes NICs that are merely *busy or
//! idle* (§3.3); a production engine must also survive NICs that are
//! dead, flapping, or corrupting frames. This module provides the
//! vocabulary: a [`FaultPlan`] describes *what goes wrong and when*
//! (link down/up windows, NIC death, per-frame corruption, latency
//! spikes), and a [`FaultInjector`] executes the plan frame by frame,
//! fully deterministically, from a single seed.
//!
//! Any driver can accept a plan through
//! [`Driver::install_faults`](crate::Driver::install_faults); the
//! simulated drivers (`sim`, `mem`, and the `lossy`/`reliable`/
//! `selective` decorators) all do. A chaos run is then reproducible
//! bit-for-bit by re-running with the printed seed.

/// Deterministic xorshift64* generator shared by every fault source.
///
/// Small, fast, and — crucially — *portable*: the same seed produces
/// the same stream on every platform, which is what makes a chaos
/// failure replayable from its printed seed.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator seeded with `seed` (zero is mapped to one; xorshift
    /// has a fixed point at zero).
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`; `lo` when the range is empty.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

/// FNV-1a 32-bit checksum over the concatenation of `parts`.
///
/// The reliability decorators stamp this into their frame headers so
/// corruption — injected by a [`FaultPlan`] or real — is detected and
/// the frame discarded instead of delivered; retransmission then
/// recovers it.
pub fn checksum32(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// One scheduled fault on a rail's timeline.
///
/// Times are in the driver's clock domain: nanoseconds of virtual time
/// for the simulator-backed drivers, a frame counter for the clockless
/// memory fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The link drops every frame posted in `[from_ns, until_ns)`,
    /// then comes back (a flapping cable / rebooting switch).
    LinkDown {
        /// Window start (inclusive).
        from_ns: u64,
        /// Window end (exclusive).
        until_ns: u64,
    },
    /// The NIC dies permanently at `at_ns`: every later post fails
    /// with [`NetError::Closed`](crate::NetError::Closed).
    NicDeath {
        /// Instant of death.
        at_ns: u64,
    },
    /// Every frame posted in `[from_ns, until_ns)` is delivered
    /// `extra_ns` late (congestion / PFC storm).
    LatencySpike {
        /// Window start (inclusive).
        from_ns: u64,
        /// Window end (exclusive).
        until_ns: u64,
        /// Added one-way delay.
        extra_ns: u64,
    },
}

/// A deterministic, seeded schedule of faults for one rail.
///
/// Built either explicitly (`FaultPlan::new(seed).link_down(..)…`) or
/// randomly-but-reproducibly with [`FaultPlan::randomized`]. The seed
/// also drives the per-frame drop/corruption coin flips, so the whole
/// fault trace is a pure function of the plan.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the per-frame probabilistic faults.
    pub seed: u64,
    /// Scheduled (time-windowed) faults.
    pub events: Vec<FaultEvent>,
    /// Probability that any given posted frame is silently dropped.
    pub drop_probability: f64,
    /// Probability that any given posted frame has one bit flipped.
    pub corrupt_probability: f64,
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for the coin flips.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Adds a link-down window.
    pub fn link_down(mut self, from_ns: u64, until_ns: u64) -> Self {
        self.events.push(FaultEvent::LinkDown { from_ns, until_ns });
        self
    }

    /// Adds a permanent NIC death at `at_ns`.
    pub fn nic_death(mut self, at_ns: u64) -> Self {
        self.events.push(FaultEvent::NicDeath { at_ns });
        self
    }

    /// Adds a latency-spike window.
    pub fn latency_spike(mut self, from_ns: u64, until_ns: u64, extra_ns: u64) -> Self {
        self.events.push(FaultEvent::LatencySpike {
            from_ns,
            until_ns,
            extra_ns,
        });
        self
    }

    /// Sets the per-frame drop probability (`[0, 1)`).
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        self.drop_probability = p;
        self
    }

    /// Sets the per-frame single-bit corruption probability (`[0, 1)`).
    pub fn with_corrupt_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "corrupt probability must be in [0,1)"
        );
        self.corrupt_probability = p;
        self
    }

    /// A randomized-but-reproducible plan over `[0, horizon_ns)`:
    /// a couple of link-down windows and latency spikes placed by the
    /// seed, plus mild probabilistic drop/corruption. Never includes
    /// NIC death — permanent faults are opted into explicitly so a
    /// harness controls how many rails can die.
    pub fn randomized(seed: u64, horizon_ns: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..rng.next_range(1, 3) {
            let from = rng.next_range(0, horizon_ns);
            let len = rng.next_range(horizon_ns / 50, horizon_ns / 10).max(1);
            plan = plan.link_down(from, from.saturating_add(len));
        }
        for _ in 0..rng.next_range(0, 3) {
            let from = rng.next_range(0, horizon_ns);
            let len = rng.next_range(horizon_ns / 20, horizon_ns / 5).max(1);
            let extra = rng.next_range(10_000, 500_000);
            plan = plan.latency_spike(from, from.saturating_add(len), extra);
        }
        plan.drop_probability = rng.next_unit() * 0.05;
        plan.corrupt_probability = rng.next_unit() * 0.02;
        plan
    }

    /// One-line human description (printed by the chaos harness next
    /// to the seed, so a failing schedule is legible).
    pub fn describe(&self) -> String {
        format!(
            "seed={} events={} drop={:.4} corrupt={:.4}",
            self.seed,
            self.events.len(),
            self.drop_probability,
            self.corrupt_probability
        )
    }
}

/// What the injector decided for one posted frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver the (possibly corrupted) frame, `extra_delay_ns` late.
    Deliver {
        /// Additional one-way delay from active latency spikes.
        extra_delay_ns: u64,
    },
    /// Silently drop the frame (loss or link-down window).
    Drop,
    /// The NIC is dead: the post must fail with `Closed`.
    Dead,
}

/// Counters kept by a [`FaultInjector`] (and surfaced through
/// [`Driver::fault_stats`](crate::Driver::fault_stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames dropped by the drop probability.
    pub random_drops: u64,
    /// Frames dropped inside a link-down window.
    pub link_down_drops: u64,
    /// Frames with an injected bit flip.
    pub corrupted: u64,
    /// Frames delivered late by a latency spike.
    pub delayed: u64,
    /// Posts refused because the NIC had died (first refusal counts
    /// the death itself).
    pub dead_posts: u64,
}

impl FaultStats {
    /// Total frames interfered with (any category).
    pub fn total(&self) -> u64 {
        self.random_drops + self.link_down_drops + self.corrupted + self.delayed + self.dead_posts
    }
}

/// Executes a [`FaultPlan`] frame by frame.
///
/// Drivers call [`FaultInjector::on_post`] with the current time and
/// the assembled frame just before handing it to the wire; the verdict
/// tells them to deliver (possibly late, possibly corrupted), drop, or
/// refuse the post because the NIC is dead.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
    stats: FaultStats,
    dead: bool,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DetRng::new(plan.seed);
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
            dead: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Has a scheduled NIC death already fired?
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Judges one frame posted at `now_ns`. May flip a bit in `frame`
    /// in place (corruption). Deterministic: the same plan and the
    /// same sequence of calls produce the same verdicts.
    pub fn on_post(&mut self, now_ns: u64, frame: &mut [u8]) -> FaultVerdict {
        if !self.dead {
            for ev in &self.plan.events {
                if let FaultEvent::NicDeath { at_ns } = ev {
                    if now_ns >= *at_ns {
                        self.dead = true;
                        break;
                    }
                }
            }
        }
        if self.dead {
            self.stats.dead_posts += 1;
            return FaultVerdict::Dead;
        }
        for ev in &self.plan.events {
            if let FaultEvent::LinkDown { from_ns, until_ns } = ev {
                if now_ns >= *from_ns && now_ns < *until_ns {
                    self.stats.link_down_drops += 1;
                    return FaultVerdict::Drop;
                }
            }
        }
        // Coin flips are drawn unconditionally (drop first, then
        // corrupt) so the stream stays aligned whatever the outcomes.
        let drop_roll = self.rng.next_unit();
        let corrupt_roll = self.rng.next_unit();
        let bit_pick = self.rng.next_u64();
        if drop_roll < self.plan.drop_probability {
            self.stats.random_drops += 1;
            return FaultVerdict::Drop;
        }
        if corrupt_roll < self.plan.corrupt_probability && !frame.is_empty() {
            let bit = bit_pick as usize % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            self.stats.corrupted += 1;
        }
        let mut extra = 0u64;
        for ev in &self.plan.events {
            if let FaultEvent::LatencySpike {
                from_ns,
                until_ns,
                extra_ns,
            } = ev
            {
                if now_ns >= *from_ns && now_ns < *until_ns {
                    extra = extra.saturating_add(*extra_ns);
                }
            }
        }
        if extra > 0 {
            self.stats.delayed += 1;
        }
        FaultVerdict::Deliver {
            extra_delay_ns: extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = DetRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn link_down_window_drops_then_recovers() {
        let plan = FaultPlan::new(1).link_down(100, 200);
        let mut inj = FaultInjector::new(plan);
        let mut f = vec![0u8; 8];
        assert_eq!(
            inj.on_post(50, &mut f),
            FaultVerdict::Deliver { extra_delay_ns: 0 }
        );
        assert_eq!(inj.on_post(150, &mut f), FaultVerdict::Drop);
        assert_eq!(
            inj.on_post(250, &mut f),
            FaultVerdict::Deliver { extra_delay_ns: 0 }
        );
        assert_eq!(inj.stats().link_down_drops, 1);
    }

    #[test]
    fn nic_death_is_permanent() {
        let plan = FaultPlan::new(1).nic_death(1000);
        let mut inj = FaultInjector::new(plan);
        let mut f = vec![0u8; 8];
        assert!(matches!(
            inj.on_post(999, &mut f),
            FaultVerdict::Deliver { .. }
        ));
        assert_eq!(inj.on_post(1000, &mut f), FaultVerdict::Dead);
        // Still dead later, even if the clock were to rewind.
        assert_eq!(inj.on_post(500, &mut f), FaultVerdict::Dead);
        assert_eq!(inj.stats().dead_posts, 2);
    }

    #[test]
    fn latency_spike_adds_delay_inside_the_window() {
        let plan = FaultPlan::new(1).latency_spike(100, 200, 5_000);
        let mut inj = FaultInjector::new(plan);
        let mut f = vec![0u8; 8];
        assert_eq!(
            inj.on_post(150, &mut f),
            FaultVerdict::Deliver {
                extra_delay_ns: 5_000
            }
        );
        assert_eq!(
            inj.on_post(250, &mut f),
            FaultVerdict::Deliver { extra_delay_ns: 0 }
        );
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = FaultPlan::new(3).with_corrupt_probability(0.999);
        let mut inj = FaultInjector::new(plan);
        let clean = vec![0u8; 64];
        let mut frame = clean.clone();
        let v = inj.on_post(0, &mut frame);
        assert!(matches!(v, FaultVerdict::Deliver { .. }));
        let flipped: u32 = frame
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit must flip");
        assert_eq!(inj.stats().corrupted, 1);
    }

    #[test]
    fn same_plan_same_call_sequence_same_verdicts() {
        let run = || {
            let mut inj = FaultInjector::new(
                FaultPlan::new(99)
                    .with_drop_probability(0.3)
                    .with_corrupt_probability(0.2),
            );
            let mut out = Vec::new();
            for i in 0..200u64 {
                let mut f = vec![i as u8; 16];
                out.push((inj.on_post(i * 10, &mut f), f));
            }
            (out, inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn randomized_plan_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::randomized(1234, 1_000_000);
        let b = FaultPlan::randomized(1234, 1_000_000);
        assert_eq!(a.events, b.events);
        assert_eq!(a.drop_probability, b.drop_probability);
        assert_eq!(a.corrupt_probability, b.corrupt_probability);
        assert!(!a.events.is_empty());
        assert!(a
            .events
            .iter()
            .all(|e| !matches!(e, FaultEvent::NicDeath { .. })));
    }
}
