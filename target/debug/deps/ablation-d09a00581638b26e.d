/root/repo/target/debug/deps/ablation-d09a00581638b26e.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-d09a00581638b26e: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
