//! Differential property: the sharded progression runtime is
//! observationally equivalent to the single-engine runtime.
//!
//! For an arbitrary message schedule, running it through a sharded
//! [`ThreadedEngine`] (2–4 shards over as many mem rails) and through
//! the classic single-shard runtime must produce:
//!
//! * **byte identity** — every flow delivers the same payload bytes;
//! * **per-flow ordering** — payloads arrive in submission order
//!   within each (source, tag) flow;
//! * **conservation** — both runtimes account exactly one submitted
//!   request per message, one posted receive per message, zero
//!   duplicate completions and zero dropped duplicates.
//!
//! The schedule mixes eager-sized payloads with ones crossing the mem
//! driver's 64 KiB rendezvous threshold, so the RTS/CTS path crosses
//! shards too.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use newmadeleine::core::prelude::*;
use newmadeleine::core::ThreadedEngine;
use newmadeleine::net::mem::mem_fabric;
use newmadeleine::net::NullMeter;
use newmadeleine::sim::NodeId;

use proptest::prelude::*;

const WATCHDOG: Duration = Duration::from_secs(60);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic payload for message `idx` of the schedule: the
/// content depends only on (tag, idx, len), so both runtimes send the
/// same bytes.
fn payload(tag: u32, idx: usize, len: usize) -> Vec<u8> {
    let mut s = 0x5eed_d1ff_0000_0000 ^ (u64::from(tag) << 32) ^ idx as u64;
    (0..len)
        .map(|j| (splitmix(&mut s) ^ j as u64) as u8)
        .collect()
}

/// What an application observes after running `msgs` (a list of
/// (tag, len) sends node 0 → node 1, submitted in list order): the
/// delivered payload sequence per flow, plus the conservation totals.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    /// tag → payloads in delivery order.
    flows: BTreeMap<u32, Vec<Vec<u8>>>,
    submitted: u64,
    recvs_posted: u64,
    duplicates_dropped: u64,
    completion_duplicates: u64,
}

/// Runs the schedule over `shards` progression shards (and as many mem
/// rails) and returns everything the application can observe.
fn run(shards: usize, msgs: &[(u32, usize)]) -> Observed {
    let mut a_rails: Vec<Box<dyn newmadeleine::net::Driver>> = Vec::new();
    let mut b_rails: Vec<Box<dyn newmadeleine::net::Driver>> = Vec::new();
    for _ in 0..shards {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        a_rails.push(Box::new(a));
        b_rails.push(Box::new(b));
    }
    let launch = |drivers: Vec<Box<dyn newmadeleine::net::Driver>>| {
        ThreadedEngine::launch(
            NmadEngine::new(
                drivers,
                Box::new(NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            ),
            EngineConfig::sharded(shards),
        )
    };
    let (a, b) = (launch(a_rails), launch(b_rails));
    let (ah, bh) = (a.handle(), b.handle());
    let t0 = Instant::now();

    // Receives post in schedule order per flow: recv j of flow `tag`
    // matches send j of that flow (per-flow FIFO is part of the
    // property).
    let recvs: Vec<_> = msgs
        .iter()
        .map(|&(tag, _)| bh.post_recv(NodeId(0), Tag(tag), 80_000))
        .collect();
    let sends: Vec<_> = msgs
        .iter()
        .enumerate()
        .map(|(idx, &(tag, len))| ah.isend(NodeId(1), Tag(tag), payload(tag, idx, len)))
        .collect();
    while !sends.iter().all(|&s| ah.is_send_done(s)) {
        assert!(t0.elapsed() < WATCHDOG, "sends never completed");
        std::thread::yield_now();
    }
    let mut flows: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
    for (&(tag, _), req) in msgs.iter().zip(recvs) {
        let done = loop {
            if let Some(done) = bh.try_take_recv(req) {
                break done;
            }
            assert!(t0.elapsed() < WATCHDOG, "recv never completed");
            std::thread::yield_now();
        };
        assert_eq!(done.src, NodeId(0));
        flows.entry(tag).or_default().push(done.data.to_vec());
    }
    let snap_a = ah.metrics();
    let snap_b = bh.metrics();
    let observed = Observed {
        flows,
        submitted: snap_a.engine.requests_submitted,
        recvs_posted: snap_b.engine.recvs_posted,
        duplicates_dropped: snap_b.engine.duplicates_dropped,
        completion_duplicates: ah.completion_duplicates() + bh.completion_duplicates(),
    };
    assert!(a.shutdown().tx_quiescent());
    assert!(b.shutdown().tx_quiescent());
    observed
}

proptest! {
    /// Sharded (2–4 shards) ≡ single-engine, for arbitrary schedules:
    /// identical per-flow byte sequences, identical conservation
    /// totals, zero duplicates on either side.
    #[test]
    fn sharded_runtime_is_observationally_equal_to_single_engine(
        shards in 2usize..5,
        msgs in proptest::collection::vec((0u32..6, 1usize..2_000), 1..25),
    ) {
        let single = run(1, &msgs);
        let sharded = run(shards, &msgs);
        prop_assert_eq!(&single, &sharded);
        prop_assert_eq!(single.submitted, msgs.len() as u64);
        prop_assert_eq!(single.recvs_posted, msgs.len() as u64);
        prop_assert_eq!(single.duplicates_dropped, 0);
        prop_assert_eq!(single.completion_duplicates, 0);
        // And the payloads really are what was submitted, in order.
        let mut expect: BTreeMap<u32, Vec<Vec<u8>>> = BTreeMap::new();
        for (idx, &(tag, len)) in msgs.iter().enumerate() {
            expect.entry(tag).or_default().push(payload(tag, idx, len));
        }
        prop_assert_eq!(&sharded.flows, &expect);
    }

    /// Same property with payloads crossing the 64 KiB rendezvous
    /// threshold, so the RTS/CTS handshake runs under sharding too.
    #[test]
    fn sharded_rendezvous_matches_single_engine(
        shards in 2usize..4,
        msgs in proptest::collection::vec((0u32..3, 60_000usize..75_000), 1..5),
    ) {
        let single = run(1, &msgs);
        let sharded = run(shards, &msgs);
        prop_assert_eq!(&single, &sharded);
        prop_assert_eq!(single.completion_duplicates, 0);
    }
}
