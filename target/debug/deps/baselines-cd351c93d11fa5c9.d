/root/repo/target/debug/deps/baselines-cd351c93d11fa5c9.d: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-cd351c93d11fa5c9.rmeta: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/codec.rs:
crates/baselines/src/direct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
