//! Wire format of the NewMadeleine engine.
//!
//! A *frame* is what one driver send moves: a frame header followed by a
//! sequence of *entries*. Multiplexing several entries — possibly from
//! different logical flows — into one frame is the engine's aggregation
//! mechanism; the per-entry headers are "the extra header systematically
//! added to the data for allowing the reordering and the multiplexing of
//! the packets" whose cost the paper measures in §5.1.
//!
//! Entry kinds:
//!
//! * [`Entry::Data`] — an eager application segment, payload inline;
//! * [`Entry::Rts`] — rendezvous request-to-send announcing a large
//!   segment (no payload);
//! * [`Entry::Cts`] — clear-to-send reply granting a rendezvous;
//! * [`Entry::RdvData`] — one chunk of granted rendezvous data, placed
//!   at `offset` in the receive buffer (chunking enables the multirail
//!   strategy to spread one segment over several NICs).

use crate::segment::{SeqNo, Tag};
use std::fmt;

/// Frame header: magic (2) + version (1) + flags (1) + entry count (2)
/// + reserved (2).
pub const FRAME_HEADER_LEN: usize = 8;
/// Fixed entry header: kind (1) + flags (1) + reserved (2) + tag (4) +
/// seq (4) + len (4) + offset (4).
pub const ENTRY_HEADER_LEN: usize = 20;

const MAGIC: u16 = 0xAD3E;
const VERSION: u8 = 1;

const KIND_DATA: u8 = 1;
const KIND_RTS: u8 = 2;
const KIND_CTS: u8 = 3;
const KIND_RDV_DATA: u8 = 4;
const KIND_CREDIT: u8 = 5;

/// Entry flag: this rendezvous chunk is the segment's last.
pub const EF_LAST_CHUNK: u8 = 0b0000_0001;

/// A parsed entry borrowing its payload from the frame buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry<'a> {
    /// An eager application segment with inline payload.
    Data {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Payload bytes.
        payload: &'a [u8],
    },
    /// Rendezvous request-to-send (no payload).
    Rts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// Rendezvous clear-to-send grant.
    Cts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// One chunk of granted rendezvous payload.
    RdvData {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Byte offset within the full segment.
        offset: u32,
        /// Whether this is the final chunk of its segment.
        last: bool,
        /// Payload bytes.
        payload: &'a [u8],
    },
    /// Returns `count` eager-frame credits to the sender (flow
    /// control; see `engine`).
    /// Appends a credit-return entry (flow control).
    Credit {
        /// Number of credits returned.
        count: u32,
    },
}

/// Wire decoding failures.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the structure was complete.
    Truncated,
    /// The frame does not start with the protocol magic.
    BadMagic(u16),
    /// The frame uses an unsupported protocol version.
    BadVersion(u8),
    /// Unknown entry kind byte.
    BadKind(u8),
    /// Bytes left over after the last declared entry.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown entry kind {k}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last entry"),
        }
    }
}

impl std::error::Error for WireError {}

/// Incrementally builds one frame.
pub struct FrameBuilder {
    buf: Vec<u8>,
    count: u16,
    payload_segs: usize,
    payload_bytes: usize,
}

impl FrameBuilder {
    /// Starts an empty frame.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(0); // flags
        buf.extend_from_slice(&0u16.to_le_bytes()); // count, patched in finish()
        buf.extend_from_slice(&0u16.to_le_bytes()); // reserved
        FrameBuilder {
            buf,
            count: 0,
            payload_segs: 0,
            payload_bytes: 0,
        }
    }

    fn push_header(&mut self, kind: u8, flags: u8, tag: Tag, seq: SeqNo, len: u32, offset: u32) {
        self.buf.push(kind);
        self.buf.push(flags);
        self.buf.extend_from_slice(&0u16.to_le_bytes());
        self.buf.extend_from_slice(&tag.0.to_le_bytes());
        self.buf.extend_from_slice(&seq.0.to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(&offset.to_le_bytes());
        self.count = self.count.checked_add(1).expect("entry count overflow");
    }

    /// Push data.
    pub fn push_data(&mut self, tag: Tag, seq: SeqNo, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("segment too large for wire");
        self.push_header(KIND_DATA, 0, tag, seq, len, 0);
        self.buf.extend_from_slice(payload);
        self.payload_segs += 1;
        self.payload_bytes += payload.len();
    }

    /// Push rts.
    pub fn push_rts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_header(KIND_RTS, 0, tag, seq, total, 0);
    }

    /// Push cts.
    pub fn push_cts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_header(KIND_CTS, 0, tag, seq, total, 0);
    }

    /// Push rdv data.
    pub fn push_rdv_data(&mut self, tag: Tag, seq: SeqNo, offset: u32, last: bool, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("chunk too large for wire");
        let flags = if last { EF_LAST_CHUNK } else { 0 };
        self.push_header(KIND_RDV_DATA, flags, tag, seq, len, offset);
        self.buf.extend_from_slice(payload);
        self.payload_segs += 1;
        self.payload_bytes += payload.len();
    }

    /// Push credit.
    pub fn push_credit(&mut self, count: u32) {
        self.push_header(KIND_CREDIT, 0, Tag(0), SeqNo(0), count, 0);
    }

    /// Entries pushed so far.
    pub fn entry_count(&self) -> u16 {
        self.count
    }

    /// Number of distinct payload regions a gather-capable NIC would
    /// DMA separately (staging-copy decision input).
    pub fn payload_segments(&self) -> usize {
        self.payload_segs
    }

    /// Total payload bytes (staging-copy cost input).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Current frame length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes and returns the wire bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[4..6].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for FrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses a frame into entries.
pub fn parse_frame(bytes: &[u8]) -> Result<Vec<Entry<'_>>, WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if bytes[2] != VERSION {
        return Err(WireError::BadVersion(bytes[2]));
    }
    let count = u16::from_le_bytes([bytes[4], bytes[5]]) as usize;
    let mut entries = Vec::with_capacity(count);
    let mut at = FRAME_HEADER_LEN;
    for _ in 0..count {
        if bytes.len() < at + ENTRY_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let h = &bytes[at..at + ENTRY_HEADER_LEN];
        let kind = h[0];
        let flags = h[1];
        let tag = Tag(u32::from_le_bytes(h[4..8].try_into().expect("4")));
        let seq = SeqNo(u32::from_le_bytes(h[8..12].try_into().expect("4")));
        let len = u32::from_le_bytes(h[12..16].try_into().expect("4"));
        let offset = u32::from_le_bytes(h[16..20].try_into().expect("4"));
        at += ENTRY_HEADER_LEN;
        let entry = match kind {
            KIND_RTS => Entry::Rts {
                tag,
                seq,
                total: len,
            },
            KIND_CTS => Entry::Cts {
                tag,
                seq,
                total: len,
            },
            KIND_CREDIT => Entry::Credit { count: len },
            KIND_DATA | KIND_RDV_DATA => {
                let end = at + len as usize;
                if bytes.len() < end {
                    return Err(WireError::Truncated);
                }
                let payload = &bytes[at..end];
                at = end;
                if kind == KIND_DATA {
                    Entry::Data { tag, seq, payload }
                } else {
                    Entry::RdvData {
                        tag,
                        seq,
                        offset,
                        last: flags & EF_LAST_CHUNK != 0,
                        payload,
                    }
                }
            }
            k => return Err(WireError::BadKind(k)),
        };
        entries.push(entry);
    }
    if at != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - at));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_roundtrips() {
        let frame = FrameBuilder::new().finish();
        assert_eq!(frame.len(), FRAME_HEADER_LEN);
        assert_eq!(parse_frame(&frame).unwrap(), vec![]);
    }

    #[test]
    fn mixed_entries_roundtrip() {
        let mut fb = FrameBuilder::new();
        fb.push_cts(Tag(7), SeqNo(1), 1 << 20);
        fb.push_data(Tag(3), SeqNo(0), b"small payload");
        fb.push_rts(Tag(3), SeqNo(1), 512 * 1024);
        fb.push_rdv_data(Tag(9), SeqNo(4), 4096, true, b"chunk");
        assert_eq!(fb.entry_count(), 4);
        assert_eq!(fb.payload_segments(), 2);
        assert_eq!(fb.payload_bytes(), 13 + 5);
        let frame = fb.finish();
        let entries = parse_frame(&frame).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries[0],
            Entry::Cts {
                tag: Tag(7),
                seq: SeqNo(1),
                total: 1 << 20
            }
        );
        assert_eq!(
            entries[1],
            Entry::Data {
                tag: Tag(3),
                seq: SeqNo(0),
                payload: b"small payload"
            }
        );
        assert_eq!(
            entries[2],
            Entry::Rts {
                tag: Tag(3),
                seq: SeqNo(1),
                total: 512 * 1024
            }
        );
        assert_eq!(
            entries[3],
            Entry::RdvData {
                tag: Tag(9),
                seq: SeqNo(4),
                offset: 4096,
                last: true,
                payload: b"chunk"
            }
        );
    }

    #[test]
    fn header_sizes_match_constants() {
        let mut fb = FrameBuilder::new();
        fb.push_data(Tag(0), SeqNo(0), b"abc");
        let frame = fb.finish();
        assert_eq!(frame.len(), FRAME_HEADER_LEN + ENTRY_HEADER_LEN + 3);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = FrameBuilder::new().finish();
        frame[0] = 0;
        assert_eq!(
            parse_frame(&frame).unwrap_err(),
            WireError::BadMagic(0xAD00)
        );
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut frame = FrameBuilder::new().finish();
        frame[2] = 99;
        assert_eq!(parse_frame(&frame).unwrap_err(), WireError::BadVersion(99));
    }

    #[test]
    fn truncation_is_detected_at_every_boundary() {
        let mut fb = FrameBuilder::new();
        fb.push_data(Tag(1), SeqNo(2), b"payload!");
        let frame = fb.finish();
        for cut in 1..frame.len() {
            let err = parse_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadMagic(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = {
            let mut fb = FrameBuilder::new();
            fb.push_rts(Tag(1), SeqNo(0), 100);
            fb.finish()
        };
        frame.push(0xFF);
        assert_eq!(
            parse_frame(&frame).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut fb = FrameBuilder::new();
        fb.push_rts(Tag(1), SeqNo(0), 100);
        let mut frame = fb.finish();
        frame[FRAME_HEADER_LEN] = 42;
        assert_eq!(parse_frame(&frame).unwrap_err(), WireError::BadKind(42));
    }

    #[test]
    fn credit_entry_roundtrips() {
        let mut fb = FrameBuilder::new();
        fb.push_credit(3);
        let frame = fb.finish();
        assert_eq!(
            parse_frame(&frame).unwrap(),
            vec![Entry::Credit { count: 3 }]
        );
    }

    #[test]
    fn last_chunk_flag_roundtrips() {
        for last in [false, true] {
            let mut fb = FrameBuilder::new();
            fb.push_rdv_data(Tag(1), SeqNo(1), 0, last, b"x");
            let frame = fb.finish();
            match parse_frame(&frame).unwrap()[0] {
                Entry::RdvData { last: l, .. } => assert_eq!(l, last),
                ref e => panic!("wrong entry {e:?}"),
            }
        }
    }
}
