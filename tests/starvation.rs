//! Starvation regression: under a saturating flood of `Urgent`
//! traffic, a `Bulk` flow still completes within the aging bound of
//! the priority-lane strategy.
//!
//! [`StratLanes`] promotes a segment one lane per `age_step`
//! submissions that entered the window after it, so a `Bulk` segment
//! is served as `Urgent` after at most `3 * age_step` submissions —
//! starvation-freedom is a bound, not a hope. This test drives the
//! engine-level co-simulation (not the strategy in isolation): one
//! Bulk message is submitted, then Urgent messages flood the same
//! destination fast enough that the urgent lane never empties, and we
//! count how many urgent completions the Bulk flow had to wait
//! through. Everything is seeded and virtual-time deterministic, so
//! the bound is exact and can gate in CI.

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::Driver;
use newmadeleine::sim::{nic, shared_world, NodeId, SharedWorld, SimConfig};

/// Urgent messages big enough that one frame (rendezvous threshold of
/// payload) drains only a handful of them: the flood stays saturating
/// with a modest outstanding backlog.
const URGENT_MIN: usize = 2_048;
const URGENT_SPREAD: usize = 2_048;

/// Outstanding urgent messages kept in flight at all times.
const BACKLOG: usize = 64;

/// Flood size cap; far above the aging bound, so hitting it means the
/// Bulk flow starved.
const MAX_URGENT: usize = 4_000;

const SEED: u64 = 0x5EED_1A9E;

/// Deterministic size jitter for the flood (splitmix64 step).
fn jitter(i: u64) -> u64 {
    let mut z = SEED.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn engine(world: &SharedWorld, node: u32) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), newmadeleine::sim::RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        Box::new(StratLanes::new()),
        EngineCosts::zero(),
    )
}

#[test]
fn bulk_flow_completes_within_the_aging_bound_under_urgent_flood() {
    let age_step = StratLanes::new().age_step;
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut tx = engine(&world, 0);
    let mut rx = engine(&world, 1);

    // The Bulk message goes in first; the flood starts right behind
    // it. Half a frame of payload: far too big to ride along in the
    // slack a saturated frame leaves behind the urgent aggregate, so
    // only aging promotion — which moves it to the *front* of the
    // schedule scan — can get it on the wire.
    let bulk_len = 16_384usize;
    let bulk_recv = rx.post_recv(NodeId(0), Tag(0), bulk_len);
    let bulk_send = tx.submit_send_parts(
        NodeId(1),
        Tag(0),
        vec![(bytes::Bytes::from(vec![0xB5u8; bulk_len]), Priority::Bulk)],
        None,
    );

    let mut submitted = 0usize;
    let mut outstanding: Vec<(RecvReqId, usize)> = Vec::new(); // recv, index
    let mut urgent_done_before_bulk = 0usize;
    let mut bulk_done_at_submissions: Option<usize> = None;

    for _ in 0..10_000_000u64 {
        // Keep the urgent lane saturated.
        while submitted < MAX_URGENT && outstanding.len() < BACKLOG {
            let len = URGENT_MIN + (jitter(submitted as u64) as usize % URGENT_SPREAD);
            let tag = Tag(1 + submitted as u32);
            let req = rx.post_recv(NodeId(0), tag, len);
            tx.submit_send_parts(
                NodeId(1),
                tag,
                vec![(bytes::Bytes::from(vec![0xF1u8; len]), Priority::Urgent)],
                None,
            );
            outstanding.push((req, submitted));
            submitted += 1;
        }

        let moved = tx.progress_until_idle() | rx.progress_until_idle();

        if bulk_done_at_submissions.is_none() && rx.is_recv_done(bulk_recv) {
            bulk_done_at_submissions = Some(submitted);
        }
        let mut i = 0;
        while i < outstanding.len() {
            if rx.is_recv_done(outstanding[i].0) {
                rx.try_take_recv(outstanding[i].0);
                if bulk_done_at_submissions.is_none() {
                    urgent_done_before_bulk += 1;
                }
                outstanding.swap_remove(i);
            } else {
                i += 1;
            }
        }

        if bulk_done_at_submissions.is_some()
            && submitted == MAX_URGENT
            && outstanding.is_empty()
            && tx.is_send_done(bulk_send)
        {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!(
                "starvation sim deadlock:\n{}",
                world.lock().pending_summary()
            );
        }
    }

    // The Bulk flow completed at all — and within the aging bound.
    // Promotion to the urgent lane takes at most NUM_LANES - 1 age
    // steps of submissions; allow the in-flight backlog plus one frame
    // worth of same-instant completions as slack.
    let bound = 3 * age_step as usize + 2 * BACKLOG;
    let done_at = bulk_done_at_submissions.unwrap_or_else(|| {
        panic!("bulk flow starved: {MAX_URGENT} urgent messages completed first")
    });
    assert!(
        urgent_done_before_bulk <= bound,
        "bulk waited through {urgent_done_before_bulk} urgent completions, aging bound is {bound}"
    );
    assert!(
        done_at <= bound,
        "bulk completed only after {done_at} urgent submissions, aging bound is {bound}"
    );
    // The flood really did defer it: without lane pressure the bulk
    // message would complete among the first few — aging, not luck,
    // is what un-starved it.
    assert!(
        urgent_done_before_bulk >= age_step as usize,
        "flood was not saturating: only {urgent_done_before_bulk} urgent completions before bulk"
    );
}
