/root/repo/target/debug/deps/lossy-ad7e5ad34e0a1a98.d: crates/bench/src/bin/lossy.rs

/root/repo/target/debug/deps/lossy-ad7e5ad34e0a1a98: crates/bench/src/bin/lossy.rs

crates/bench/src/bin/lossy.rs:
