//! Co-simulation driving loop.
//!
//! Engines built on the simulator are ordinary polled state machines:
//! each exposes a `progress() -> bool` step that returns whether it made
//! any progress (posted a send, consumed a packet, completed a request).
//! The runner alternates between (a) pumping every engine until all are
//! quiescent and (b) advancing virtual time to the next event. This is
//! the same structure as the paper's engine, where request processing is
//! tied to NIC activity rather than the application workflow (§3.1).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;
use crate::topo::SimConfig;
use crate::world::SimWorld;

/// A `SimWorld` shared between the engines of every node in one
/// process. The simulation itself is single-threaded; the mutex exists
/// so drivers can hold cheap cloneable handles.
pub type SharedWorld = Arc<Mutex<SimWorld>>;

/// Builds a shared world from a configuration.
pub fn shared_world(config: SimConfig) -> SharedWorld {
    Arc::new(Mutex::new(SimWorld::new(config)))
}

/// Error returned when the simulation can no longer move: every engine
/// is quiescent, the goal predicate is false, and no event is pending.
#[derive(Debug)]
pub struct Deadlock {
    /// Human-readable description of the stuck state.
    pub detail: String,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation deadlock: {}", self.detail)
    }
}

impl std::error::Error for Deadlock {}

/// Safety valve: an engine claiming progress this many consecutive
/// rounds without the goal being reached is livelocked (a bug).
const LIVELOCK_ROUNDS: usize = 1_000_000;

/// Runs `engines` against `world` until `done` returns true.
///
/// Returns the virtual time at which the goal was observed. A
/// [`Deadlock`] carries a dump of outstanding simulator state.
pub fn run_until(
    world: &SharedWorld,
    engines: &mut [&mut dyn FnMut() -> bool],
    mut done: impl FnMut() -> bool,
) -> Result<SimTime, Deadlock> {
    let mut rounds = 0usize;
    loop {
        // Pump all engines to quiescence at the current instant.
        loop {
            let mut any = false;
            for engine in engines.iter_mut() {
                // Every engine runs every round: progress by one engine
                // (e.g. a delivered packet) usually enables another.
                any |= engine();
            }
            if done() {
                return Ok(world.lock().now());
            }
            if !any {
                break;
            }
            rounds += 1;
            if rounds > LIVELOCK_ROUNDS {
                return Err(Deadlock {
                    detail: format!(
                        "engines spun {LIVELOCK_ROUNDS} rounds without reaching the goal\n{}",
                        world.lock().pending_summary()
                    ),
                });
            }
        }
        // Everyone is stuck at this instant: move the clock.
        let advanced = world.lock().advance();
        if advanced.is_none() {
            return Err(Deadlock {
                detail: format!(
                    "no pending events and goal not reached\n{}",
                    world.lock().pending_summary()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic;
    use crate::topo::{NodeId, RailId};

    const R0: RailId = RailId(0);
    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn run_until_drives_a_ping_across() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        world.lock().post_send(N0, R0, N1, b"ping".to_vec());

        let got = std::cell::Cell::new(false);
        let w2 = world.clone();
        let mut rx = || {
            if got.get() {
                return false;
            }
            if let Some(p) = w2.lock().poll_recv(N1, R0) {
                assert_eq!(p.payload, b"ping");
                got.set(true);
                true
            } else {
                false
            }
        };
        let t = run_until(&world, &mut [&mut rx], || got.get()).expect("no deadlock");
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn run_until_reports_deadlock() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        // Nothing ever sent: waiting for a receive must deadlock.
        let w2 = world.clone();
        let mut rx = || w2.lock().poll_recv(N1, R0).is_some();
        let err = run_until(&world, &mut [&mut rx], || false).unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn engines_interleave_request_response() {
        // Node 1 echoes whatever it receives; node 0 waits for the echo.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        world.lock().post_send(N0, R0, N1, vec![9u8; 64]);

        let done = std::cell::Cell::new(false);
        let we = world.clone();
        let mut echo = || {
            // NB: bind the poll result before re-locking — an `if let`
            // scrutinee would hold the guard across the second lock
            // (edition-2021 temporary scope) and self-deadlock.
            let delivered = we.lock().poll_recv(N1, R0);
            if let Some(p) = delivered {
                we.lock().post_send(N1, R0, N0, p.payload);
                true
            } else {
                false
            }
        };
        let wr = world.clone();
        let mut reply = || {
            if let Some(p) = wr.lock().poll_recv(N0, R0) {
                assert_eq!(p.payload.len(), 64);
                done.set(true);
                true
            } else {
                false
            }
        };
        let t = run_until(&world, &mut [&mut echo, &mut reply], || done.get()).unwrap();
        // Round trip ≥ 2 one-way times.
        let one_way = nic::mx_myri10g().one_way_time(64);
        assert!(t.saturating_since(SimTime::ZERO) >= one_way + one_way);
    }
}
