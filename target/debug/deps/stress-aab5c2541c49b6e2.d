/root/repo/target/debug/deps/stress-aab5c2541c49b6e2.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-aab5c2541c49b6e2.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
