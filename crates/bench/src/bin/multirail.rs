//! Multirail extension study (paper §4 "multi-rails strategy" and §7
//! future work: "exploit multiple, heterogeneous physical networks
//! within the same application").
//!
//! Transfers large messages over (a) MX alone, (b) Quadrics alone, and
//! (c) both rails with the multirail strategy splitting each message
//! heterogeneously (proportional to rail bandwidth). Reports the
//! observed per-rail byte split and the aggregate bandwidth.
//!
//! Run: `cargo run --release -p bench --bin multirail [-- --quick]`

use bench::{fmt_size, transfer_multirail, Table};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_sim::nic;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 4 };
    let sizes: &[usize] = if quick {
        &[256 * 1024, 1 << 20]
    } else {
        &[256 * 1024, 512 * 1024, 1 << 20, 2 << 20, 4 << 20, 8 << 20]
    };

    println!("\n## Heterogeneous multirail: MX (1240 MB/s) + Quadrics (880 MB/s)\n");
    let mut table = Table::new(vec![
        "size",
        "MX only (MB/s)",
        "Quadrics only (MB/s)",
        "multirail (MB/s)",
        "split MX/Qs",
        "speedup vs MX",
    ]);

    let multirail = EngineKind::MadMpi(StrategyKind::Multirail);
    let single = EngineKind::MadMpi(StrategyKind::Aggreg);

    for &size in sizes {
        let (mx, _) = transfer_multirail(single, vec![nic::mx_myri10g()], size, iters);
        let (qs, _) = transfer_multirail(single, vec![nic::quadrics_qm500()], size, iters);
        let (both, split) = transfer_multirail(
            multirail,
            vec![nic::mx_myri10g(), nic::quadrics_qm500()],
            size,
            iters,
        );
        let total_split: u64 = split.iter().sum();
        let pct = |b: u64| 100.0 * b as f64 / total_split.max(1) as f64;
        table.row(vec![
            fmt_size(size),
            format!("{:.0}", mx.bandwidth_mbs),
            format!("{:.0}", qs.bandwidth_mbs),
            format!("{:.0}", both.bandwidth_mbs),
            format!("{:.0}%/{:.0}%", pct(split[0]), pct(split[1])),
            format!("{:.2}x", both.bandwidth_mbs / mx.bandwidth_mbs),
        ]);
    }
    table.print();
    println!(
        "\n- expected split ≈ 58%/42% (proportional to 1240/880 MB/s); speedup approaches\n  (1240+880)/1240 ≈ 1.7x for large messages."
    );
}
