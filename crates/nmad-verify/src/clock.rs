//! Vector clocks over model-thread ids.
//!
//! Every synchronisation event in the model runtime carries one of
//! these: stores remember the writer's clock (to decide which stores a
//! later load may still read), release operations publish it, acquire
//! operations join it. The clock is a plain `Vec<u32>` indexed by
//! model thread id — executions involve a handful of threads, so no
//! sparse representation is needed.

use std::hash::{Hash, Hasher};

/// A vector clock: component `t` counts synchronisation events
/// performed by model thread `t`.
#[derive(Clone, Debug, Default)]
pub struct VClock {
    parts: Vec<u32>,
}

impl PartialEq for VClock {
    fn eq(&self, other: &VClock) -> bool {
        // Trailing zeros are not significant.
        self.leq(other) && other.leq(self)
    }
}

impl Eq for VClock {}

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> Self {
        VClock::default()
    }

    /// This thread's own component, advanced by [`tick`](Self::tick).
    pub fn get(&self, tid: usize) -> u32 {
        self.parts.get(tid).copied().unwrap_or(0)
    }

    /// Advances component `tid` by one event.
    pub fn tick(&mut self, tid: usize) {
        if self.parts.len() <= tid {
            self.parts.resize(tid + 1, 0);
        }
        self.parts[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.parts.len() < other.parts.len() {
            self.parts.resize(other.parts.len(), 0);
        }
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True when every component of `self` is ≤ the matching component
    /// of `other` — i.e. the event stamped `self` happens-before (or
    /// is) any event that has observed `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.parts
            .iter()
            .enumerate()
            .all(|(t, &c)| c <= other.get(t))
    }
}

impl Hash for VClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Trailing zeros are not significant (a short clock equals the
        // same clock padded with zeros), so hash only the trimmed part.
        let trimmed = match self.parts.iter().rposition(|&c| c != 0) {
            Some(last) => &self.parts[..=last],
            None => &[],
        };
        trimmed.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_leq() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 1);
        assert_eq!(j.get(1), 1);
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VClock::new();
        let mut a = VClock::new();
        a.tick(3);
        assert!(zero.leq(&a));
        assert!(zero.leq(&zero));
    }

    #[test]
    fn hash_ignores_trailing_zeros() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn digest(c: &VClock) -> u64 {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        }
        let mut short = VClock::new();
        short.tick(0);
        // `long` observed a thread-5 clock of all zeros: same content,
        // longer backing vector.
        let mut long = VClock::new();
        long.tick(0);
        long.parts.resize(6, 0);
        assert_eq!(short, long.clone());
        assert_eq!(digest(&short), digest(&long));
    }
}
