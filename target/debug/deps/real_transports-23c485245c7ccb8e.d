/root/repo/target/debug/deps/real_transports-23c485245c7ccb8e.d: tests/real_transports.rs Cargo.toml

/root/repo/target/debug/deps/libreal_transports-23c485245c7ccb8e.rmeta: tests/real_transports.rs Cargo.toml

tests/real_transports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
