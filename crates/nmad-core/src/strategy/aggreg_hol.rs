//! Head-of-line-aware aggregation: the paper's aggregation strategy
//! with a cap on the aggregate whenever a more urgent packet is
//! pending on the rail.
//!
//! [`StratAggreg`](super::StratAggreg) fills each frame up to the
//! rendezvous threshold. That maximizes throughput, but a large
//! aggregate is also a head-of-line block: once handed to the NIC it
//! serializes in full before anything else — including an urgent
//! packet that arrived a microsecond later — can leave. This variant
//! keeps the FIFO aggregation discipline but bounds the damage:
//!
//! * while a segment of a *strictly more urgent* lane is pending in
//!   the window, lower-lane payload stops accumulating at `hol_cap`
//!   bytes (default: a quarter of the rendezvous threshold) instead of
//!   the full threshold, so the rail frees sooner for the urgent frame
//!   (the head entry is always admitted, so the window keeps draining
//!   even when it alone exceeds the cap);
//! * rendezvous chunks are admitted through the same deadline-aware
//!   cap as [`StratLanes`](super::StratLanes) (see
//!   [`super::rdv_admission_cap`]), so granted bulk transfers cannot
//!   monopolize the rail during an urgent burst either;
//! * destination choice prefers the destination of the oldest segment
//!   in the most urgent non-empty lane, so the capped frame is at
//!   least pointed where the urgency is — falling back to the FIFO
//!   front's destination whenever that preference yields an empty
//!   frame, so multi-destination windows always drain.
//!
//! `hol_cap` is the tail-vs-throughput knob: `usize::MAX` degenerates
//! to plain aggregation, 0 to one-urgent-era segment per frame.

use super::{
    contended_chunk, eager_cutoff, plan_ctrl, plan_rdv_chunk, rdv_admission_cap, Budget, FramePlan,
    NicView, PlanEntry, Strategy,
};
use crate::segment::NUM_LANES;
use crate::window::Window;

/// Default rendezvous deadline, in submission stamps.
pub const DEFAULT_HOL_RDV_DEADLINE: u64 = 2048;

/// See the module documentation.
#[derive(Clone, Debug)]
pub struct StratAggregHol {
    /// Aggregate payload cap while more urgent work is pending; when
    /// `None` it defaults to a quarter of the NIC's rendezvous
    /// threshold at schedule time.
    pub hol_cap: Option<usize>,
    /// Rendezvous ages past this admit full-size chunks even under
    /// expedited pressure.
    pub rdv_deadline: u64,
}

impl Default for StratAggregHol {
    fn default() -> Self {
        StratAggregHol {
            hol_cap: None,
            rdv_deadline: DEFAULT_HOL_RDV_DEADLINE,
        }
    }
}

impl StratAggregHol {
    /// Default tuning (cap = rendezvous threshold / 4).
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicit cap in payload bytes.
    pub fn with_cap(hol_cap: usize, rdv_deadline: u64) -> Self {
        StratAggregHol {
            hol_cap: Some(hol_cap),
            rdv_deadline,
        }
    }
}

impl Strategy for StratAggregHol {
    fn name(&self) -> &'static str {
        "aggreg_hol"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        // Point the frame where the urgency is; grants still win. The
        // FIFO front may live at a different destination though, and
        // [`Window::take_front_if`] never skips it — so if the
        // urgency-pointed frame comes out empty, retry at the front's
        // destination to keep the window draining.
        let hot = (0..NUM_LANES as u8).find(|&l| window.lane_depth(l) > 0);
        let primary = window
            .ctrl_ref()
            .front()
            .map(|c| c.dst)
            .or_else(|| {
                hot.and_then(|l| window.global_oldest_in_lane(l))
                    .map(|(d, _)| d)
            })
            .or_else(|| window.next_dst(nic.index))?;
        match self.frame_towards(primary, hot, window, nic) {
            Some(plan) => Some(plan),
            None => {
                let fallback = window.next_dst(nic.index)?;
                if fallback == primary {
                    return None;
                }
                self.frame_towards(fallback, hot, window, nic)
            }
        }
    }
}

impl StratAggregHol {
    /// Synthesizes one frame towards `dst`; `None` when nothing for
    /// that destination is admissible right now.
    fn frame_towards(
        &self,
        dst: nmad_sim::NodeId,
        hot: Option<u8>,
        window: &mut Window,
        nic: &NicView<'_>,
    ) -> Option<FramePlan> {
        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);
        let hol_cap = self
            .hol_cap
            .unwrap_or_else(|| (nic.caps.rdv_threshold / 4).max(1));

        plan_ctrl(&mut plan, window, &mut budget);

        let rdv_cap = rdv_admission_cap(window, dst, contended_chunk(nic.caps), self.rdv_deadline);
        plan_rdv_chunk(&mut plan, window, &mut budget, rdv_cap);

        // Aggregate under FIFO discipline, but payload from lanes less
        // urgent than `hot` stops accumulating at the HOL cap.
        let cutoff = eager_cutoff(nic.caps);
        loop {
            let fits = |w: &crate::segment::PackWrapper| {
                if w.dst != dst {
                    return false;
                }
                if w.len() > cutoff {
                    return true; // becomes a tiny RTS
                }
                if !budget.fits_data(w.len()) {
                    return false;
                }
                match hot {
                    // The first payload entry is always admitted — the
                    // cap bounds *growth* of the aggregate; refusing to
                    // send the front segment at all would stall the
                    // window (nothing else can leave under FIFO).
                    Some(h) if h < w.priority.lane() => {
                        budget.payload == 0 || budget.payload + w.len() <= hol_cap
                    }
                    _ => true,
                }
            };
            let Some(wrapper) = window.take_front_if(nic.index, fits) else {
                break;
            };
            if wrapper.len() > cutoff {
                if !budget.fits_bare() {
                    window.push_segment(wrapper, None);
                    break;
                }
                budget.add_bare();
                plan.entries.push(PlanEntry::Rts(wrapper));
            } else {
                budget.add_data(wrapper.len());
                plan.entries.push(PlanEntry::Data(wrapper));
            }
        }

        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use crate::window::RdvJob;
    use bytes::Bytes;
    use nmad_net::Capabilities;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn view(caps: &Capabilities) -> NicView<'_> {
        NicView { index: 0, caps }
    }

    fn seg(tag: u32, seq: u32, len: usize, priority: Priority) -> PackWrapper {
        PackWrapper {
            dst: NodeId(1),
            tag: Tag(tag),
            seq: SeqNo(seq),
            priority,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: seq as u64,
        }
    }

    fn payload_of(plan: &FramePlan) -> usize {
        plan.entries
            .iter()
            .map(|e| match e {
                PlanEntry::Data(w) => w.data.len(),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn caps_the_aggregate_while_urgent_work_is_pending() {
        let caps = caps();
        let cap = 1024;
        let mut w = Window::new(1);
        // Plenty of Normal payload, one Urgent segment queued behind.
        for seq in 0..20 {
            w.push_segment(seg(0, seq, 512, Priority::Normal), None);
        }
        w.push_segment(seg(1, 0, 64, Priority::Urgent), None);
        let mut s = StratAggregHol::with_cap(cap, DEFAULT_HOL_RDV_DEADLINE);
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        // FIFO still: only Normal segments until the cap stops the scan.
        assert!(
            payload_of(&plan) <= cap,
            "aggregate {} exceeds HOL cap {}",
            payload_of(&plan),
            cap
        );
        assert!(plan.reordered == 0, "HOL variant never reorders");
    }

    #[test]
    fn full_threshold_when_nothing_more_urgent_waits() {
        let caps = caps();
        let mut w = Window::new(1);
        for seq in 0..20 {
            w.push_segment(seg(0, seq, 512, Priority::Normal), None);
        }
        let mut s = StratAggregHol::with_cap(1024, DEFAULT_HOL_RDV_DEADLINE);
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        // hot == Normal itself: h < lane is false, no cap applies.
        assert!(
            payload_of(&plan) > 1024,
            "no cap without strictly more urgent work, got {}",
            payload_of(&plan)
        );
    }

    #[test]
    fn urgent_front_segments_aggregate_uncapped() {
        let caps = caps();
        let mut w = Window::new(1);
        for seq in 0..8 {
            w.push_segment(seg(1, seq, 512, Priority::Urgent), None);
        }
        let mut s = StratAggregHol::with_cap(1024, DEFAULT_HOL_RDV_DEADLINE);
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(
            plan.entries.len(),
            8,
            "urgent payload is never capped by its own lane"
        );
    }

    #[test]
    fn rdv_chunks_respect_the_contended_cap() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, 64, Priority::Urgent), None);
        let body: Bytes = vec![1u8; 200_000].into();
        w.push_rdv(RdvJob::new(NodeId(1), Tag(0), SeqNo(0), body, SendReqId(1)).with_order(0));
        let mut s = StratAggregHol::new();
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        let chunk = plan
            .entries
            .iter()
            .find_map(|e| match e {
                PlanEntry::RdvChunk(c) => Some(c.data.len()),
                _ => None,
            })
            .expect("chunk planned");
        assert!(chunk <= caps.rdv_threshold, "chunk {} over cap", chunk);
    }

    #[test]
    fn multi_destination_windows_keep_draining() {
        // The FIFO front lives at node 2 while the urgency points at
        // node 3: the strategy must fall back to the front's
        // destination instead of planning empty frames forever.
        let caps = caps();
        let mut w = Window::new(1);
        let mut normal = seg(0, 0, 512, Priority::Normal);
        normal.dst = NodeId(2);
        w.push_segment(normal, None);
        let mut urgent = seg(1, 0, 64, Priority::Urgent);
        urgent.dst = NodeId(3);
        w.push_segment(urgent, None);
        let mut s = StratAggregHol::new();
        let mut frames = 0;
        while let Some(plan) = s.schedule(&mut w, &view(&caps)) {
            assert!(!plan.is_empty());
            frames += 1;
            assert!(frames <= 4, "runaway scheduling");
        }
        assert!(w.is_empty(), "window stalled with {} frames", frames);
    }

    #[test]
    fn keeps_fifo_discipline_under_the_cap() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(0, 0, 900, Priority::Normal), None);
        w.push_segment(seg(0, 1, 900, Priority::Normal), None); // over cap
        w.push_segment(seg(2, 0, 16, Priority::Normal), None); // would fit
        w.push_segment(seg(1, 0, 64, Priority::Urgent), None);
        let mut s = StratAggregHol::with_cap(1024, DEFAULT_HOL_RDV_DEADLINE);
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        // Scan stops at the first capped segment: no skipping ahead.
        let tags: Vec<u32> = plan
            .entries
            .iter()
            .filter_map(|e| match e {
                PlanEntry::Data(w) => Some(w.tag.0),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![0], "FIFO stops at the capped segment");
    }
}
