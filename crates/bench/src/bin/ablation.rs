//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * **strategy ablation** — the fig. 3 multi-segment workload under
//!   every scheduling strategy (default / aggreg / reorder), isolating
//!   the value of aggregation and of reordering;
//! * **threshold sweep** — the same workload while varying the
//!   aggregation bound (the rendezvous threshold), showing where the
//!   paper's "accumulate until the cumulated length requires
//!   rendezvous" rule sits in the trade-off space;
//! * **datatype strategy ablation** — the fig. 4 workload: reordering
//!   is what lets small blocks coalesce past the in-queue large blocks.
//!
//! Run: `cargo run --release -p bench --bin ablation [-- --quick] [-- --json PATH]`

use bench::{
    byte_sizes, fmt_size, json_arg, pingpong_multiseg, pingpong_typed, write_json_report, Table,
};
use mad_mpi::{Datatype, EngineKind, StrategyKind};
use nmad_core::MetricsRegistry;
use nmad_sim::nic;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_arg();
    let iters = if quick { 1 } else { 4 };
    let registry = MetricsRegistry::new();

    strategy_ablation(iters, quick, &registry);
    threshold_sweep(iters, &registry);
    datatype_ablation(iters, quick, &registry);
    write_json_report(json.as_deref(), &registry);
}

fn strategy_ablation(iters: usize, quick: bool, registry: &MetricsRegistry) {
    println!("\n## Strategy ablation — fig. 3 workload (8 segments, MX)\n");
    let strategies = [
        StrategyKind::Default,
        StrategyKind::Aggreg,
        StrategyKind::Reorder,
    ];
    let mut headers: Vec<String> = vec!["seg size".into()];
    headers.extend(strategies.iter().map(|s| format!("{} (us)", s.name())));
    headers.extend(strategies.iter().map(|s| format!("{} frames", s.name())));
    let mut table = Table::new(headers);
    let max = if quick { 1024 } else { 16 * 1024 };
    for size in byte_sizes(4, max) {
        let samples: Vec<_> = strategies
            .iter()
            .map(|&s| pingpong_multiseg(EngineKind::MadMpi(s), nic::mx_myri10g(), 8, size, iters))
            .collect();
        for (strat, s) in strategies.iter().zip(&samples) {
            if let Some(m) = &s.metrics {
                registry.record(
                    format!("ablation/strategy/{}/{}", strat.name(), fmt_size(size)),
                    m.clone(),
                );
            }
        }
        let mut row = vec![fmt_size(size)];
        row.extend(samples.iter().map(|s| format!("{:.2}", s.one_way_us)));
        row.extend(samples.iter().map(|s| format!("{:.1}", s.frames_per_ping)));
        table.row(row);
    }
    table.print();
}

fn threshold_sweep(iters: usize, registry: &MetricsRegistry) {
    println!("\n## Aggregation-threshold sweep — 16×256 B burst, MX\n");
    let mut table = Table::new(vec!["threshold", "one-way (us)", "frames/ping"]);
    for threshold in [512usize, 1024, 4 * 1024, 16 * 1024, 32 * 1024, 128 * 1024] {
        let mut nic_model = nic::mx_myri10g();
        nic_model.rdv_threshold = threshold;
        let s = pingpong_multiseg(
            EngineKind::MadMpi(StrategyKind::Aggreg),
            nic_model,
            16,
            256,
            iters,
        );
        if let Some(m) = &s.metrics {
            registry.record(
                format!("ablation/threshold/{}", fmt_size(threshold)),
                m.clone(),
            );
        }
        table.row(vec![
            fmt_size(threshold),
            format!("{:.2}", s.one_way_us),
            format!("{:.1}", s.frames_per_ping),
        ]);
    }
    table.print();
    println!("\n- small thresholds fragment the burst; beyond the burst size the curve flattens.");
}

fn datatype_ablation(iters: usize, quick: bool, registry: &MetricsRegistry) {
    println!("\n## Datatype strategy ablation — fig. 4 workload, MX\n");
    let strategies = [
        StrategyKind::Default,
        StrategyKind::Aggreg,
        StrategyKind::Reorder,
    ];
    let mut headers: Vec<String> = vec!["msg size".into()];
    headers.extend(strategies.iter().map(|s| format!("{} (us)", s.name())));
    let mut table = Table::new(headers);
    let pair_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    for &pairs in pair_counts {
        let dtype = Datatype::alternating(64, 256 * 1024, pairs);
        let mut row = vec![fmt_size(pairs * 256 * 1024)];
        for &s in &strategies {
            let sample = pingpong_typed(EngineKind::MadMpi(s), nic::mx_myri10g(), &dtype, iters);
            if let Some(m) = &sample.metrics {
                registry.record(
                    format!(
                        "ablation/datatype/{}/{}",
                        s.name(),
                        fmt_size(pairs * 256 * 1024)
                    ),
                    m.clone(),
                );
            }
            row.push(format!("{:.0}", sample.one_way_us));
        }
        table.row(row);
    }
    table.print();
}
