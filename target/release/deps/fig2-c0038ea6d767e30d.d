/root/repo/target/release/deps/fig2-c0038ea6d767e30d.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-c0038ea6d767e30d: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
