//! The unified structural rule engine behind `xtask analyze`.
//!
//! One pass per file — [`crate::lexer::lex`] then
//! [`crate::tree::parse_items`] — feeds two layers:
//!
//! 1. The eight lexical rules from [`crate::lint`], re-run over the
//!    lexer's stripped view (one stripping pass, one engine).
//! 2. Five structural families over a name-based intra-workspace call
//!    graph rooted at `// HOT-PATH`-annotated functions:
//!    * `hot-panic-freedom` — no `unwrap`/`expect`/panic macros
//!      reachable from a hot root, and no slice indexing without `get`
//!      directly inside a hot-marked function; `// PANIC-OK: <reason>`
//!      (reason mandatory) is the escape hatch.
//!    * `hot-alloc` — no `Vec::`/`Box::new`/`vec!`/`format!`/
//!      `to_vec`/`to_owned`/`to_string`/`clone` directly inside a
//!      hot-marked function unless `// ALLOC-OK: <reason>`.
//!    * `hot-blocking` — no `thread::sleep`/`park`/`join`/condvar
//!      waits/OS-clock reads reachable from a hot root unless
//!      `// BLOCKING-OK: <reason>`; the sync facade and the shims are
//!      the allowed implementation sites.
//!    * `lock-order-cycle` — per-function Mutex acquisition nesting,
//!      propagated through the call graph (a lock held across a call
//!      orders before every lock the callee transitively takes), must
//!      form an acyclic global lock-order graph.
//!    * `atomic-ordering-audit` — `Ordering::Relaxed` outside the sync
//!      facades needs `// ORDERING: <reason>`, and a
//!      `store(_, Ordering::Release)` on a field with no
//!      Acquire/SeqCst read of the same field anywhere is flagged.
//!
//! ## Approximations (deliberate)
//!
//! The call graph is name-based, with three resolution tiers:
//! qualified calls (`Type::f(..)`, `Self` mapped to the caller's impl
//! type) edge only to that impl's `f`, falling back to free functions
//! for module-qualified paths; bare free calls (`f(..)`) edge only to
//! free functions — so `drop(x)` never reaches `Drop` impls and
//! `Vec::new()` never reaches a constructor; method calls (`x.push(..)`)
//! edge to *every* in-scope function named `push`, because the receiver
//! type is unknown and trait dispatch through `Driver` is real. That
//! still over-approximates reachability — safe for the panic/blocking
//! rules (false positives are silenced with a justified annotation,
//! never false negatives within the name scheme) — and merges
//! same-named locks/fields across types, so propagated self-edges in
//! the lock graph are dropped (direct self-nesting inside one function
//! is kept) and lock-order propagation follows only calls that resolve
//! to exactly one function — an ambiguous `push` edge to dozens of
//! unrelated targets would manufacture cycles with no escape hatch. Allocation and
//! indexing checks are direct-only in hot-marked functions: transitive
//! closure over `clone`/indexing would indict the whole workspace; the
//! hot scopes are where the per-message cost lives. Test functions,
//! test modules, benches, examples, and the verification crate itself
//! are outside the graph.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::lint::{self, Violation};
use crate::tree::{is_call, parse_items, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// One structural rule family.
pub struct Rule {
    pub name: &'static str,
    pub description: &'static str,
}

/// The five structural families layered on the call graph.
pub static STRUCTURAL_RULES: &[Rule] = &[
    Rule {
        name: "hot-panic-freedom",
        description: "no unwrap/expect/panic!/assert!/unreachable! reachable from a \
                      // HOT-PATH root, and no slice indexing without get directly in \
                      a hot function, unless // PANIC-OK: <reason>",
    },
    Rule {
        name: "hot-alloc",
        description: "no Vec::/Box::new/vec!/format!/to_vec/to_owned/to_string/clone \
                      directly inside a // HOT-PATH function unless // ALLOC-OK: <reason>",
    },
    Rule {
        name: "hot-blocking",
        description: "no thread::sleep/park/join/condvar waits/Instant::now/\
                      SystemTime::now reachable from a // HOT-PATH root unless \
                      // BLOCKING-OK: <reason> (sync facade and shims are the \
                      implementation sites)",
    },
    Rule {
        name: "lock-order-cycle",
        description: "Mutex acquisition nesting per function, propagated through the \
                      call graph, must form an acyclic global lock-order graph",
    },
    Rule {
        name: "atomic-ordering-audit",
        description: "Ordering::Relaxed outside the sync facades needs // ORDERING: \
                      <reason>; a Release store on a field with no Acquire/SeqCst \
                      read of that field anywhere is flagged",
    },
];

/// The full 13-rule catalog: the 8 lexical rules plus the 5 structural
/// families, in evaluation order.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    lint::RULES
        .iter()
        .map(|r| (r.name, r.description))
        .chain(STRUCTURAL_RULES.iter().map(|r| (r.name, r.description)))
        .collect()
}

/// Marker comments. `HOT-PATH` is presence-only; the rest demand a
/// nonempty reason after the colon.
const HOT_MARKER: &str = "HOT-PATH";
const PANIC_OK: &str = "PANIC-OK:";
const ALLOC_OK: &str = "ALLOC-OK:";
const BLOCKING_OK: &str = "BLOCKING-OK:";
const ORDERING_OK: &str = "ORDERING:";

/// Files whose functions join the call graph: the engine, transports,
/// simulator, and shims — not benches, tests, examples, xtask, or the
/// verification crate itself.
fn graph_scope(path: &str) -> bool {
    (path.starts_with("crates/nmad-core/src/")
        || path.starts_with("crates/nmad-net/src/")
        || path.starts_with("crates/nmad-sim/src/")
        || (path.starts_with("shims/") && path.contains("/src/")))
        && !path.contains("/bin/")
}

/// Implementation sites for blocking primitives: the facade that wraps
/// them and the shims that implement them.
fn blocking_allowed(path: &str) -> bool {
    path == "crates/nmad-core/src/sync.rs" || path.starts_with("shims/")
}

fn panic_macro(name: &str) -> bool {
    matches!(
        name,
        "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo" | "unimplemented"
    )
}

fn blocking_call(name: &str) -> bool {
    matches!(
        name,
        "sleep" | "park" | "park_timeout" | "join" | "wait" | "wait_timeout" | "recv_timeout"
    )
}

fn atomic_rmw(name: &str) -> bool {
    name.starts_with("fetch_") || name.starts_with("compare_exchange") || name == "swap"
}

fn alloc_method(name: &str) -> bool {
    matches!(name, "to_vec" | "to_owned" | "to_string" | "clone")
}

#[derive(Clone, Debug)]
struct Site {
    line: u32,
    what: String,
}

/// One call site, as precisely as the token stream identifies it.
/// `Q::f(..)` keeps the qualifier, `.f(..)` is a method call, bare
/// `f(..)` is a free call — each resolves differently (see
/// [`analyze_files`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CallRef {
    qual: Option<String>,
    name: String,
    method: bool,
}

/// Everything the rules need from one function body.
#[derive(Default)]
struct Facts {
    calls: BTreeSet<CallRef>,
    panics: Vec<Site>,
    indexes: Vec<Site>,
    allocs: Vec<Site>,
    blocking: Vec<Site>,
    relaxed: Vec<Site>,
    /// field → store site, for `.store(_, Ordering::Release)` exactly.
    release_stores: Vec<(String, Site)>,
    /// fields read with Acquire/AcqRel/SeqCst anywhere in the body.
    acquire_reads: BTreeSet<String>,
    /// held-lock → acquired-lock, with the acquisition line.
    lock_edges: Vec<(String, String, u32)>,
    /// locks acquired anywhere in this function.
    locks: BTreeSet<String>,
    /// held-lock → callee called while holding it, with the call line.
    calls_under_lock: Vec<(String, CallRef, u32)>,
}

enum HoldEnd {
    /// Let-bound guard: held until the enclosing block closes
    /// (acquisition depth recorded).
    Block(i32),
    /// Plain temporary guard (`x.lock().bump();`, `if x.lock().ok()`):
    /// held until the next `;` at acquisition depth, or until a block
    /// opens at that depth (an `if` condition's temporaries drop
    /// before the body runs), or the enclosing block closes.
    Semi(i32),
    /// `match`/`if let`/`while let` scrutinee temporary: Rust extends
    /// it to the end of the whole statement, so when the body block
    /// opens this converts to a Block hold over it.
    Scrutinee(i32),
}

struct Hold {
    name: String,
    end: HoldEnd,
}

/// Orderings mentioned in one atomic-call argument list.
#[derive(Default)]
struct OrderingArgs {
    relaxed: bool,
    acquire: bool,
    release: bool,
    acqrel: bool,
    seqcst: bool,
}

fn scan_ordering_args(toks: &[Tok], open_paren: usize) -> (OrderingArgs, usize) {
    let mut args = OrderingArgs::default();
    let mut depth = 0i32;
    let mut j = open_paren;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Relaxed" => args.relaxed = true,
                "Acquire" => args.acquire = true,
                "Release" => args.release = true,
                "AcqRel" => args.acqrel = true,
                "SeqCst" => args.seqcst = true,
                _ => {}
            }
        }
        j += 1;
    }
    (args, j)
}

/// Extracts [`Facts`] from the body token range of one function.
fn extract_facts(toks: &[Tok], open: usize, close: usize) -> Facts {
    let mut f = Facts::default();
    let mut depth = 0i32;
    let mut holds: Vec<Hold> = Vec::new();
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.is_punct('{') {
            for h in &mut holds {
                if let HoldEnd::Scrutinee(d) = h.end {
                    if d == depth {
                        h.end = HoldEnd::Block(depth + 1);
                    }
                }
            }
            holds.retain(|h| !matches!(h.end, HoldEnd::Semi(d) if d == depth));
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            holds.retain(|h| match h.end {
                HoldEnd::Block(d) | HoldEnd::Semi(d) | HoldEnd::Scrutinee(d) => depth >= d,
            });
            j += 1;
            continue;
        }
        if t.is_punct(';') {
            holds.retain(
                |h| !matches!(h.end, HoldEnd::Semi(d) | HoldEnd::Scrutinee(d) if d == depth),
            );
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            let next_is = |c: char| toks.get(j + 1).is_some_and(|n| n.is_punct(c));

            // Macro invocation: `name!`.
            if next_is('!') {
                if panic_macro(name) {
                    f.panics.push(Site {
                        line: t.line,
                        what: format!("{name}! macro"),
                    });
                } else if name == "vec" || name == "format" {
                    f.allocs.push(Site {
                        line: t.line,
                        what: format!("{name}! macro"),
                    });
                }
                j += 2;
                continue;
            }

            // Path segment: `Name::...`.
            if next_is(':')
                && toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 3).is_some_and(|n| n.kind == TokKind::Ident)
            {
                let seg = toks[j + 3].text.as_str();
                match (name, seg) {
                    ("Vec", _) => f.allocs.push(Site {
                        line: t.line,
                        what: format!("Vec::{seg}"),
                    }),
                    ("Box", "new") => f.allocs.push(Site {
                        line: t.line,
                        what: "Box::new".into(),
                    }),
                    ("Instant", "now") | ("SystemTime", "now") => f.blocking.push(Site {
                        line: t.line,
                        what: format!("{name}::now (OS clock)"),
                    }),
                    ("Ordering", "Relaxed") => f.relaxed.push(Site {
                        line: t.line,
                        what: "Ordering::Relaxed".into(),
                    }),
                    _ => {}
                }
                // Fall through: `seg` may itself be a call (`Vec::new()`),
                // which the generic call scan below will pick up when the
                // cursor reaches it.
            }

            // Direct slice/array indexing: `ident [`.
            if next_is('[') {
                f.indexes.push(Site {
                    line: t.line,
                    what: format!("{name}[..] indexing"),
                });
            }

            if is_call(toks, j) {
                let method = toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'));
                let receiver = if method && j >= 2 && toks[j - 2].kind == TokKind::Ident {
                    Some(toks[j - 2].text.clone())
                } else {
                    None
                };
                let qual = if !method
                    && j >= 3
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && toks[j - 3].kind == TokKind::Ident
                {
                    Some(toks[j - 3].text.clone())
                } else {
                    None
                };

                let call = CallRef {
                    qual,
                    name: name.to_string(),
                    method,
                };
                for h in &holds {
                    f.calls_under_lock
                        .push((h.name.clone(), call.clone(), t.line));
                }
                f.calls.insert(call);

                if method && matches!(name, "unwrap" | "expect") {
                    f.panics.push(Site {
                        line: t.line,
                        what: format!(".{name}()"),
                    });
                }
                if method && alloc_method(name) {
                    f.allocs.push(Site {
                        line: t.line,
                        what: format!(".{name}()"),
                    });
                }
                if blocking_call(name) {
                    f.blocking.push(Site {
                        line: t.line,
                        what: format!("{name}() blocking call"),
                    });
                }

                // Atomic accesses: receiver field + ordering args.
                if method && (matches!(name, "store" | "load") || atomic_rmw(name)) {
                    let (args, _) = scan_ordering_args(toks, j + 1);
                    if let Some(field) = &receiver {
                        if name == "store" && args.release && !args.seqcst && !args.acqrel {
                            f.release_stores.push((
                                field.clone(),
                                Site {
                                    line: t.line,
                                    what: format!("{field}.store(_, Ordering::Release)"),
                                },
                            ));
                        }
                        let reads = (name == "load" && (args.acquire || args.seqcst))
                            || (atomic_rmw(name) && (args.acquire || args.acqrel || args.seqcst));
                        if reads {
                            f.acquire_reads.insert(field.clone());
                        }
                    }
                }

                // Lock acquisition: `recv.lock(` (never `try_lock`).
                if method && name == "lock" {
                    if let Some(recv) = receiver {
                        for h in &holds {
                            f.lock_edges.push((h.name.clone(), recv.clone(), t.line));
                        }
                        f.locks.insert(recv.clone());
                        // Statement head decides the hold scope:
                        // let-bound guards outlive the statement,
                        // match/if-let scrutinees extend over the body,
                        // bare temporaries die at the next `;` or when
                        // a block opens at this depth. A `let` only
                        // binds the *guard* when the statement ends at
                        // `.lock()` — in `let t = x.lock().now();` the
                        // guard is a temporary and `t` the result.
                        let guard_bound = toks.get(j + 2).is_some_and(|n| n.is_punct(')'))
                            && toks.get(j + 3).is_some_and(|n| n.is_punct(';'));
                        let mut k = j;
                        let mut end = HoldEnd::Semi(depth);
                        while k > open {
                            k -= 1;
                            let b = &toks[k];
                            if b.is_punct(';') || b.is_punct('{') || b.is_punct('}') {
                                let head = toks.get(k + 1);
                                let second = toks.get(k + 2);
                                if head.is_some_and(|n| n.is_ident("let")) && guard_bound {
                                    end = HoldEnd::Block(depth);
                                } else if head.is_some_and(|n| n.is_ident("match"))
                                    || (head
                                        .is_some_and(|n| n.is_ident("if") || n.is_ident("while"))
                                        && second.is_some_and(|n| n.is_ident("let")))
                                {
                                    end = HoldEnd::Scrutinee(depth);
                                }
                                break;
                            }
                        }
                        holds.push(Hold { name: recv, end });
                    }
                }
            }
        }
        j += 1;
    }
    f
}

/// One analyzed function in the workspace model.
struct FnRec {
    file: usize,
    item: FnItem,
    hot: bool,
    facts: Facts,
}

struct FileCtx {
    path: String,
    raw_lines: Vec<String>,
    lexed: Lexed,
}

/// Runs the full 13-rule catalog over `files` (workspace-relative
/// path, contents). Returns violations sorted by file/line/rule.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut fns: Vec<FnRec> = Vec::new();

    for (path, raw) in files {
        let lexed = lex(raw);
        // Layer 1: the lexical rules, over the lexer's stripped view.
        out.extend(lint::lint_stripped(path, raw, &lexed.stripped));

        if graph_scope(path) {
            let file_idx = ctxs.len();
            for item in parse_items(&lexed) {
                if item.is_test {
                    continue;
                }
                let Some((open, close)) = item.body else {
                    continue;
                };
                let hot = lexed
                    .annotation(item.line, item.attr_top, HOT_MARKER)
                    .is_some();
                let facts = extract_facts(&lexed.toks, open, close);
                fns.push(FnRec {
                    file: file_idx,
                    item,
                    hot,
                    facts,
                });
            }
            ctxs.push(FileCtx {
                path: path.clone(),
                raw_lines: raw.lines().map(str::to_string).collect(),
                lexed,
            });
        }
    }

    // Name → function indices (bare-name multimap).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.item.name.as_str()).or_default().push(i);
    }

    // Resolve every call to its candidate targets. Qualified calls
    // (`Type::f`, with `Self` mapped to the caller's impl type) match
    // only that impl's `f`, falling back to free functions for
    // module-qualified paths (`wire::encode(..)`); bare free calls
    // match only free functions (so `drop(x)` never edges into `Drop`
    // impls); method calls keep the bare-name multimap — the receiver
    // type is unknown and trait dispatch is real.
    let resolve = |caller: &FnRec, call: &CallRef| -> Vec<usize> {
        let Some(cands) = by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        match &call.qual {
            Some(q) => {
                let q = if q == "Self" {
                    caller
                        .item
                        .qual
                        .rsplit_once("::")
                        .map_or(q.as_str(), |(ty, _)| ty)
                } else {
                    q.as_str()
                };
                let want = format!("{q}::{}", call.name);
                let exact: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&t| fns[t].item.qual == want)
                    .collect();
                if !exact.is_empty() {
                    return exact;
                }
                cands
                    .iter()
                    .copied()
                    .filter(|&t| fns[t].item.qual == call.name)
                    .collect()
            }
            None if call.method => cands.clone(),
            None => cands
                .iter()
                .copied()
                .filter(|&t| fns[t].item.qual == call.name)
                .collect(),
        }
    };
    let resolved: Vec<BTreeMap<&CallRef, Vec<usize>>> = fns
        .iter()
        .map(|f| f.facts.calls.iter().map(|c| (c, resolve(f, c))).collect())
        .collect();

    // Reachability from the hot roots.
    let mut reachable = vec![false; fns.len()];
    let mut queue: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.hot)
        .map(|(i, _)| i)
        .collect();
    for &i in &queue {
        reachable[i] = true;
    }
    while let Some(i) = queue.pop() {
        for targets in resolved[i].values() {
            for &t in targets {
                if !reachable[t] {
                    reachable[t] = true;
                    queue.push(t);
                }
            }
        }
    }

    let excerpt = |ctx: &FileCtx, line: u32| -> String {
        ctx.raw_lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    // An escape-hatch annotation at `line` with a nonempty reason.
    let justified = |ctx: &FileCtx, line: u32, marker: &str| -> Option<bool> {
        ctx.lexed
            .annotation(line, line, marker)
            .map(|reason| !reason.trim().is_empty())
    };
    // None → no marker (flag as violation); Some(false) → marker with
    // empty reason (still a violation, with a sharper message);
    // Some(true) → justified.
    let mut flag = |ctx: &FileCtx, rule: &'static str, site: &Site, marker: &str, why: &str| {
        let mut v: Option<Violation> = None;
        match justified(ctx, site.line, marker) {
            Some(true) => {}
            Some(false) => {
                v = Some(Violation {
                    rule,
                    file: ctx.path.clone(),
                    line: site.line as usize,
                    excerpt: format!(
                        "{} {} — {marker} annotation present but carries no reason",
                        site.what, why
                    ),
                });
            }
            None => {
                v = Some(Violation {
                    rule,
                    file: ctx.path.clone(),
                    line: site.line as usize,
                    excerpt: format!("{} {}: {}", site.what, why, excerpt(ctx, site.line)),
                });
            }
        }
        out.extend(v);
    };

    for (i, f) in fns.iter().enumerate() {
        let ctx = &ctxs[f.file];
        // Panic freedom: macros/unwrap/expect transitively from roots;
        // indexing only directly inside hot-marked functions.
        if reachable[i] {
            for site in &f.facts.panics {
                flag(
                    ctx,
                    "hot-panic-freedom",
                    site,
                    PANIC_OK,
                    &format!("reachable from a HOT-PATH root via `{}`", f.item.qual),
                );
            }
        }
        if f.hot {
            for site in &f.facts.indexes {
                flag(
                    ctx,
                    "hot-panic-freedom",
                    site,
                    PANIC_OK,
                    &format!("in hot function `{}`", f.item.qual),
                );
            }
            for site in &f.facts.allocs {
                flag(
                    ctx,
                    "hot-alloc",
                    site,
                    ALLOC_OK,
                    &format!("in hot function `{}`", f.item.qual),
                );
            }
        }
        if reachable[i] && !blocking_allowed(&ctx.path) {
            for site in &f.facts.blocking {
                flag(
                    ctx,
                    "hot-blocking",
                    site,
                    BLOCKING_OK,
                    &format!("reachable from a HOT-PATH root via `{}`", f.item.qual),
                );
            }
        }
        // Relaxed audit applies to every in-scope function, hot or not
        // — unordered atomics are a correctness hazard everywhere.
        if !lint::atomics_allowed(&ctx.path) {
            for site in &f.facts.relaxed {
                flag(
                    ctx,
                    "atomic-ordering-audit",
                    site,
                    ORDERING_OK,
                    &format!("in `{}`", f.item.qual),
                );
            }
        }
    }

    // Release/Acquire pairing across the whole workspace model.
    let mut acquire_fields: BTreeSet<&str> = BTreeSet::new();
    for f in &fns {
        for field in &f.facts.acquire_reads {
            acquire_fields.insert(field.as_str());
        }
    }
    let mut paired_reported: BTreeSet<&str> = BTreeSet::new();
    for f in &fns {
        for (field, site) in &f.facts.release_stores {
            if !acquire_fields.contains(field.as_str()) && paired_reported.insert(field.as_str()) {
                let ctx = &ctxs[f.file];
                out.push(Violation {
                    rule: "atomic-ordering-audit",
                    file: ctx.path.clone(),
                    line: site.line as usize,
                    excerpt: format!(
                        "{} has no Acquire/SeqCst read of `{field}` anywhere in the workspace",
                        site.what
                    ),
                });
            }
        }
    }

    out.extend(lock_order_cycles(&fns, &ctxs, &resolved));

    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// All locks a function transitively acquires (its own plus its
/// callees'), memoized; cycles in the call graph are cut by the
/// in-progress guard. Like the propagation step, only calls that
/// resolve to exactly one function are followed — ambiguous names
/// would smear every lock in the workspace into every closure.
fn trans_locks(
    i: usize,
    fns: &[FnRec],
    resolved: &[BTreeMap<&CallRef, Vec<usize>>],
    memo: &mut Vec<Option<BTreeSet<String>>>,
    in_progress: &mut Vec<bool>,
) -> BTreeSet<String> {
    if let Some(done) = &memo[i] {
        return done.clone();
    }
    if in_progress[i] {
        return BTreeSet::new();
    }
    in_progress[i] = true;
    let mut acc = fns[i].facts.locks.clone();
    for targets in resolved[i].values() {
        if let [t] = targets.as_slice() {
            acc.extend(trans_locks(*t, fns, resolved, memo, in_progress));
        }
    }
    in_progress[i] = false;
    memo[i] = Some(acc.clone());
    acc
}

/// Builds the global lock-order graph (direct nesting plus
/// call-propagated edges) and reports every elementary cycle class
/// found by DFS.
fn lock_order_cycles(
    fns: &[FnRec],
    ctxs: &[FileCtx],
    resolved: &[BTreeMap<&CallRef, Vec<usize>>],
) -> Vec<Violation> {
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut provenance: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut add = |a: &str, b: &str, file: &str, line: u32| {
        edges
            .entry(a.to_string())
            .or_default()
            .insert(b.to_string());
        provenance
            .entry((a.to_string(), b.to_string()))
            .or_insert_with(|| (file.to_string(), line));
    };

    let mut memo = vec![None; fns.len()];
    let mut in_progress = vec![false; fns.len()];
    for (f_idx, f) in fns.iter().enumerate() {
        let path = &ctxs[f.file].path;
        for (a, b, line) in &f.facts.lock_edges {
            add(a, b, path, *line);
        }
        for (held, callee, line) in &f.facts.calls_under_lock {
            // Propagate only through calls that resolve to exactly one
            // function: generic method names (`push`, `drain`,
            // `is_empty`) resolve to dozens of unrelated targets under
            // the multimap, and every such edge is a potential false
            // cycle with no escape hatch. Direct nesting inside one
            // function is always captured above.
            if let Some([t]) = resolved[f_idx].get(callee).map(Vec::as_slice) {
                for l in trans_locks(*t, fns, resolved, &mut memo, &mut in_progress) {
                    // Name-merged self-edges via calls are dropped
                    // (see module docs); direct self-nesting was
                    // already captured as a lock_edge above.
                    if l != *held {
                        add(held, &l, path, *line);
                    }
                }
            }
        }
    }

    // DFS cycle detection, deduplicated by the cycle's node set.
    let mut out = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&String> = edges.keys().collect();
    for start in nodes {
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.clone(), vec![start.clone()])];
        let mut visited: BTreeSet<String> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for next in edges.get(&node).into_iter().flatten() {
                if next == start {
                    let mut key: Vec<String> = path.clone();
                    key.sort();
                    if seen_cycles.insert(key) {
                        let mut desc = path.join(" -> ");
                        desc.push_str(&format!(" -> {start}"));
                        // Per-edge provenance so the cycle is
                        // actionable without re-deriving the graph.
                        let mut ring: Vec<&String> = path.iter().collect();
                        ring.push(start);
                        let edges_desc: Vec<String> = ring
                            .windows(2)
                            .map(|w| {
                                let (file, line) = provenance
                                    .get(&(w[0].clone(), w[1].clone()))
                                    .cloned()
                                    .unwrap_or_default();
                                format!("{} -> {} at {file}:{line}", w[0], w[1])
                            })
                            .collect();
                        let (file, line) = provenance
                            .get(&(node.clone(), start.clone()))
                            .cloned()
                            .unwrap_or_default();
                        out.push(Violation {
                            rule: "lock-order-cycle",
                            file,
                            line: line as usize,
                            excerpt: format!(
                                "lock-order cycle: {desc} ({})",
                                edges_desc.join("; ")
                            ),
                        });
                    }
                } else if !path.contains(next) && visited.insert(next.clone()) {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next.clone(), p));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_files(&owned)
    }

    fn rules_of(vs: &[Violation]) -> Vec<&str> {
        vs.iter().map(|v| v.rule).collect()
    }

    const CORE: &str = "crates/nmad-core/src/x.rs";

    #[test]
    fn catalog_has_thirteen_rules() {
        let cat = rule_catalog();
        assert_eq!(cat.len(), 13);
        let names: Vec<&str> = cat.iter().map(|(n, _)| *n).collect();
        for n in [
            "unsafe-outside-shims",
            "hot-panic-freedom",
            "hot-alloc",
            "hot-blocking",
            "lock-order-cycle",
            "atomic-ordering-audit",
        ] {
            assert!(names.contains(&n), "missing {n}");
        }
    }

    #[test]
    fn unwrap_reachable_from_hot_root_is_flagged_transitively() {
        let src = "// HOT-PATH\nfn pump() { helper(); }\n\
                   fn helper() { x.unwrap(); }\n\
                   fn cold() { y.unwrap(); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["hot-panic-freedom"]);
        assert_eq!(vs[0].line, 3, "cold() unwrap must not be flagged: {vs:?}");
    }

    #[test]
    fn panic_ok_with_reason_suppresses_but_empty_reason_does_not() {
        let ok = "// HOT-PATH\nfn pump() { x.unwrap(); } // PANIC-OK: x seeded above\n";
        assert!(run(&[(CORE, ok)]).is_empty());
        let empty = "// HOT-PATH\nfn pump() { x.unwrap(); } // PANIC-OK:\n";
        let vs = run(&[(CORE, empty)]);
        assert_eq!(rules_of(&vs), vec!["hot-panic-freedom"]);
        assert!(vs[0].excerpt.contains("no reason"), "{vs:?}");
    }

    #[test]
    fn panic_macros_and_indexing_in_hot_fn() {
        let src = "// HOT-PATH\nfn pump() { assert!(q.len() > 0); let x = slots[i]; }\n\
                   fn helper() { let y = arr[j]; }\n";
        let vs = run(&[(CORE, src)]);
        // assert! and the direct index are flagged; helper's index is
        // not (indexing is direct-only) and debug_assert! never is.
        assert_eq!(
            rules_of(&vs),
            vec!["hot-panic-freedom", "hot-panic-freedom"]
        );
        let dbg = "// HOT-PATH\nfn pump() { debug_assert!(ok); }\n";
        assert!(run(&[(CORE, dbg)]).is_empty());
    }

    #[test]
    fn alloc_audit_is_direct_only_and_annotatable() {
        let src = "// HOT-PATH\nfn pump() { let v = vec![0u8; n]; helper(); }\n\
                   fn helper() { let s = format!(\"x\"); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["hot-alloc"]);
        assert_eq!(vs[0].line, 2);
        let ok =
            "// HOT-PATH\nfn pump() { let v = vec![0u8; n]; } // ALLOC-OK: one-time ring setup\n";
        assert!(run(&[(CORE, ok)]).is_empty());
    }

    #[test]
    fn blocking_is_transitive_and_facade_is_exempt() {
        let src = "// HOT-PATH\nfn pump() { helper(); }\n\
                   fn helper() { thread::sleep(d); let t = Instant::now(); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(
            rules_of(&vs),
            vec!["hot-blocking", "hot-blocking"],
            "{vs:?}"
        );
        // The same body inside the sync facade is an implementation
        // site, not a violation.
        let facade = "// HOT-PATH\nfn pump() { helper(); }\n";
        let sync_src = "fn helper() { thread::sleep(d); }\n";
        let vs = run(&[(CORE, facade), ("crates/nmad-core/src/sync.rs", sync_src)]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn lock_order_cycle_direct() {
        let src = "fn f() { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                   fn g() { let b = self.beta.lock(); let a = self.alpha.lock(); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["lock-order-cycle"]);
        assert!(vs[0].excerpt.contains("alpha") && vs[0].excerpt.contains("beta"));
    }

    #[test]
    fn lock_order_acyclic_passes_and_temporaries_release_at_semi() {
        let acyclic = "fn f() { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                       fn g() { let a = self.alpha.lock(); let b = self.beta.lock(); }\n";
        assert!(run(&[(CORE, acyclic)]).is_empty());
        // Temporary guards die at the `;`, so sequential temporaries
        // never nest.
        let seq = "fn f() { self.alpha.lock().bump(); self.beta.lock().bump(); }\n\
                   fn g() { self.beta.lock().bump(); self.alpha.lock().bump(); }\n";
        assert!(run(&[(CORE, seq)]).is_empty());
    }

    #[test]
    fn lock_order_cycle_via_call_propagation() {
        let src = "fn f() { let a = self.alpha.lock(); helper(); }\n\
                   fn helper() { let b = self.beta.lock(); }\n\
                   fn g() { let b = self.beta.lock(); other(); }\n\
                   fn other() { let a = self.alpha.lock(); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["lock-order-cycle"], "{vs:?}");
    }

    #[test]
    fn relaxed_needs_justification_outside_facade() {
        let src = "fn f() { self.seq.load(Ordering::Relaxed); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["atomic-ordering-audit"]);
        let ok = "fn f() {\n    // ORDERING: stat counter, no sync role\n    self.seq.load(Ordering::Relaxed);\n}\n";
        assert!(run(&[(CORE, ok)]).is_empty());
        let facade = run(&[("crates/nmad-core/src/sync.rs", src)]);
        assert!(facade.is_empty());
    }

    #[test]
    fn release_store_needs_an_acquire_reader_somewhere() {
        let bad = "fn w() { self.seq.store(1, Ordering::Release); }\n";
        let vs = run(&[(CORE, bad)]);
        assert_eq!(rules_of(&vs), vec!["atomic-ordering-audit"], "{vs:?}");
        assert!(vs[0].excerpt.contains("seq"));
        // A matching Acquire (or SeqCst) read of the same field in any
        // file pairs it.
        let reader = "fn r() { self.seq.load(Ordering::Acquire); }\n";
        let vs = run(&[(CORE, bad), ("crates/nmad-net/src/y.rs", reader)]);
        assert!(vs.is_empty(), "{vs:?}");
        // SeqCst stores are not Release stores.
        let seqcst = "fn w() { self.seq.store(1, Ordering::SeqCst); }\n";
        assert!(run(&[(CORE, seqcst)]).is_empty());
    }

    #[test]
    fn test_functions_and_out_of_scope_files_are_ignored() {
        let src = "// HOT-PATH\nfn pump() { check(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn check() { x.unwrap(); }\n}\n";
        assert!(run(&[(CORE, src)]).is_empty());
        let bench = "// HOT-PATH\nfn pump() { x.unwrap(); }\n";
        assert!(run(&[("crates/bench/src/main.rs", bench)]).is_empty());
    }

    #[test]
    fn hot_marker_tolerates_attributes() {
        let src = "// HOT-PATH\n#[inline]\nfn pump() { x.unwrap(); }\n";
        let vs = run(&[(CORE, src)]);
        assert_eq!(rules_of(&vs), vec!["hot-panic-freedom"]);
    }
}
