/root/repo/target/debug/deps/codec-05428251da892e23.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-05428251da892e23.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
