/root/repo/target/debug/deps/mad_mpi-b302dfa0c640e3c0.d: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

/root/repo/target/debug/deps/mad_mpi-b302dfa0c640e3c0: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

crates/mad-mpi/src/lib.rs:
crates/mad-mpi/src/backend.rs:
crates/mad-mpi/src/cluster.rs:
crates/mad-mpi/src/coll.rs:
crates/mad-mpi/src/datatype.rs:
crates/mad-mpi/src/p2p.rs:
