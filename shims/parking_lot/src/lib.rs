//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! API: `lock()` returns the guard directly (a poisoned std lock is
//! recovered transparently — the data is still consistent for this
//! workspace's usage, where panics never leave partial state behind).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: no poison error, data still reachable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
