/root/repo/target/debug/deps/chaos_soak-4348b674a0ae859a.d: crates/bench/src/bin/chaos_soak.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_soak-4348b674a0ae859a.rmeta: crates/bench/src/bin/chaos_soak.rs Cargo.toml

crates/bench/src/bin/chaos_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
