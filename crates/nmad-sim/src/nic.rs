//! Calibrated NIC timing models.
//!
//! A [`NicModel`] is the timing envelope of one network technology: the
//! engine above only ever observes *when* the card reports idle, *when*
//! packets arrive, and which hardware facilities (gather/scatter, RDMA)
//! are available — exactly the quantities the paper's transfer layer
//! collects from each real driver ("the threshold for the rendez-vous
//! protocol or the availability of the gather/scatter or as well the
//! remote direct access (RDMA) functionality", §4).
//!
//! The presets below are calibrated against the numbers reported in the
//! paper's evaluation (§5): MAD-MPI reaches 1155 MB/s over Myri-10G and
//! 835 MB/s over Quadrics, with small-message latencies of a few
//! microseconds.

use crate::time::SimDuration;

/// Timing and capability model of one network interface technology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NicModel {
    /// Human-readable technology name, e.g. `"MX/Myri-10G"`.
    pub name: &'static str,
    /// One-way wire + firmware latency added to every packet.
    pub latency: SimDuration,
    /// Sustained link bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Host CPU cost of posting one send descriptor.
    pub tx_overhead: SimDuration,
    /// Host CPU cost of consuming one receive completion.
    pub rx_overhead: SimDuration,
    /// Maximum number of gather entries the card accepts in one send
    /// descriptor. `1` means no hardware gather: a multi-segment packet
    /// must be copied into a staging buffer first.
    pub gather_max_segs: usize,
    /// Host CPU cost of each gather entry beyond the first when a send
    /// descriptor carries a multi-segment iov (the per-descriptor DMA
    /// setup the MX firmware charges for scatter/gather lists). Zero
    /// for single-segment posts and for cards without hardware gather.
    pub gather_entry_overhead: SimDuration,
    /// Driver-suggested eager→rendezvous switch point, in bytes.
    pub rdv_threshold: usize,
    /// Whether the card offers remote direct memory access (zero-copy
    /// put/get). Without it, rendezvous data is staged through a bounce
    /// buffer and the receiver pays a copy.
    pub supports_rdma: bool,
    /// Maximum single wire packet size in bytes (`usize::MAX` when the
    /// technology imposes no practical limit for our message range).
    pub mtu: usize,
}

impl NicModel {
    /// Time the wire is occupied transmitting `bytes` payload bytes.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes(bytes, self.bandwidth_bps)
    }

    /// Lower bound on one-way transfer time for `bytes` bytes in a
    /// single packet: post + wire occupancy + latency.
    pub fn one_way_time(&self, bytes: usize) -> SimDuration {
        self.tx_overhead + self.wire_time(bytes) + self.latency
    }

    /// True when a segment of `len` bytes should use the rendezvous
    /// protocol on this technology.
    pub fn needs_rendezvous(&self, len: usize) -> bool {
        len > self.rdv_threshold
    }
}

/// Myricom Myri-10G with the MX 1.2 driver (paper's primary platform).
pub fn mx_myri10g() -> NicModel {
    NicModel {
        name: "MX/Myri-10G",
        latency: SimDuration::from_us_f64(2.6),
        bandwidth_bps: 1_240_000_000,
        // MX small-message rate on Myri-10G was ~1.5M msg/s: the host
        // pays well over half a microsecond per posted descriptor.
        tx_overhead: SimDuration::from_us_f64(0.65),
        rx_overhead: SimDuration::from_us_f64(0.30),
        gather_max_segs: 32,
        gather_entry_overhead: SimDuration::from_ns(40),
        rdv_threshold: 32 * 1024,
        supports_rdma: true,
        mtu: usize::MAX,
    }
}

/// Quadrics QM500 with the Elan driver (paper's second platform).
pub fn quadrics_qm500() -> NicModel {
    NicModel {
        name: "Elan/QM500",
        latency: SimDuration::from_us_f64(1.5),
        bandwidth_bps: 880_000_000,
        tx_overhead: SimDuration::from_us_f64(0.50),
        rx_overhead: SimDuration::from_us_f64(0.25),
        gather_max_segs: 16,
        gather_entry_overhead: SimDuration::from_ns(50),
        rdv_threshold: 16 * 1024,
        supports_rdma: true,
        mtu: usize::MAX,
    }
}

/// GM over Myrinet 2000 — an older port listed in the paper (§4).
pub fn gm_myrinet2000() -> NicModel {
    NicModel {
        name: "GM/Myrinet-2000",
        latency: SimDuration::from_us_f64(6.5),
        bandwidth_bps: 240_000_000,
        tx_overhead: SimDuration::from_us_f64(0.9),
        rx_overhead: SimDuration::from_us_f64(0.6),
        gather_max_segs: 1,
        gather_entry_overhead: SimDuration::ZERO,
        rdv_threshold: 32 * 1024,
        supports_rdma: false,
        mtu: usize::MAX,
    }
}

/// SISCI over SCI — another port listed in the paper (§4).
pub fn sisci_sci() -> NicModel {
    NicModel {
        name: "SISCI/SCI",
        latency: SimDuration::from_us_f64(2.2),
        bandwidth_bps: 250_000_000,
        tx_overhead: SimDuration::from_us_f64(0.6),
        rx_overhead: SimDuration::from_us_f64(0.4),
        gather_max_segs: 8,
        gather_entry_overhead: SimDuration::from_ns(60),
        rdv_threshold: 8 * 1024,
        supports_rdma: true,
        mtu: 64 * 1024,
    }
}

/// Modelled TCP over gigabit Ethernet — used in simulation tests; the
/// *real* TCP driver lives in `nmad-net::tcp`.
pub fn tcp_gige() -> NicModel {
    NicModel {
        name: "TCP/GigE(model)",
        latency: SimDuration::from_us_f64(45.0),
        bandwidth_bps: 110_000_000,
        tx_overhead: SimDuration::from_us_f64(4.0),
        rx_overhead: SimDuration::from_us_f64(3.0),
        gather_max_segs: 64, // writev
        gather_entry_overhead: SimDuration::from_ns(20),
        rdv_threshold: 64 * 1024,
        supports_rdma: false,
        mtu: usize::MAX,
    }
}

/// All built-in presets, for sweeps and tests.
pub fn all_presets() -> Vec<NicModel> {
    vec![
        mx_myri10g(),
        quadrics_qm500(),
        gm_myrinet2000(),
        sisci_sci(),
        tcp_gige(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        let presets = all_presets();
        for nic in &presets {
            assert!(nic.bandwidth_bps > 0, "{}: zero bandwidth", nic.name);
            assert!(nic.latency > SimDuration::ZERO, "{}", nic.name);
            assert!(nic.gather_max_segs >= 1, "{}", nic.name);
            assert!(nic.rdv_threshold > 0, "{}", nic.name);
        }
        let mut names: Vec<_> = presets.iter().map(|n| n.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len(), "duplicate preset names");
    }

    #[test]
    fn myri10g_small_message_latency_matches_paper_band() {
        // Paper Fig 2(a): ~3-4us one-way for a 4-byte MPI message.
        let nic = mx_myri10g();
        let t = nic.one_way_time(4);
        assert!(
            t.as_us_f64() > 2.5 && t.as_us_f64() < 4.5,
            "unexpected small-message time {t}"
        );
    }

    #[test]
    fn myri10g_large_message_bandwidth_approaches_link_rate() {
        let nic = mx_myri10g();
        let bytes = 2 << 20;
        let t = nic.one_way_time(bytes);
        let mbps = bytes as f64 / t.as_secs_f64() / 1e6;
        assert!(mbps > 1_100.0 && mbps < 1_250.0, "got {mbps} MB/s");
    }

    #[test]
    fn rendezvous_threshold_is_exclusive() {
        let nic = quadrics_qm500();
        assert!(!nic.needs_rendezvous(nic.rdv_threshold));
        assert!(nic.needs_rendezvous(nic.rdv_threshold + 1));
    }

    #[test]
    fn wire_time_scales_linearly() {
        let nic = mx_myri10g();
        let t1 = nic.wire_time(1 << 20);
        let t2 = nic.wire_time(2 << 20);
        let ratio = t2.as_ns() as f64 / t1.as_ns() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
