//! The user-facing checker API.

use crate::exec::{CheckFailure, CheckStats, Config, Exec};
use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded exhaustive model checker.
///
/// ```
/// use nmad_verify::{Checker, sync, thread};
/// use std::sync::Arc;
///
/// let stats = Checker::new()
///     .check(|| {
///         let flag = Arc::new(sync::AtomicU64::new(0));
///         let f2 = Arc::clone(&flag);
///         let t = thread::spawn(move || f2.store(1, sync::Ordering::Release));
///         let _ = flag.load(sync::Ordering::Acquire);
///         t.join();
///     })
///     .expect("no schedule fails");
/// assert!(stats.schedules >= 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Checker {
    config: Config,
}

impl Checker {
    pub fn new() -> Self {
        Checker::default()
    }

    /// Maximum number of forced context switches away from a runnable
    /// thread per execution (CHESS-style bound; default 2). Switches
    /// at blocking points are always free.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.config.preemption_bound = n;
        self
    }

    /// Stop after this many schedules even if branches remain.
    pub fn max_schedules(mut self, n: u64) -> Self {
        self.config.max_schedules = n;
        self
    }

    /// Abandon any single execution after this many model operations
    /// (keeps spinning models finite; abandoned runs are counted in
    /// [`CheckStats::truncated`]).
    pub fn max_steps(mut self, n: u64) -> Self {
        self.config.max_steps = n;
        self
    }

    /// Cap on live model threads per execution.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.config.max_threads = n;
        self
    }

    /// Enable/disable state-hash subtree pruning (default on).
    pub fn dedup(mut self, on: bool) -> Self {
        self.config.dedup = on;
        self
    }

    /// Runs `f` under every schedule (and weak-memory load result) up
    /// to the configured bounds. Returns the exploration statistics,
    /// or the first failing schedule.
    pub fn check<F>(&self, f: F) -> Result<CheckStats, CheckFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Exec::new(self.config.clone());
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        loop {
            exec.run_once(&f);
            if let Some(failure) = exec.failure() {
                return Err(failure);
            }
            if !exec.advance() || exec.hit_schedule_cap() {
                break;
            }
        }
        Ok(exec.stats())
    }
}

/// Runs a small, fixed message-passing + contended-counter model and
/// returns its exploration statistics. Used by the bench harness to
/// record verification coverage (schedules explored, states deduped)
/// alongside performance numbers — cheap enough to run on every bench
/// invocation.
pub fn coverage_probe() -> CheckStats {
    Checker::new()
        .max_schedules(20_000)
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let ids = Arc::new(AtomicU64::new(0));
            let (d, f, i) = (Arc::clone(&data), Arc::clone(&flag), Arc::clone(&ids));
            let producer = crate::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(1, Ordering::Release);
                i.fetch_add(1, Ordering::Relaxed)
            });
            let a = ids.fetch_add(1, Ordering::Relaxed);
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "message passing violated");
            }
            let b = producer.join();
            assert_ne!(a, b, "id allocation must be unique");
        })
        .expect("coverage probe model is correct by construction")
}
