//! The cross-shard steal facade.
//!
//! A sharded progression runtime (see [`crate::threaded`]) gives every
//! shard its own submission ring, window slice and rail subset — no
//! shared mutable state on the hot path. Work stealing is the one
//! deliberate exception: a shard with a deep window donates eager
//! segments to an idle shard so the idle shard's NICs don't sit dark.
//! Every cross-shard transfer flows through this module; nothing else
//! in the crate touches another shard's state (enforced by an `xtask`
//! lint rule pinning the mailbox type to this file).
//!
//! ## Protocol
//!
//! Each shard owns one mailbox. Any shard may push a message to any
//! other shard's mailbox; the owner drains its own mailbox at the top
//! of its progression loop. Shutdown is the delicate part: a shard
//! that exits must neither strand messages already in its mailbox nor
//! accept messages it will never process. The mailbox therefore keeps
//! a `departed` flag *under the same mutex as the queue*:
//!
//! * [`StealGroup::push`] fails with the message returned to the
//!   sender once the flag is set — the sender bounces the work back to
//!   its owner instead of losing it;
//! * [`StealGroup::depart`] sets the flag and drains the residue in
//!   one critical section, so there is no window in which a message
//!   can land unseen.
//!
//! ## Memory ordering
//!
//! The queue and the departed flag live under a [`Mutex`]; the lock's
//! acquire/release edges order them. The `pending` counter is a lock-
//! free emptiness hint only: incremented with `Release` *while the
//! push lock is held*, read with `Acquire` by the owner to skip
//! locking an empty mailbox. A stale zero merely delays a drain by one
//! loop iteration; a non-zero read is always followed by a locked
//! drain, so no message is ever missed. The advertisement cells
//! (backlog depth, idleness) are heuristic inputs to the steal
//! decision and use `Release`/`Acquire` pairs so a thief never acts on
//! values from its own cache line going backwards in time; acting on a
//! *stale* advertisement is harmless (the donation bounces or the
//! steal simply doesn't happen).

use crate::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};
use std::collections::VecDeque;

/// One shard's steal mailbox: a locked queue plus the departure flag
/// that makes shutdown loss-free. Private to this module — the rest of
/// the crate goes through [`StealGroup`].
struct StealMailbox<T> {
    inner: Mutex<MailboxInner<T>>,
    /// Lock-free emptiness hint; see the module documentation.
    pending: AtomicUsize,
}

struct MailboxInner<T> {
    queue: VecDeque<T>,
    departed: bool,
}

impl<T> StealMailbox<T> {
    fn new() -> Self {
        StealMailbox {
            inner: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                departed: false,
            }),
            pending: AtomicUsize::new(0),
        }
    }

    // HOT-PATH: steal handoff
    fn push(&self, msg: T) -> Result<(), T> {
        let mut inner = self.inner.lock();
        if inner.departed {
            return Err(msg);
        }
        inner.queue.push_back(msg);
        // Increment while the lock is held: a drainer that observes
        // the count observes the message.
        self.pending.fetch_add(1, Ordering::Release);
        Ok(())
    }

    // HOT-PATH: steal handoff
    fn drain(&self) -> Vec<T> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return Vec::new(); // ALLOC-OK: Vec::new does not allocate
        }
        let mut inner = self.inner.lock();
        let out: Vec<T> = inner.queue.drain(..).collect();
        self.pending.fetch_sub(out.len(), Ordering::Release);
        out
    }

    fn depart(&self) -> Vec<T> {
        let mut inner = self.inner.lock();
        inner.departed = true;
        let out: Vec<T> = inner.queue.drain(..).collect();
        self.pending.fetch_sub(out.len(), Ordering::Release);
        out
    }

    fn departed(&self) -> bool {
        self.inner.lock().departed
    }
}

/// Counters of the steal machinery, for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Eager segments donated victim → thief.
    pub donated: u64,
    /// Donations bounced back to their owner (the thief departed or
    /// never placed them).
    pub bounced: u64,
    /// Received foreign frames forwarded thief → owner.
    pub forwarded_frames: u64,
    /// Spool-transmit completions forwarded thief → victim.
    pub forwarded_dones: u64,
}

/// The steal channels of one sharded runtime: one mailbox per shard
/// plus the advertisement cells the steal decision reads. Generic over
/// the message type so the model suites can drive the protocol with
/// plain integers.
pub struct StealGroup<T> {
    boxes: Vec<StealMailbox<T>>,
    /// Advertised donation backlog per shard (window common depth).
    depth: Vec<AtomicUsize>,
    /// Advertised idleness per shard (1 = nothing to do).
    idle: Vec<AtomicUsize>,
    donated: AtomicU64,
    bounced: AtomicU64,
    forwarded_frames: AtomicU64,
    forwarded_dones: AtomicU64,
}

impl<T> StealGroup<T> {
    /// A group of `shards` mailboxes, all empty, none departed.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a steal group needs at least one shard");
        StealGroup {
            boxes: (0..shards).map(|_| StealMailbox::new()).collect(),
            depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            idle: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            donated: AtomicU64::new(0),
            bounced: AtomicU64::new(0),
            forwarded_frames: AtomicU64::new(0),
            forwarded_dones: AtomicU64::new(0),
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.boxes.len()
    }

    /// Delivers `msg` to shard `to`'s mailbox. `Err(msg)` when the
    /// shard has departed — the sender must re-route the work (bounce
    /// a donation home, drop a forward whose owner is gone).
    // HOT-PATH: steal handoff
    pub fn push(&self, to: usize, msg: T) -> Result<(), T> {
        self.boxes[to].push(msg) // PANIC-OK: shard index bounded by StealGroup::new
    }

    /// Takes every message currently in shard `shard`'s mailbox.
    /// Cheap (one relaxed-ish load, no lock) when empty.
    // HOT-PATH: steal handoff
    pub fn drain(&self, shard: usize) -> Vec<T> {
        self.boxes[shard].drain() // PANIC-OK: shard index bounded by StealGroup::new
    }

    /// Marks `shard` departed and returns the residue of its mailbox
    /// in one atomic step: every message ever accepted is either
    /// returned here or was drained earlier — none is lost.
    pub fn depart(&self, shard: usize) -> Vec<T> {
        self.idle[shard].store(0, Ordering::Release);
        self.boxes[shard].depart()
    }

    /// Whether `shard` has departed.
    pub fn is_departed(&self, shard: usize) -> bool {
        self.boxes[shard].departed()
    }

    /// Publishes shard `shard`'s donation backlog (steal heuristic).
    pub fn advertise_depth(&self, shard: usize, depth: usize) {
        self.depth[shard].store(depth, Ordering::Release);
    }

    /// Publishes whether shard `shard` is idle (steal heuristic).
    pub fn advertise_idle(&self, shard: usize, idle: bool) {
        self.idle[shard].store(usize::from(idle), Ordering::Release);
    }

    /// Advertised backlog of shard `shard`.
    pub fn depth_of(&self, shard: usize) -> usize {
        self.depth[shard].load(Ordering::Acquire)
    }

    /// An idle, not-departed shard other than `victim`, if any — the
    /// candidate thief for `victim`'s surplus.
    pub fn pick_thief(&self, victim: usize) -> Option<usize> {
        (0..self.boxes.len())
            .filter(|&s| s != victim)
            .find(|&s| self.idle[s].load(Ordering::Acquire) == 1 && !self.is_departed(s))
    }

    /// Counts `n` donated segments.
    pub fn note_donated(&self, n: u64) {
        self.donated.fetch_add(n, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
    }

    /// Counts `n` bounced donations.
    pub fn note_bounced(&self, n: u64) {
        self.bounced.fetch_add(n, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
    }

    /// Counts one forwarded foreign frame.
    pub fn note_forwarded_frame(&self) {
        self.forwarded_frames.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
    }

    /// Counts one forwarded spool completion.
    pub fn note_forwarded_done(&self) {
        self.forwarded_dones.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
    }

    /// Snapshot of the steal counters.
    pub fn stats(&self) -> StealStats {
        StealStats {
            donated: self.donated.load(Ordering::Relaxed), // ORDERING: advisory stats snapshot
            bounced: self.bounced.load(Ordering::Relaxed), // ORDERING: advisory stats snapshot
            forwarded_frames: self.forwarded_frames.load(Ordering::Relaxed), // ORDERING: advisory stats snapshot
            forwarded_dones: self.forwarded_dones.load(Ordering::Relaxed), // ORDERING: advisory stats snapshot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_is_fifo_per_mailbox() {
        let g: StealGroup<u32> = StealGroup::new(3);
        g.push(1, 10).unwrap();
        g.push(1, 11).unwrap();
        g.push(2, 20).unwrap();
        assert_eq!(g.drain(1), vec![10, 11]);
        assert_eq!(g.drain(1), Vec::<u32>::new());
        assert_eq!(g.drain(2), vec![20]);
    }

    #[test]
    fn departed_mailbox_bounces_pushes_and_returns_residue() {
        let g: StealGroup<u32> = StealGroup::new(2);
        g.push(1, 7).unwrap();
        let residue = g.depart(1);
        assert_eq!(residue, vec![7]);
        assert!(g.is_departed(1));
        assert_eq!(g.push(1, 8), Err(8));
        assert_eq!(g.drain(1), Vec::<u32>::new());
    }

    #[test]
    fn thief_selection_skips_busy_and_departed_shards() {
        let g: StealGroup<u32> = StealGroup::new(4);
        assert_eq!(g.pick_thief(0), None);
        g.advertise_idle(2, true);
        g.advertise_idle(3, true);
        assert_eq!(g.pick_thief(0), Some(2));
        assert_eq!(g.pick_thief(2), Some(3));
        g.depart(2);
        assert_eq!(g.pick_thief(0), Some(3));
        g.advertise_idle(3, false);
        assert_eq!(g.pick_thief(0), None);
    }

    #[test]
    fn advertisements_and_stats_round_trip() {
        let g: StealGroup<u32> = StealGroup::new(2);
        g.advertise_depth(0, 42);
        assert_eq!(g.depth_of(0), 42);
        g.note_donated(3);
        g.note_bounced(1);
        g.note_forwarded_frame();
        g.note_forwarded_done();
        assert_eq!(
            g.stats(),
            StealStats {
                donated: 3,
                bounced: 1,
                forwarded_frames: 1,
                forwarded_dones: 1,
            }
        );
    }
}
