//! Real-time microbenchmarks of the engine's scheduling machinery:
//! window operations, strategy frame synthesis, and a full engine
//! round-trip over the in-process memory driver.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmad_core::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
use nmad_core::strategy::{NicView, StratAggreg, StratReorder, Strategy};
use nmad_core::window::Window;
use nmad_core::{EngineCosts, NmadEngine};
use nmad_net::{mem_fabric, Capabilities, NullMeter};
use nmad_sim::{nic, NodeId};

fn wrapper(seq: u32, len: usize) -> PackWrapper {
    PackWrapper {
        dst: NodeId(1),
        tag: Tag(seq % 8),
        seq: SeqNo(seq),
        priority: Priority::Normal,
        data: Bytes::from(vec![0u8; len]),
        req: SendReqId(0),
        order: seq as u64,
    }
}

fn bench_window_ops(c: &mut Criterion) {
    c.bench_function("window/push_take_64", |b| {
        b.iter(|| {
            let mut w = Window::new(1);
            for i in 0..64 {
                w.push_segment(wrapper(i, 64), None);
            }
            while w.take_front_if(0, |_| true).is_some() {}
            black_box(w.is_empty())
        })
    });
}

fn bench_strategy_schedule(c: &mut Criterion) {
    let caps = Capabilities::from_nic(&nic::mx_myri10g());
    let mut group = c.benchmark_group("strategy/schedule");
    for (name, mut strat) in [
        ("aggreg", Box::new(StratAggreg) as Box<dyn Strategy>),
        ("reorder", Box::new(StratReorder) as Box<dyn Strategy>),
    ] {
        for depth in [8usize, 64] {
            group.throughput(Throughput::Elements(depth as u64));
            group.bench_with_input(BenchmarkId::new(name, depth), &depth, |b, &depth| {
                b.iter(|| {
                    let mut w = Window::new(1);
                    for i in 0..depth as u32 {
                        w.push_segment(wrapper(i, 64), None);
                    }
                    let view = NicView {
                        index: 0,
                        caps: &caps,
                    };
                    let mut frames = 0;
                    while let Some(plan) = strat.schedule(&mut w, &view) {
                        frames += plan.entries.len();
                    }
                    black_box(frames)
                })
            });
        }
    }
    group.finish();
}

fn bench_engine_roundtrip_mem(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/mem_roundtrip");
    for size in [16usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut fabric = mem_fabric(2);
            let eb = fabric.pop().expect("two endpoints");
            let ea = fabric.pop().expect("two endpoints");
            let mut a = NmadEngine::new(
                vec![Box::new(ea)],
                Box::new(NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            );
            let mut bb = NmadEngine::new(
                vec![Box::new(eb)],
                Box::new(NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            );
            let payload = Bytes::from(vec![1u8; size]);
            b.iter(|| {
                let s = a.isend(NodeId(1), Tag(0), payload.clone());
                let r = bb.post_recv(NodeId(0), Tag(0), size);
                while !(a.is_send_done(s) && bb.is_recv_done(r)) {
                    a.progress();
                    bb.progress();
                }
                black_box(bb.try_take_recv(r).expect("done").data.len())
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    use nmad_core::matching::Matching;
    use nmad_core::segment::RecvReqId;
    c.bench_function("matching/post_match_take", |b| {
        let payload = bytes::Bytes::from(vec![7u8; 64]);
        b.iter(|| {
            let mut m = Matching::new();
            for i in 0..32u64 {
                m.post_recv(NodeId(1), Tag((i % 4) as u32), 64, RecvReqId(i));
            }
            let mut seqs = [0u32; 4];
            for i in 0..32u64 {
                let tag = (i % 4) as u32;
                let fx = m.on_data(
                    NodeId(1),
                    Tag(tag),
                    SeqNo(seqs[tag as usize]),
                    black_box(payload.clone()),
                );
                seqs[tag as usize] += 1;
                black_box(fx);
            }
            let mut taken = 0;
            for i in 0..32u64 {
                if m.try_take_done(RecvReqId(i)).is_some() {
                    taken += 1;
                }
            }
            black_box(taken)
        })
    });
}

fn bench_datatype(c: &mut Criterion) {
    use mad_mpi::Datatype;
    let mut group = c.benchmark_group("datatype");
    let dtype = Datatype::alternating(64, 64 * 1024, 4);
    let src: Vec<u8> = (0..dtype.extent()).map(|i| i as u8).collect();
    group.throughput(Throughput::Bytes(dtype.total_bytes() as u64));
    group.bench_function("pack_256k", |b| b.iter(|| black_box(dtype.pack(&src))));
    let packed = dtype.pack(&src);
    group.bench_function("unpack_256k", |b| {
        b.iter(|| black_box(dtype.unpack(&packed)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_ops,
    bench_strategy_schedule,
    bench_engine_roundtrip_mem,
    bench_matching,
    bench_datatype
);
criterion_main!(benches);
