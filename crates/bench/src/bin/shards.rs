//! Shard-scaling study: aggregate throughput of the sharded progression
//! runtime as the shard count grows 1 → 8.
//!
//! Each shard count `n` stands up two nodes with `n` identical
//! simulated rails, splits each node's engine into `n` progression
//! shards (`NmadEngine::split_for_shards`, `ShardPolicy::HashByDest`),
//! and pushes a fixed fleet of flows through: every flow hashes to one
//! shard on both nodes and rides that shard's rails. With the total
//! byte volume held constant, aggregate throughput (bytes over virtual
//! time) grows with the rail/shard count — the scaling curve this
//! benchmark emits.
//!
//! The shards are **co-simulated inline** on one OS thread: the
//! discrete-event simulator owns virtual time, so progression threads
//! would add nothing but nondeterminism. What is measured is exactly
//! what the sharded runtime's routing delivers: per-flow rail affinity
//! with no cross-shard contention.
//!
//! Results land in `BENCH_shards.json` (override with `--json PATH`);
//! `cargo run -p xtask -- bench-diff` gates the scaling ratios against
//! the committed baseline.
//!
//! Run: `cargo run --release -p bench --bin shards [-- --quick]`

use bench::{fmt_size, ShardReport, ShardRow, Table, BENCH_SHARDS_JSON_PATH};
use nmad_core::prelude::*;
use nmad_core::ShardPolicy;
use nmad_net::sim::SimDriver;
use nmad_net::Driver;
use nmad_sim::{host, nic, shared_world, NodeId, SharedWorld, SimConfig};

/// Distinct flows (tags) hashed across the shards. Large enough that
/// even 8 shards each own several flows with near-certainty.
const FLOWS: usize = 64;

/// Shard counts swept, in order; the curve is 1 → 8.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = bench::json_arg().unwrap_or_else(|| BENCH_SHARDS_JSON_PATH.to_string());
    // 128 KiB crosses the sim NIC's rendezvous threshold, so throughput
    // is bandwidth-dominated and the rail count is what moves it.
    let (msgs_per_flow, size) = if quick {
        (1, 32 * 1024)
    } else {
        (2, 128 * 1024)
    };
    let report = ShardReport::new();

    println!(
        "\n## shard scaling — sim fabric, {FLOWS} flows x {msgs_per_flow} msgs of {}\n",
        fmt_size(size)
    );
    let mut table = Table::new(vec![
        "shards",
        "rails",
        "total",
        "virtual time (us)",
        "throughput (MB/s)",
        "scaling",
    ]);
    let mut base_mbs = 0.0;
    for n in SHARD_COUNTS {
        let row = run_shards(n, msgs_per_flow, size);
        if n == 1 {
            base_mbs = row.throughput_mbs;
        } else {
            report.record_scaling(
                &format!("scale_{n}x_over_1x"),
                row.throughput_mbs / base_mbs,
            );
        }
        table.row(vec![
            format!("{n}"),
            format!("{}", row.rails),
            fmt_size(row.total_bytes as usize),
            format!("{:.1}", row.virtual_us),
            format!("{:.0}", row.throughput_mbs),
            format!("{:.2}x", row.throughput_mbs / base_mbs),
        ]);
        report.record(row);
    }
    table.print();
    println!(
        "\n- every flow hashes to one shard on both nodes, so `n` shards drive `n`\n  \
         rails concurrently: the curve should grow monotonically towards `n`x."
    );
    report.write(&json);
}

/// Builds one node's engine over all its simulated rails.
fn engine(world: &SharedWorld, node: NodeId) -> NmadEngine {
    let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(world, node)
        .into_iter()
        .map(|d| Box::new(d) as Box<dyn Driver>)
        .collect();
    let meter = Box::new(nmad_net::SimCpuMeter::new(world.clone(), node));
    NmadEngine::new(
        drivers,
        meter,
        Box::new(StratAggreg),
        EngineCosts::from_software(&host::costs_madmpi()),
    )
}

/// One shard count: `n` rails per node, `n` shard engines per node,
/// the full flow fleet pushed through, throughput from virtual time.
fn run_shards(n: usize, msgs_per_flow: usize, size: usize) -> ShardRow {
    let world = shared_world(SimConfig::two_nodes_multirail(vec![nic::mx_myri10g(); n]));
    let policy = ShardPolicy::HashByDest;
    let split = |e: NmadEngine| -> Vec<NmadEngine> {
        if n > 1 {
            e.split_for_shards(n, policy)
        } else {
            vec![e]
        }
    };
    let mut senders = split(engine(&world, NodeId(0)));
    let mut sinks = split(engine(&world, NodeId(1)));

    // Each flow lives on the shard the routing hash picks — the same
    // index on both nodes, so its frames arrive where its receives are.
    let shard_of = |tag: u32| policy.route(n, NodeId(0), NodeId(1), Tag(tag));
    let mut recvs = Vec::new();
    let mut sends = Vec::new();
    let payload = vec![0x5Au8; size];
    let t0 = world.lock().now();
    for msg in 0..msgs_per_flow {
        for tag in 0..FLOWS as u32 {
            let s = shard_of(tag);
            recvs.push((s, sinks[s].post_recv(NodeId(0), Tag(tag), size)));
            sends.push((s, senders[s].isend(NodeId(1), Tag(tag), payload.clone())));
            let _ = msg;
        }
    }

    // Inline co-simulation: poll every shard of both nodes; when the
    // whole fleet is quiescent, advance virtual time to the next event.
    let done = |senders: &mut [NmadEngine], sinks: &mut [NmadEngine]| {
        sends.iter().all(|&(s, r)| senders[s].is_send_done(r))
            && recvs.iter().all(|&(s, r)| sinks[s].is_recv_done(r))
    };
    for _ in 0..10_000_000u64 {
        let mut moved = false;
        for e in senders.iter_mut().chain(sinks.iter_mut()) {
            moved |= e.progress_until_idle();
        }
        if done(&mut senders, &mut sinks) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!(
                "shard co-simulation deadlock at n={n}\n{}",
                world.lock().pending_summary()
            );
        }
    }
    assert!(
        done(&mut senders, &mut sinks),
        "shard co-simulation did not converge at n={n}"
    );
    for (s, r) in recvs.drain(..) {
        sinks[s].try_take_recv(r);
    }

    let virtual_us = world.lock().now().saturating_since(t0).as_us_f64();
    let total_bytes = (FLOWS * msgs_per_flow * size) as u64;
    ShardRow {
        shards: n,
        rails: n,
        flows: FLOWS,
        total_bytes,
        virtual_us,
        throughput_mbs: total_bytes as f64 / virtual_us.max(f64::EPSILON),
    }
}
