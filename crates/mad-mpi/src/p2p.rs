//! MPI point-to-point front-end.
//!
//! The subset the paper implements (§3.4): nonblocking posting
//! (`isend`, `irecv`) and completion (`wait`, `test`), plus
//! communicators and derived datatypes. Each [`MpiProc`] is one rank's
//! endpoint; ranks map 1:1 onto engine nodes.
//!
//! Communicator isolation is what makes the fig. 3 experiment
//! meaningful: each segment travels on its own communicator, and the
//! engine still aggregates across them because its optimization scope
//! is global, not per-flow.

use bytes::Bytes;

use crate::backend::{MpiBackend, RecvToken, SendToken};
use crate::datatype::Datatype;
use nmad_core::segment::Tag;
use nmad_sim::NodeId;

/// A communicator handle: an isolated tag space (context id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Comm {
    ctx: u16,
}

impl Comm {
    /// Context id 0 is reserved for library internals (collectives).
    pub(crate) const RESERVED: Comm = Comm { ctx: 0 };

    /// The raw context id backing this communicator.
    pub fn context(&self) -> u16 {
        self.ctx
    }
}

/// A nonblocking request handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Request {
    /// A packet left a node.
    Send(SendToken),
    /// A nonblocking receive.
    Recv(RecvToken),
}

/// A reusable (persistent) communication specification
/// (MPI_Send_init / MPI_Recv_init), activated by [`MpiProc::start`].
pub struct Persistent {
    op: PersistentOp,
    active: Option<Request>,
}

enum PersistentOp {
    Send {
        comm: Comm,
        peer: usize,
        tag: u16,
        data: Bytes,
    },
    Recv {
        comm: Comm,
        peer: usize,
        tag: u16,
        max: usize,
    },
}

impl Persistent {
    /// The currently active request, if started and not yet completed.
    pub fn active(&self) -> Option<Request> {
        self.active
    }
}

/// One MPI rank.
pub struct MpiProc {
    backend: Box<dyn MpiBackend>,
    rank: usize,
    size: usize,
    next_ctx: u16,
    /// Group (global ranks, in communicator rank order) per context.
    groups: std::collections::HashMap<u16, Vec<usize>>,
}

fn wire_tag(comm: Comm, tag: u16) -> Tag {
    Tag((comm.ctx as u32) << 16 | tag as u32)
}

impl MpiProc {
    /// Wraps a backend endpoint as rank `rank` of `size`.
    pub fn new(backend: Box<dyn MpiBackend>, rank: usize, size: usize) -> Self {
        assert!(rank < size, "rank out of range");
        assert_eq!(
            backend.node(),
            NodeId(rank as u32),
            "backend node must equal the MPI rank"
        );
        let mut groups = std::collections::HashMap::new();
        groups.insert(1, (0..size).collect());
        MpiProc {
            backend,
            rank,
            size,
            next_ctx: 2, // 0 = internals, 1 = MPI_COMM_WORLD
            groups,
        }
    }

    /// The group (global ranks, in communicator order) of `comm`.
    pub fn comm_group(&self, comm: Comm) -> &[usize] {
        self.groups
            .get(&comm.context())
            .expect("communicator unknown to this rank")
    }

    /// Number of ranks in `comm`.
    pub fn comm_size(&self, comm: Comm) -> usize {
        self.comm_group(comm).len()
    }

    /// This process's rank within `comm` (panics if not a member).
    pub fn comm_rank(&self, comm: Comm) -> usize {
        self.comm_group(comm)
            .iter()
            .position(|&g| g == self.rank)
            .expect("not a member of this communicator")
    }

    fn translate(&self, comm: Comm, rank_in_comm: usize) -> usize {
        let group = self.comm_group(comm);
        assert!(
            rank_in_comm < group.len(),
            "rank {rank_in_comm} out of range for a {}-rank communicator",
            group.len()
        );
        group[rank_in_comm]
    }

    /// Registers a communicator with an explicit group under a fresh
    /// context (used by `CommSplitOp`; all ranks must register splits
    /// in the same order, the usual MPI collective-ordering contract).
    pub(crate) fn register_comm(&mut self, group: Vec<usize>) -> Comm {
        let ctx = self.next_ctx;
        self.next_ctx = self
            .next_ctx
            .checked_add(1)
            .expect("context space exhausted");
        self.groups.insert(ctx, group);
        Comm { ctx }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Backend name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Access to the backend (tests inspect engine statistics).
    pub fn backend(&self) -> &dyn MpiBackend {
        self.backend.as_ref()
    }

    /// Installs a deterministic fault plan on rail `rail` of this
    /// rank's transport; `false` if the backend does not support
    /// injection.
    pub fn install_faults(&mut self, rail: usize, plan: nmad_net::FaultPlan) -> bool {
        self.backend.install_faults(rail, plan)
    }

    /// Fault-injection statistics for rail `rail` of this rank.
    pub fn fault_stats(&self, rail: usize) -> nmad_net::FaultStats {
        self.backend.fault_stats(rail)
    }

    /// MPI_COMM_WORLD.
    pub fn comm_world(&self) -> Comm {
        Comm { ctx: 1 }
    }

    /// Duplicates a communicator into a fresh context (deterministic
    /// local allocation: every rank calling in the same order obtains
    /// the same context ids, which is the MPI usage contract).
    pub fn comm_dup(&mut self, comm: Comm) -> Comm {
        let group = self.comm_group(comm).to_vec();
        self.register_comm(group)
    }

    /// Nonblocking contiguous standard-mode send.
    pub fn isend(&mut self, comm: Comm, dst: usize, tag: u16, data: impl Into<Bytes>) -> Request {
        let dst = self.translate(comm, dst);
        Request::Send(self.backend.isend_contig(
            NodeId(dst as u32),
            wire_tag(comm, tag),
            data.into(),
        ))
    }

    /// Nonblocking typed send of `dtype` blocks from `buf`.
    pub fn isend_typed(
        &mut self,
        comm: Comm,
        dst: usize,
        tag: u16,
        buf: &[u8],
        dtype: &Datatype,
    ) -> Request {
        let dst = self.translate(comm, dst);
        Request::Send(
            self.backend
                .isend_typed(NodeId(dst as u32), wire_tag(comm, tag), buf, dtype),
        )
    }

    /// Nonblocking contiguous receive of up to `max` bytes.
    pub fn irecv(&mut self, comm: Comm, src: usize, tag: u16, max: usize) -> Request {
        let src = self.translate(comm, src);
        Request::Recv(
            self.backend
                .irecv_contig(NodeId(src as u32), wire_tag(comm, tag), max),
        )
    }

    /// Nonblocking typed receive.
    pub fn irecv_typed(&mut self, comm: Comm, src: usize, tag: u16, dtype: &Datatype) -> Request {
        let src = self.translate(comm, src);
        Request::Recv(
            self.backend
                .irecv_typed(NodeId(src as u32), wire_tag(comm, tag), dtype),
        )
    }

    /// MPI_Test: true once the request completed (non-destructive; take
    /// receive payloads with [`take`](Self::take)).
    pub fn test(&mut self, req: Request) -> bool {
        match req {
            Request::Send(t) => self.backend.test_send(t),
            Request::Recv(t) => self.backend.test_recv(t),
        }
    }

    /// True once all requests completed.
    pub fn testall(&mut self, reqs: &[Request]) -> bool {
        reqs.iter().all(|&r| self.test(r))
    }

    /// Takes a completed receive's payload (`None` for sends or
    /// incomplete receives).
    pub fn take(&mut self, req: Request) -> Option<Vec<u8>> {
        match req {
            Request::Send(_) => None,
            Request::Recv(t) => self.backend.take_recv(t),
        }
    }

    /// One backend progress pump.
    pub fn progress(&mut self) -> bool {
        self.backend.progress()
    }

    /// MPI_Wait, spinning this rank's progress engine. Only meaningful
    /// on real transports; in simulations use a co-simulation loop.
    pub fn wait(&mut self, req: Request) {
        while !self.test(req) {
            if !self.progress() {
                std::thread::yield_now();
            }
        }
    }

    /// MPI_Waitall, with the same transport caveat as
    /// [`wait`](Self::wait).
    pub fn waitall(&mut self, reqs: &[Request]) {
        while !self.testall(reqs) {
            if !self.progress() {
                std::thread::yield_now();
            }
        }
    }

    /// MPI_Testany: index of some completed request, if any.
    pub fn testany(&mut self, reqs: &[Request]) -> Option<usize> {
        reqs.iter().position(|&r| self.test(r))
    }

    /// MPI_Waitany: spins until some request completes and returns its
    /// index (same transport caveat as [`wait`](Self::wait)). Panics on
    /// an empty slice.
    pub fn waitany(&mut self, reqs: &[Request]) -> usize {
        assert!(!reqs.is_empty(), "waitany on no requests");
        loop {
            if let Some(i) = self.testany(reqs) {
                return i;
            }
            if !self.progress() {
                std::thread::yield_now();
            }
        }
    }

    /// MPI_Iprobe: size of the next pending message on (comm, src,
    /// tag), if its data or rendezvous announcement has arrived, without
    /// receiving it.
    pub fn iprobe(&mut self, comm: Comm, src: usize, tag: u16) -> Option<usize> {
        let src = self.translate(comm, src);
        self.backend.probe(NodeId(src as u32), wire_tag(comm, tag))
    }

    /// Blocking standard-mode send (spins this rank's progress engine —
    /// real-transport convenience, see [`wait`](Self::wait)).
    pub fn send(&mut self, comm: Comm, dst: usize, tag: u16, data: impl Into<Bytes>) {
        let req = self.isend(comm, dst, tag, data);
        self.wait(req);
    }

    /// Blocking receive returning the payload (same transport caveat).
    pub fn recv(&mut self, comm: Comm, src: usize, tag: u16, max: usize) -> Vec<u8> {
        let req = self.irecv(comm, src, tag, max);
        self.wait(req);
        self.take(req).expect("receive completed by wait")
    }

    /// MPI_Sendrecv: concurrent send and receive, deadlock-free (same
    /// transport caveat).
    #[allow(clippy::too_many_arguments)] // mirrors the MPI signature
    pub fn sendrecv(
        &mut self,
        comm: Comm,
        dst: usize,
        send_tag: u16,
        data: impl Into<Bytes>,
        src: usize,
        recv_tag: u16,
        max: usize,
    ) -> Vec<u8> {
        let s = self.isend(comm, dst, send_tag, data);
        let r = self.irecv(comm, src, recv_tag, max);
        self.waitall(&[s, r]);
        self.take(r).expect("receive completed by waitall")
    }

    /// MPI_Send_init: prepares a reusable send specification. Activate
    /// it with [`start`](Self::start); each activation is a fresh
    /// nonblocking send of the same buffer.
    pub fn send_init(
        &mut self,
        comm: Comm,
        dst: usize,
        tag: u16,
        data: impl Into<Bytes>,
    ) -> Persistent {
        assert!(dst < self.size, "destination rank out of range");
        Persistent {
            op: PersistentOp::Send {
                comm,
                peer: dst,
                tag,
                data: data.into(),
            },
            active: None,
        }
    }

    /// MPI_Recv_init: prepares a reusable receive specification.
    pub fn recv_init(&mut self, comm: Comm, src: usize, tag: u16, max: usize) -> Persistent {
        assert!(src < self.size, "source rank out of range");
        Persistent {
            op: PersistentOp::Recv {
                comm,
                peer: src,
                tag,
                max,
            },
            active: None,
        }
    }

    /// MPI_Start: activates a persistent request. Panics if it is
    /// still active from a previous start (as in MPI, completing the
    /// request first is mandatory).
    pub fn start(&mut self, persistent: &mut Persistent) -> Request {
        if let Some(prev) = persistent.active {
            assert!(self.test(prev), "MPI_Start on an active persistent request");
        }
        let req = match &persistent.op {
            PersistentOp::Send {
                comm,
                peer,
                tag,
                data,
            } => self.isend(*comm, *peer, *tag, data.clone()),
            PersistentOp::Recv {
                comm,
                peer,
                tag,
                max,
            } => self.irecv(*comm, *peer, *tag, *max),
        };
        persistent.active = Some(req);
        req
    }

    pub(crate) fn internal_isend(&mut self, dst: usize, tag: u16, data: Bytes) -> Request {
        Request::Send(self.backend.isend_contig(
            NodeId(dst as u32),
            wire_tag(Comm::RESERVED, tag),
            data,
        ))
    }

    pub(crate) fn internal_irecv(&mut self, src: usize, tag: u16, max: usize) -> Request {
        Request::Recv(self.backend.irecv_contig(
            NodeId(src as u32),
            wire_tag(Comm::RESERVED, tag),
            max,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tag_isolates_contexts() {
        let c1 = Comm { ctx: 1 };
        let c2 = Comm { ctx: 2 };
        assert_ne!(wire_tag(c1, 7), wire_tag(c2, 7));
        assert_ne!(wire_tag(c1, 7), wire_tag(c1, 8));
        assert_eq!(wire_tag(c1, 7), wire_tag(Comm { ctx: 1 }, 7));
    }

    #[test]
    fn comm_dup_allocates_fresh_deterministic_contexts() {
        // Two ranks calling dup in the same order agree on contexts.
        let mk_ctxs = || {
            let mut out = vec![];
            for next in 2u16..5 {
                out.push(next);
            }
            out
        };
        assert_eq!(mk_ctxs(), mk_ctxs());
    }
}
