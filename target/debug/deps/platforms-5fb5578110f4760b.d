/root/repo/target/debug/deps/platforms-5fb5578110f4760b.d: crates/bench/src/bin/platforms.rs

/root/repo/target/debug/deps/platforms-5fb5578110f4760b: crates/bench/src/bin/platforms.rs

crates/bench/src/bin/platforms.rs:
