/root/repo/target/debug/deps/fanin-7bdeaeff937d5f4c.d: crates/bench/src/bin/fanin.rs

/root/repo/target/debug/deps/fanin-7bdeaeff937d5f4c: crates/bench/src/bin/fanin.rs

crates/bench/src/bin/fanin.rs:
