//! Figure 3 — multi-segment ping-pong (paper §5.2).
//!
//! Each "ping" is a burst of 8 or 16 independent `MPI_Isend`s, every
//! segment on its own communicator — demonstrating that MAD-MPI's
//! aggregation scope is global ("able to coalesce packets even if they
//! belong to different logical communication flows"). The paper reports
//! MAD-MPI up to ~70 % faster than MPICH/OpenMPI over MX and up to
//! ~50 % over Quadrics.
//!
//! Run: `cargo run --release -p bench --bin fig3 [-- --quick] [-- --json PATH]`

use bench::{
    bench_json_arg, byte_sizes, fmt_size, gain_pct, json_arg, pingpong_multiseg, write_json_report,
    BenchReport, LogLogChart, Series, Table,
};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_core::MetricsRegistry;
use nmad_sim::{nic, NicModel};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_arg();
    let iters = if quick { 1 } else { 4 };
    let registry = MetricsRegistry::new();
    let report = BenchReport::new();
    let madmpi = EngineKind::MadMpi(StrategyKind::Aggreg);

    for (panel, nic_model, segs, max, kinds) in [
        (
            "Fig 3(a) — 8 segments, MX/Myri-10G",
            nic::mx_myri10g(),
            8usize,
            16 * 1024,
            vec![madmpi, EngineKind::Mpich, EngineKind::Ompi],
        ),
        (
            "Fig 3(b) — 16 segments, MX/Myri-10G",
            nic::mx_myri10g(),
            16,
            16 * 1024,
            vec![madmpi, EngineKind::Mpich, EngineKind::Ompi],
        ),
        (
            "Fig 3(c) — 8 segments, Elan/Quadrics",
            nic::quadrics_qm500(),
            8,
            8 * 1024,
            vec![madmpi, EngineKind::Mpich],
        ),
        (
            "Fig 3(d) — 16 segments, Elan/Quadrics",
            nic::quadrics_qm500(),
            16,
            8 * 1024,
            vec![madmpi, EngineKind::Mpich],
        ),
    ] {
        let max = if quick { max.min(1024) } else { max };
        run_panel(
            panel, nic_model, segs, max, &kinds, iters, &registry, &report,
        );
    }
    write_json_report(json.as_deref(), &registry);
    report.write(&bench_json_arg());
}

#[allow(clippy::too_many_arguments)]
fn run_panel(
    title: &str,
    nic_model: NicModel,
    segs: usize,
    max_size: usize,
    kinds: &[EngineKind],
    iters: usize,
    registry: &MetricsRegistry,
    report: &BenchReport,
) {
    println!("\n## {title}\n");
    let mut headers: Vec<String> = vec!["seg size".into()];
    headers.extend(kinds.iter().map(|k| format!("{} (us)", k.label())));
    headers.push("frames Mad/MPICH".into());
    headers.push("gain vs MPICH".into());
    let mut table = Table::new(headers);

    let mut best_gain = f64::MIN;
    let glyphs = ['*', 'o', '+'];
    let mut series: Vec<Series> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| Series::new(k.label(), glyphs[i % glyphs.len()]))
        .collect();
    for size in byte_sizes(4, max_size) {
        let samples: Vec<_> = kinds
            .iter()
            .map(|&k| pingpong_multiseg(k, nic_model.clone(), segs, size, iters))
            .collect();
        for (k, s) in kinds.iter().zip(&samples) {
            if let Some(m) = &s.metrics {
                registry.record(
                    format!(
                        "fig3/{}/{}seg/{}/{}",
                        nic_model.name,
                        segs,
                        k.label(),
                        fmt_size(size)
                    ),
                    m.clone(),
                );
            }
            report.record(
                &format!("fig3/{}/{}seg", nic_model.name, segs),
                k.label(),
                size,
                std::slice::from_ref(s),
            );
        }
        for (i, s) in samples.iter().enumerate() {
            series[i].push(size as f64, s.one_way_us);
        }
        let gain = gain_pct(samples[0].one_way_us, samples[1].one_way_us);
        best_gain = best_gain.max(gain);
        let mut row: Vec<String> = vec![fmt_size(size)];
        row.extend(samples.iter().map(|s| format!("{:.2}", s.one_way_us)));
        row.push(format!(
            "{:.1}/{:.1}",
            samples[0].frames_per_ping, samples[1].frames_per_ping
        ));
        row.push(format!("{gain:.0}%"));
        table.row(row);
    }
    table.print();
    println!();
    let mut chart = LogLogChart::new(title.to_string(), "segment size (B)", "one-way us");
    for s in series {
        chart.add(s);
    }
    chart.print();
    println!("\n- best MadMPI gain vs MPICH on this panel: {best_gain:.0}%");
}
