//! Bounded lock-free submission ring between application threads and a
//! progression thread.
//!
//! The collect layer of the threaded progression mode: application
//! threads push operations with one CAS (no engine lock, no allocation
//! beyond the op itself), the progression thread drains them between
//! pump iterations. The ring is bounded — a full ring pushes back on
//! the application instead of growing without limit, exactly like a
//! NIC submission queue.
//!
//! Wakeup protocol: the progression thread parks on a condvar when the
//! engine is idle and the ring is empty. Producers raise the condvar
//! only when the `sleeping` flag is set, so the steady-state fast path
//! (consumer busy) costs producers one relaxed load. The flag-store /
//! emptiness-check race is closed Dekker-style with `SeqCst` fences on
//! both sides; the consumer additionally parks with a timeout, so even
//! a hypothetical missed wakeup only costs one park period.

use crate::sync::{fence, spin_loop, AtomicBool, Condvar, Mutex, Ordering};
use crossbeam::queue::ArrayQueue;
use std::time::Duration;

/// A bounded MPSC (by convention; MPMC-safe) submission ring with
/// consumer parking. See the module documentation.
pub struct SubmitRing<T> {
    queue: ArrayQueue<T>,
    sleeping: AtomicBool,
    lock: Mutex<()>,
    wakeup: Condvar,
}

impl<T: Send> SubmitRing<T> {
    /// A ring holding at most `capacity` pending operations.
    pub fn new(capacity: usize) -> Self {
        SubmitRing {
            queue: ArrayQueue::new(capacity),
            sleeping: AtomicBool::new(false),
            lock: Mutex::new(()),
            wakeup: Condvar::new(),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Operations currently buffered (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is buffered (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Non-blocking push; a full ring returns the operation back.
    /// Wakes the consumer if it is parked.
    // HOT-PATH: submit ring
    #[inline]
    pub fn try_push(&self, op: T) -> Result<(), T> {
        self.queue.push(op)?;
        self.doorbell();
        Ok(())
    }

    /// Pushes `op`, spinning (with yields) while the ring is full —
    /// backpressure, not loss.
    // HOT-PATH: submit ring
    pub fn push(&self, mut op: T) {
        loop {
            match self.queue.push(op) {
                Ok(()) => {
                    self.doorbell();
                    return;
                }
                Err(back) => {
                    op = back;
                    spin_loop();
                }
            }
        }
    }

    /// Non-blocking push *without* ringing the doorbell. Batched
    /// producers push a run of operations quietly and ring
    /// [`doorbell`](Self::doorbell) once at the end, paying one fence +
    /// flag load (and at most one notify) per batch instead of per op.
    /// A parked consumer stays parked until the doorbell — callers must
    /// ring it before waiting on any pushed operation.
    // HOT-PATH: submit ring
    #[inline]
    pub fn try_push_quiet(&self, op: T) -> Result<(), T> {
        self.queue.push(op)
    }

    /// [`push`](Self::push) without the doorbell: spins on a full ring,
    /// never notifies. See [`try_push_quiet`](Self::try_push_quiet).
    // HOT-PATH: submit ring
    pub fn push_quiet(&self, mut op: T) {
        loop {
            match self.queue.push(op) {
                Ok(()) => return,
                Err(back) => {
                    op = back;
                    spin_loop();
                }
            }
        }
    }

    /// Consumer side: next buffered operation, if any.
    // HOT-PATH: submit ring consumer
    #[inline]
    pub fn pop(&self) -> Option<T> {
        self.queue.pop()
    }

    /// Consumer side: parks the calling thread until the ring is
    /// (probably) non-empty or `timeout` elapses. Returns whether any
    /// operation is buffered on exit.
    // HOT-PATH: consumer park/wake
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        if !self.queue.is_empty() {
            return true;
        }
        let guard = self.lock.lock();
        self.sleeping.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Re-check after raising the flag: a producer that pushed
        // before our store will be seen here; one that pushes after
        // will see the flag and notify under the lock we hold.
        if !self.queue.is_empty() {
            self.sleeping.store(false, Ordering::SeqCst);
            return true;
        }
        let (guard, _) = self.wakeup.wait_timeout(guard, timeout); // BLOCKING-OK: deliberate bounded consumer park; producers never enter here
        self.sleeping.store(false, Ordering::SeqCst);
        drop(guard);
        !self.queue.is_empty()
    }

    /// Producer-side half of the wakeup protocol. Must be rung after
    /// every quiet push run; the plain `push`/`try_push` ring it
    /// automatically.
    // HOT-PATH: producer doorbell
    #[inline]
    pub fn doorbell(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            // Taking the lock orders this notify after the consumer's
            // flag-store and before (or after) its wait — never between.
            let _guard = self.lock.lock();
            self.wakeup.notify_one();
        }
    }
}

/// A fixed-capacity inline run of operations carried by one ring slot.
///
/// The batched submission path pushes one `Batch` (one CAS) for up to
/// `N` operations, and the consumer drains the whole run per pop.
/// Implemented as a safe `[Option<T>; N]` — no unsafe, no allocation;
/// for the small `N` used on the hot path the `Option` tags cost a few
/// words per slot, dwarfed by the per-op CAS/doorbell traffic they
/// amortize.
#[derive(Debug)]
pub struct Batch<T, const N: usize> {
    slots: [Option<T>; N],
    len: usize,
}

impl<T, const N: usize> Default for Batch<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Batch<T, N> {
    /// An empty batch.
    pub fn new() -> Self {
        Batch {
            slots: std::array::from_fn(|_| None),
            len: 0,
        }
    }

    /// A batch holding a single operation (the unbatched submission
    /// path reuses the batched slot format).
    pub fn of_one(op: T) -> Self {
        let mut batch = Self::new();
        let _ = batch.push(op);
        batch
    }

    /// Appends an operation; a full batch hands it back.
    // HOT-PATH: submit batch
    #[inline]
    pub fn push(&mut self, op: T) -> Result<(), T> {
        let Some(slot) = self.slots.get_mut(self.len) else {
            return Err(op);
        };
        *slot = Some(op);
        self.len += 1;
        Ok(())
    }

    /// Operations in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when another `push` would be refused.
    pub fn is_full(&self) -> bool {
        self.len == N
    }
}

impl<T, const N: usize> IntoIterator for Batch<T, N> {
    type Item = T;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<T>, N>>;

    /// Drains the operations in push order.
    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter().flatten()
    }
}

impl<T> std::fmt::Debug for SubmitRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitRing")
            .field("cap", &self.queue.capacity())
            .field("len", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity_bound() {
        let ring = SubmitRing::new(4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "no loss at capacity");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wakeup_on_nonempty() {
        let ring = Arc::new(SubmitRing::new(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                // Park for up to 5 s; the producer below must wake us
                // long before that.
                let t0 = std::time::Instant::now();
                while ring.pop().is_none() {
                    ring.wait_nonempty(Duration::from_secs(5));
                    assert!(t0.elapsed() < Duration::from_secs(30), "never woken");
                }
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.push(1u32);
        consumer.join().unwrap();
    }

    #[test]
    fn batch_is_fifo_bounded_and_reusable() {
        let mut b: Batch<u32, 4> = Batch::new();
        assert!(b.is_empty());
        for i in 0..4 {
            b.push(i).unwrap();
        }
        assert!(b.is_full());
        assert_eq!(b.push(99), Err(99), "full batch hands the op back");
        assert_eq!(b.len(), 4);
        assert_eq!(b.into_iter().collect::<Vec<_>>(), [0, 1, 2, 3]);

        let one = Batch::<u32, 4>::of_one(7);
        assert_eq!(one.len(), 1);
        assert_eq!(one.into_iter().collect::<Vec<_>>(), [7]);
    }

    #[test]
    fn quiet_pushes_with_one_doorbell_wake_a_parked_consumer() {
        let ring = Arc::new(SubmitRing::new(64));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let t0 = std::time::Instant::now();
                let mut got = Vec::new();
                while got.len() < 32 {
                    while let Some(v) = ring.pop() {
                        got.push(v);
                    }
                    if got.len() < 32 {
                        ring.wait_nonempty(Duration::from_secs(5));
                        assert!(t0.elapsed() < Duration::from_secs(30), "never woken");
                    }
                }
                got
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        for i in 0..32u32 {
            ring.push_quiet(i);
        }
        ring.doorbell();
        let got = consumer.join().unwrap();
        assert_eq!(
            got,
            (0..32).collect::<Vec<_>>(),
            "quiet pushes lost or reordered"
        );
    }

    #[test]
    fn wait_returns_immediately_when_nonempty() {
        let ring = SubmitRing::new(2);
        ring.push(7u8);
        let t0 = std::time::Instant::now();
        assert!(ring.wait_nonempty(Duration::from_secs(10)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn blocking_push_applies_backpressure_not_loss() {
        let ring = Arc::new(SubmitRing::new(2));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..1_000u32 {
                    ring.push(i);
                }
            })
        };
        let mut next = 0;
        while next < 1_000 {
            if let Some(v) = ring.pop() {
                assert_eq!(v, next, "single-producer FIFO broken");
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    proptest! {
        /// Any interleaved push/pop schedule preserves FIFO order and
        /// loses nothing: values popped are exactly the longest-pushed
        /// prefix, in order, and pushes refused by a full ring are
        /// exactly the overflow beyond capacity.
        #[test]
        fn ring_is_fifo_and_lossless(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let cap = 8;
            let ring = SubmitRing::new(cap);
            let mut next_push = 0u64;
            let mut next_pop = 0u64;
            for push in ops {
                if push {
                    match ring.try_push(next_push) {
                        Ok(()) => {
                            prop_assert!(next_push - next_pop < cap as u64,
                                "accepted a push beyond capacity");
                            next_push += 1;
                        }
                        Err(v) => {
                            prop_assert_eq!(v, next_push, "refused push must hand the value back");
                            prop_assert_eq!(next_push - next_pop, cap as u64,
                                "refused a push below capacity");
                        }
                    }
                } else {
                    match ring.pop() {
                        Some(v) => {
                            prop_assert_eq!(v, next_pop, "out-of-order pop");
                            next_pop += 1;
                        }
                        None => prop_assert_eq!(next_pop, next_push, "empty pop with values pending"),
                    }
                }
            }
            // Drain: everything pushed and not yet popped comes out in order.
            while let Some(v) = ring.pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
            prop_assert_eq!(next_pop, next_push, "values lost in the ring");
        }
    }
}
