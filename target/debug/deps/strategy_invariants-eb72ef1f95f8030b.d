/root/repo/target/debug/deps/strategy_invariants-eb72ef1f95f8030b.d: tests/strategy_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libstrategy_invariants-eb72ef1f95f8030b.rmeta: tests/strategy_invariants.rs Cargo.toml

tests/strategy_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
