//! Integration: seeded multi-threaded stress over the threaded
//! progression mode.
//!
//! N application threads share one node's [`ThreadedHandle`] and blast
//! seeded traffic at M peer engines (each on its own progression
//! thread) over the mem transport. The test then proves the submission
//! ring / completion board pipeline lost nothing, duplicated nothing,
//! and delivered every payload byte-identical and per-flow in order.
//! The payload schedule is a pure function of `SEED`, so a failure
//! reproduces.

use std::time::{Duration, Instant};

use newmadeleine::core::prelude::*;
use newmadeleine::core::{RecvDone, ThreadedEngine, ThreadedHandle};
use newmadeleine::net::mem::mem_fabric;
use newmadeleine::net::NullMeter;
use newmadeleine::sim::NodeId;

const SEED: u64 = 0x5eed_cafe_d00d_0001;
/// Application threads sharing node 0's handle.
const APP_THREADS: u32 = 4;
/// Messages per (thread, peer) flow.
const MSGS_PER_FLOW: u32 = 25;
/// Peer nodes receiving the traffic.
const PEERS: u32 = 2;

const WATCHDOG: Duration = Duration::from_secs(60);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic payload for message `i` of flow (thread, peer).
/// Mostly eager-sized; every eighth crosses the mem driver's 64 KiB
/// rendezvous threshold so the RTS/CTS path is stressed too.
fn payload(thread: u32, peer: u32, i: u32) -> Vec<u8> {
    let mut s = SEED ^ (u64::from(thread) << 40) ^ (u64::from(peer) << 20) ^ u64::from(i);
    let len = if i % 8 == 7 {
        70_000 + (splitmix(&mut s) % 4096) as usize
    } else {
        (splitmix(&mut s) % 2048) as usize
    };
    (0..len)
        .map(|j| (splitmix(&mut s) ^ j as u64) as u8)
        .collect()
}

/// Flow tag: thread `t` towards any peer uses Tag(t), so each
/// (source, tag) flow is fed by exactly one application thread and
/// per-flow FIFO is well-defined.
fn flow_tag(thread: u32) -> Tag {
    Tag(thread)
}

fn wait_send(h: &ThreadedHandle, req: SendReqId, t0: Instant) {
    while !h.is_send_done(req) {
        assert!(t0.elapsed() < WATCHDOG, "send {req:?} never completed");
        std::thread::yield_now();
    }
}

fn wait_recv(h: &ThreadedHandle, req: RecvReqId, t0: Instant) -> RecvDone {
    loop {
        if let Some(done) = h.try_take_recv(req) {
            return done;
        }
        assert!(t0.elapsed() < WATCHDOG, "recv {req:?} never completed");
        std::thread::yield_now();
    }
}

/// Builds the (sender, peers) engines over `shards` independent mem
/// rails per node (one fully connected fabric per rail) and launches
/// each on `shards` progression shards. With `shards == 1` this is
/// exactly the original single-engine runtime.
fn launch_cluster(shards: usize) -> (ThreadedEngine, Vec<ThreadedEngine>) {
    let nodes = (PEERS + 1) as usize;
    let mut rails: Vec<Vec<Box<dyn newmadeleine::net::Driver>>> =
        (0..nodes).map(|_| Vec::new()).collect();
    for _ in 0..shards {
        for (node, d) in mem_fabric(nodes).into_iter().enumerate() {
            rails[node].push(Box::new(d));
        }
    }
    let launch = |drivers: Vec<Box<dyn newmadeleine::net::Driver>>| {
        ThreadedEngine::launch(
            NmadEngine::new(
                drivers,
                Box::new(NullMeter),
                Box::new(StratAggreg),
                EngineCosts::zero(),
            ),
            EngineConfig::sharded(shards),
        )
    };
    let mut engines: Vec<ThreadedEngine> = rails.into_iter().map(launch).collect();
    let node0 = engines.remove(0);
    (node0, engines)
}

fn stress_loses_nothing_and_duplicates_nothing(shards: usize) {
    let (node0, peers) = launch_cluster(shards);
    assert_eq!(node0.shards(), shards, "no clamp expected: rails == shards");
    let peer_handles: Vec<ThreadedHandle> = peers.iter().map(|p| p.handle()).collect();
    let t0 = Instant::now();

    // Every peer posts its receives up front, in flow order: for flow
    // (node 0, Tag(t)), recv j matches thread t's j-th send to that
    // peer — per-flow FIFO delivery is part of what is being proven.
    let mut recvs: Vec<Vec<Vec<RecvReqId>>> = Vec::new(); // [peer][thread][i]
    for ph in &peer_handles {
        let mut per_thread = Vec::new();
        for t in 0..APP_THREADS {
            per_thread.push(
                (0..MSGS_PER_FLOW)
                    .map(|_| ph.post_recv(NodeId(0), flow_tag(t), 80_000))
                    .collect::<Vec<_>>(),
            );
        }
        recvs.push(per_thread);
    }

    // N app threads share node 0's engine through cloned handles.
    // Thread t owns Tag(t): its submission order is the flow order.
    let app_threads: Vec<_> = (0..APP_THREADS)
        .map(|t| {
            let h = node0.handle();
            std::thread::spawn(move || {
                let mut sends = Vec::new();
                for i in 0..MSGS_PER_FLOW {
                    for peer in 0..PEERS {
                        let body = payload(t, peer, i);
                        let req = h.isend(NodeId(peer + 1), flow_tag(t), body);
                        sends.push(req);
                    }
                }
                for req in sends {
                    wait_send(&h, req, t0);
                }
            })
        })
        .collect();
    for th in app_threads {
        th.join().expect("app thread panicked");
    }

    // Every payload arrives byte-identical, in per-flow order.
    for (p, ph) in peer_handles.iter().enumerate() {
        for t in 0..APP_THREADS {
            for i in 0..MSGS_PER_FLOW {
                let req = recvs[p][t as usize][i as usize];
                let done = wait_recv(ph, req, t0);
                let expect = payload(t, p as u32, i);
                assert_eq!(done.src, NodeId(0));
                assert_eq!(
                    done.data.as_slice(),
                    expect.as_slice(),
                    "peer {p} flow {t} msg {i}: payload corrupted \
                     (len {} vs {})",
                    done.data.len(),
                    expect.len()
                );
                assert!(
                    ph.try_take_recv(req).is_none(),
                    "completion delivered twice"
                );
            }
        }
    }

    // No completion was ever posted twice anywhere.
    let h0 = node0.handle();
    assert_eq!(h0.completion_duplicates(), 0, "duplicate send completions");
    for ph in &peer_handles {
        assert_eq!(ph.completion_duplicates(), 0, "duplicate recv completions");
    }

    // Exact conservation, checked against the engine's own books via
    // the snapshot RPC: node 0 accepted exactly one request per
    // message, the peers matched exactly one receive per message.
    let total = u64::from(APP_THREADS * PEERS * MSGS_PER_FLOW);
    let snap = h0.metrics();
    assert_eq!(snap.engine.requests_submitted, total);
    let per_peer = u64::from(APP_THREADS * MSGS_PER_FLOW);
    for ph in &peer_handles {
        let snap = ph.metrics();
        assert_eq!(snap.engine.recvs_posted, per_peer);
        assert_eq!(snap.engine.duplicates_dropped, 0);
    }

    // Clean teardown returns every engine — re-merged from its shards
    // — with nothing pending.
    let e0 = node0.shutdown();
    assert!(e0.tx_quiescent(), "sender retired with work pending");
    assert_eq!(e0.rail_count(), shards, "merge restores every rail");
    for p in peers {
        let e = p.shutdown();
        assert!(e.tx_quiescent());
    }
}

#[test]
fn threaded_stress_loses_nothing_and_duplicates_nothing() {
    stress_loses_nothing_and_duplicates_nothing(1);
}

#[test]
fn threaded_stress_two_shards_loses_nothing_and_duplicates_nothing() {
    stress_loses_nothing_and_duplicates_nothing(2);
}

#[test]
fn threaded_stress_four_shards_loses_nothing_and_duplicates_nothing() {
    stress_loses_nothing_and_duplicates_nothing(4);
}

/// Same schedule, twice: the payload schedule and conservation totals
/// are a pure function of the seed, so both runs agree exactly. (Wire
/// interleaving may differ — that is the point of the matching layer —
/// but nothing observable to the application may.)
#[test]
fn threaded_stress_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        let launch = |d: newmadeleine::net::mem::MemDriver| {
            ThreadedEngine::launch(
                NmadEngine::new(
                    vec![Box::new(d)],
                    Box::new(NullMeter),
                    Box::new(StratAggreg),
                    EngineCosts::zero(),
                ),
                EngineConfig::threaded(),
            )
        };
        let (a, b) = (launch(a), launch(b));
        let (ah, bh) = (a.handle(), b.handle());
        let t0 = Instant::now();
        let recvs: Vec<_> = (0..MSGS_PER_FLOW)
            .map(|_| bh.post_recv(NodeId(0), Tag(0), 80_000))
            .collect();
        let sends: Vec<_> = (0..MSGS_PER_FLOW)
            .map(|i| ah.isend(NodeId(1), Tag(0), payload(0, 0, i)))
            .collect();
        for s in sends {
            wait_send(&ah, s, t0);
        }
        let digests: Vec<(usize, u8)> = recvs
            .into_iter()
            .map(|r| {
                let done = wait_recv(&bh, r, t0);
                let sum = done
                    .data
                    .as_slice()
                    .iter()
                    .fold(0u8, |acc, &x| acc.wrapping_add(x));
                (done.data.len(), sum)
            })
            .collect();
        let submitted = ah.metrics().engine.requests_submitted;
        (digests, submitted)
    };
    assert_eq!(run(), run());
}
