/root/repo/target/debug/deps/failover-8f3f147afbecc3be.d: tests/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-8f3f147afbecc3be.rmeta: tests/failover.rs Cargo.toml

tests/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
