//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * **strategy ablation** — the fig. 3 multi-segment workload under
//!   every scheduling strategy (default / aggreg / reorder), isolating
//!   the value of aggregation and of reordering;
//! * **threshold sweep** — the same workload while varying the
//!   aggregation bound (the rendezvous threshold), showing where the
//!   paper's "accumulate until the cumulated length requires
//!   rendezvous" rule sits in the trade-off space;
//! * **datatype strategy ablation** — the fig. 4 workload: reordering
//!   is what lets small blocks coalesce past the in-queue large blocks.
//!
//! Run: `cargo run --release -p bench --bin ablation [-- --quick]`

use bench::{byte_sizes, fmt_size, pingpong_multiseg, pingpong_typed, Table};
use mad_mpi::{Datatype, EngineKind, StrategyKind};
use nmad_sim::nic;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 4 };

    strategy_ablation(iters, quick);
    threshold_sweep(iters);
    datatype_ablation(iters, quick);
}

fn strategy_ablation(iters: usize, quick: bool) {
    println!("\n## Strategy ablation — fig. 3 workload (8 segments, MX)\n");
    let strategies = [
        StrategyKind::Default,
        StrategyKind::Aggreg,
        StrategyKind::Reorder,
    ];
    let mut headers: Vec<String> = vec!["seg size".into()];
    headers.extend(strategies.iter().map(|s| format!("{} (us)", s.name())));
    headers.extend(strategies.iter().map(|s| format!("{} frames", s.name())));
    let mut table = Table::new(headers);
    let max = if quick { 1024 } else { 16 * 1024 };
    for size in byte_sizes(4, max) {
        let samples: Vec<_> = strategies
            .iter()
            .map(|&s| pingpong_multiseg(EngineKind::MadMpi(s), nic::mx_myri10g(), 8, size, iters))
            .collect();
        let mut row = vec![fmt_size(size)];
        row.extend(samples.iter().map(|s| format!("{:.2}", s.one_way_us)));
        row.extend(samples.iter().map(|s| format!("{:.1}", s.frames_per_ping)));
        table.row(row);
    }
    table.print();
}

fn threshold_sweep(iters: usize) {
    println!("\n## Aggregation-threshold sweep — 16×256 B burst, MX\n");
    let mut table = Table::new(vec!["threshold", "one-way (us)", "frames/ping"]);
    for threshold in [512usize, 1024, 4 * 1024, 16 * 1024, 32 * 1024, 128 * 1024] {
        let mut nic_model = nic::mx_myri10g();
        nic_model.rdv_threshold = threshold;
        let s = pingpong_multiseg(
            EngineKind::MadMpi(StrategyKind::Aggreg),
            nic_model,
            16,
            256,
            iters,
        );
        table.row(vec![
            fmt_size(threshold),
            format!("{:.2}", s.one_way_us),
            format!("{:.1}", s.frames_per_ping),
        ]);
    }
    table.print();
    println!("\n- small thresholds fragment the burst; beyond the burst size the curve flattens.");
}

fn datatype_ablation(iters: usize, quick: bool) {
    println!("\n## Datatype strategy ablation — fig. 4 workload, MX\n");
    let strategies = [
        StrategyKind::Default,
        StrategyKind::Aggreg,
        StrategyKind::Reorder,
    ];
    let mut headers: Vec<String> = vec!["msg size".into()];
    headers.extend(strategies.iter().map(|s| format!("{} (us)", s.name())));
    let mut table = Table::new(headers);
    let pair_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    for &pairs in pair_counts {
        let dtype = Datatype::alternating(64, 256 * 1024, pairs);
        let mut row = vec![fmt_size(pairs * 256 * 1024)];
        for &s in &strategies {
            let sample = pingpong_typed(EngineKind::MadMpi(s), nic::mx_myri10g(), &dtype, iters);
            row.push(format!("{:.0}", sample.one_way_us));
        }
        table.row(row);
    }
    table.print();
}
