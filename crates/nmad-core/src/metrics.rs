//! Engine-wide observability: cheap counters every layer reports into.
//!
//! The engine is a polled, single-threaded state machine, so the hot
//! counters are plain `u64` cells bumped inline — no atomics, no locks
//! on the progress path. Synchronisation appears only at the API
//! boundary: [`MetricsRegistry`] guards its collected snapshots with a
//! `parking_lot` mutex so harnesses can gather reports from wherever
//! benchmark loops run.
//!
//! Three layers feed the counters:
//!
//! * the **collect layer** counts submitted requests, enqueued bytes
//!   and the optimization window's occupancy high-water mark;
//! * the **scheduling layer** counts synthesized frames, aggregated
//!   entries (their ratio is the paper's headline aggregation metric),
//!   reorder decisions and the eager/rendezvous split;
//! * the **transfer layer** contributes per-NIC
//!   [`LinkStats`](nmad_net::LinkStats) (busy/idle wire time,
//!   retransmits, acks) straight from the drivers.

use crate::engine::EngineStats;
use crate::sync::{fence, spin_loop, AtomicU64, Ordering};
use nmad_net::{EndpointStats, LinkStats};
use parking_lot::Mutex;
use std::fmt::Write as _;

/// Plain-cell counters the engine bumps inline on the progress path.
///
/// All counters are cumulative since engine construction and only ever
/// increase (the high-water mark is monotone too: it ratchets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Send requests accepted by the collect layer.
    pub requests_submitted: u64,
    /// Receive requests posted to the matching table.
    pub recvs_posted: u64,
    /// Payload bytes enqueued into the optimization window.
    pub bytes_enqueued: u64,
    /// Most segments ever resident in the optimization window at once.
    pub window_depth_hwm: u64,
    /// Frames the strategy synthesized (successful posts only).
    pub frames_synthesized: u64,
    /// Wire entries carried by those frames.
    pub entries_aggregated: u64,
    /// Eager data entries among them.
    pub eager_entries: u64,
    /// Rendezvous entries among them (RTS + CTS + chunks).
    pub rendezvous_entries: u64,
    /// Entries a strategy pulled out of submission order.
    pub reorder_decisions: u64,
    /// Rails whose driver refused a send and was marked dead.
    pub rail_faults: u64,
    /// Plan entries handed back to the window after a rail fault
    /// (both the refused frame and stranded in-flight frames).
    pub requeued_entries: u64,
    /// Duplicate wire entries the matching layer discarded
    /// (retransmissions and conservative failover requeues).
    pub duplicates_dropped: u64,
    /// CTS entries for already-granted or completed rendezvous
    /// transfers, ignored instead of treated as protocol errors.
    pub stale_cts_ignored: u64,
    /// Frames posted as multi-segment gather iovs (the NIC DMA-
    /// gathered them; no staging copy was paid).
    pub gather_sends: u64,
    /// Frame buffers served from the recycling pool.
    pub pool_hits: u64,
    /// Frame buffers freshly allocated because the pool was empty.
    pub pool_misses: u64,
    /// Receive-side bytes actually memcpy'd (rendezvous reassembly
    /// without RDMA; eager paths are zero-copy slices).
    pub bytes_copied_rx: u64,
    /// Connections accepted and handshaken by connection-oriented
    /// drivers (summed across rails at snapshot time).
    pub ep_accepts: u64,
    /// Inbound connections dropped during their handshake.
    pub ep_handshake_failures: u64,
    /// Established connections torn down.
    pub ep_teardowns: u64,
    /// Readiness polls that woke with at least one event.
    pub ep_readiness_wakeups: u64,
    /// Per-socket readiness events serviced — O(ready), not O(held).
    pub ep_sockets_polled: u64,
    /// Readiness events that produced no progress.
    pub ep_spurious_wakeups: u64,
    /// Receive-side pauses for backpressure (socket backlog caps plus
    /// engine saturation signals).
    pub ep_backpressure_stalls: u64,
}

impl EngineMetrics {
    /// Ratchets the window high-water mark.
    pub fn observe_window_depth(&mut self, depth: usize) {
        self.window_depth_hwm = self.window_depth_hwm.max(depth as u64);
    }

    /// Adds `other`'s counters into `self` — aggregation across the
    /// shard engines of a sharded runtime. Every counter sums except
    /// the window high-water mark, which takes the deepest shard (the
    /// shards' windows are disjoint slices, so neither a sum nor a max
    /// reproduces the monolith exactly; the max is the honest bound).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.requests_submitted += other.requests_submitted;
        self.recvs_posted += other.recvs_posted;
        self.bytes_enqueued += other.bytes_enqueued;
        self.window_depth_hwm = self.window_depth_hwm.max(other.window_depth_hwm);
        self.frames_synthesized += other.frames_synthesized;
        self.entries_aggregated += other.entries_aggregated;
        self.eager_entries += other.eager_entries;
        self.rendezvous_entries += other.rendezvous_entries;
        self.reorder_decisions += other.reorder_decisions;
        self.rail_faults += other.rail_faults;
        self.requeued_entries += other.requeued_entries;
        self.duplicates_dropped += other.duplicates_dropped;
        self.stale_cts_ignored += other.stale_cts_ignored;
        self.gather_sends += other.gather_sends;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.bytes_copied_rx += other.bytes_copied_rx;
        self.ep_accepts += other.ep_accepts;
        self.ep_handshake_failures += other.ep_handshake_failures;
        self.ep_teardowns += other.ep_teardowns;
        self.ep_readiness_wakeups += other.ep_readiness_wakeups;
        self.ep_sockets_polled += other.ep_sockets_polled;
        self.ep_spurious_wakeups += other.ep_spurious_wakeups;
        self.ep_backpressure_stalls += other.ep_backpressure_stalls;
    }

    /// Overwrites the endpoint-layer counters from the drivers'
    /// cumulative [`EndpointStats`] (summed across rails by the caller
    /// at snapshot time — the drivers own these counters, the engine
    /// only mirrors them).
    pub fn set_endpoint(&mut self, s: &EndpointStats) {
        self.ep_accepts = s.accepts;
        self.ep_handshake_failures = s.handshake_failures;
        self.ep_teardowns = s.teardowns;
        self.ep_readiness_wakeups = s.readiness_wakeups;
        self.ep_sockets_polled = s.sockets_polled;
        self.ep_spurious_wakeups = s.spurious_wakeups;
        self.ep_backpressure_stalls = s.backpressure_stalls;
    }

    /// Mean wire entries per synthesized frame — the aggregation ratio
    /// of the paper's §5.1 experiment. `0.0` before any frame leaves.
    pub fn aggregation_ratio(&self) -> f64 {
        if self.frames_synthesized == 0 {
            0.0
        } else {
            self.entries_aggregated as f64 / self.frames_synthesized as f64
        }
    }
}

/// One NIC's transfer-layer counters, labeled with the driver name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NicMetrics {
    /// Technology name from the driver capabilities.
    pub name: String,
    /// Cumulative link counters reported by the driver.
    pub link: LinkStats,
}

/// A point-in-time copy of every observable counter of one engine.
///
/// Cheap to take (a handful of copies plus one driver call per NIC)
/// and fully detached from the engine afterwards.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Name of the scheduling strategy driving the engine.
    pub strategy: &'static str,
    /// Collect- and scheduling-layer counters.
    pub engine: EngineMetrics,
    /// Wire-level counters (frames/entries actually sent and received).
    pub wire: EngineStats,
    /// Per-NIC transfer-layer counters, in rail order.
    pub nics: Vec<NicMetrics>,
}

impl MetricsSnapshot {
    /// Mean wire entries per synthesized frame. See
    /// [`EngineMetrics::aggregation_ratio`].
    pub fn aggregation_ratio(&self) -> f64 {
        self.engine.aggregation_ratio()
    }

    /// Renders the snapshot as one machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let e = &self.engine;
        let w = &self.wire;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"strategy\":{},\"collect\":{{\"requests_submitted\":{},\"recvs_posted\":{},\
             \"bytes_enqueued\":{},\"window_depth_hwm\":{}}},\
             \"scheduling\":{{\"frames_synthesized\":{},\"entries_aggregated\":{},\
             \"aggregation_ratio\":{:.4},\"eager_entries\":{},\"rendezvous_entries\":{},\
             \"reorder_decisions\":{}}},\
             \"faults\":{{\"rail_faults\":{},\"requeued_entries\":{},\
             \"duplicates_dropped\":{},\"stale_cts_ignored\":{}}},\
             \"zero_copy\":{{\"gather_sends\":{},\"pool_hits\":{},\"pool_misses\":{},\
             \"bytes_copied_rx\":{}}},\
             \"endpoint\":{{\"accepts\":{},\"handshake_failures\":{},\"teardowns\":{},\
             \"readiness_wakeups\":{},\"sockets_polled\":{},\"spurious_wakeups\":{},\
             \"backpressure_stalls\":{}}},\
             \"wire\":{{\"frames_sent\":{},\"frames_received\":{},\"data_entries\":{},\
             \"rts_entries\":{},\"cts_entries\":{},\"chunk_entries\":{},\"staging_copies\":{},\
             \"credit_stalls\":{},\"credit_frames\":{}}},\"nics\":[",
            json_string(self.strategy),
            e.requests_submitted,
            e.recvs_posted,
            e.bytes_enqueued,
            e.window_depth_hwm,
            e.frames_synthesized,
            e.entries_aggregated,
            e.aggregation_ratio(),
            e.eager_entries,
            e.rendezvous_entries,
            e.reorder_decisions,
            e.rail_faults,
            e.requeued_entries,
            e.duplicates_dropped,
            e.stale_cts_ignored,
            e.gather_sends,
            e.pool_hits,
            e.pool_misses,
            e.bytes_copied_rx,
            e.ep_accepts,
            e.ep_handshake_failures,
            e.ep_teardowns,
            e.ep_readiness_wakeups,
            e.ep_sockets_polled,
            e.ep_spurious_wakeups,
            e.ep_backpressure_stalls,
            w.frames_sent,
            w.frames_received,
            w.data_entries,
            w.rts_entries,
            w.cts_entries,
            w.chunk_entries,
            w.staging_copies,
            w.credit_stalls,
            w.credit_frames,
        );
        for (i, nic) in self.nics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"busy_ns\":{},\"idle_ns\":{},\"retransmits\":{},\"acks\":{}}}",
                json_string(&nic.name),
                nic.link.busy_ns,
                nic.link.idle_ns,
                nic.link.retransmits,
                nic.link.acks,
            );
        }
        out.push_str("]}");
        out
    }
}

/// Thread-safe collection of labeled snapshots, rendered as one JSON
/// report. The lock lives here — at the API boundary — not in the
/// engine's counters.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, MetricsSnapshot)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `snapshot` under `label` (e.g. `"fig2/aggreg/4096B"`).
    pub fn record(&self, label: impl Into<String>, snapshot: MetricsSnapshot) {
        self.entries.lock().push((label.into(), snapshot));
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Renders every recorded snapshot as one JSON array of
    /// `{"label": ..., "metrics": {...}}` objects, in record order.
    pub fn to_json(&self) -> String {
        let entries = self.entries.lock();
        let mut out = String::from("[");
        for (i, (label, snap)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"metrics\":{}}}",
                json_string(label),
                snap.to_json()
            );
        }
        out.push(']');
        out
    }
}

/// Number of `u64` counters mirrored through [`SharedMetrics`]:
/// 24 [`EngineMetrics`] fields plus 9 [`EngineStats`] fields.
const SHARED_WORDS: usize = 33;

/// A single-writer seqlock over `N` words: the writer publishes a
/// consistent array without ever blocking, readers retry torn reads.
///
/// The sequence word is odd while a publish is in flight and even while
/// the cells are stable. A reader that observes the same even sequence
/// before and after copying the cells holds a copy some writer actually
/// published; the `Release` store on the writer side and the `Acquire`
/// fence between the reader's copy and its re-check close the race on
/// weak memory. All atomics go through [`crate::sync`], so the whole
/// protocol — including a deliberately weakened mutant — is
/// exhaustively model-checked under `cfg(nmad_model)`.
#[derive(Debug)]
pub struct Seqlock<const N: usize> {
    /// Odd while a publish is in flight, even when the cells are stable.
    seq: AtomicU64,
    vals: [AtomicU64; N],
}

impl<const N: usize> Default for Seqlock<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Seqlock<N> {
    /// An all-zero seqlock.
    pub fn new() -> Self {
        Seqlock {
            seq: AtomicU64::new(0),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Writer side (single writer only): publishes a consistent copy of
    /// `words`. Never blocks and never waits on readers.
    pub fn publish(&self, words: &[u64; N]) {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s % 2, 0, "concurrent Seqlock writers");
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for (cell, word) in self.vals.iter().zip(words) {
            cell.store(*word, Ordering::Relaxed);
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Reader side (any thread): a consistent copy of the last
    /// published words. Loops on torn reads; wait-free in practice
    /// because the writer publishes in O(N stores).
    pub fn read(&self) -> [u64; N] {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                spin_loop();
                continue;
            }
            let words: [u64; N] = std::array::from_fn(|i| self.vals[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return words;
            }
            spin_loop();
        }
    }
}

/// Seqlock-published mirror of the engine's hot counters for the
/// threaded progression mode.
///
/// The progression thread owns the engine, so the plain-`u64` counters
/// stay plain and lock-free on the progress path; after each pump it
/// *publishes* a copy here through a [`Seqlock`]. Application threads
/// read the mirror without taking any lock and without ever blocking
/// the publisher: a torn read (publisher mid-write) is detected through
/// the sequence word and retried, so a snapshot handed out is always
/// one the publisher actually wrote — counters from progression threads
/// can never race a half-updated view into a report.
#[derive(Debug, Default)]
pub struct SharedMetrics {
    words: Seqlock<SHARED_WORDS>,
}

impl SharedMetrics {
    /// An all-zero mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer side (progression thread only): publishes a consistent
    /// copy of the counters. Never blocks and never waits on readers.
    pub fn publish(&self, engine: &EngineMetrics, wire: &EngineStats) {
        self.words.publish(&flatten(engine, wire));
    }

    /// Reader side (any thread): a consistent copy of the last
    /// published counters.
    pub fn read(&self) -> (EngineMetrics, EngineStats) {
        unflatten(&self.words.read())
    }
}

fn flatten(e: &EngineMetrics, w: &EngineStats) -> [u64; SHARED_WORDS] {
    [
        e.requests_submitted,
        e.recvs_posted,
        e.bytes_enqueued,
        e.window_depth_hwm,
        e.frames_synthesized,
        e.entries_aggregated,
        e.eager_entries,
        e.rendezvous_entries,
        e.reorder_decisions,
        e.rail_faults,
        e.requeued_entries,
        e.duplicates_dropped,
        e.stale_cts_ignored,
        e.gather_sends,
        e.pool_hits,
        e.pool_misses,
        e.bytes_copied_rx,
        e.ep_accepts,
        e.ep_handshake_failures,
        e.ep_teardowns,
        e.ep_readiness_wakeups,
        e.ep_sockets_polled,
        e.ep_spurious_wakeups,
        e.ep_backpressure_stalls,
        w.frames_sent,
        w.frames_received,
        w.data_entries,
        w.rts_entries,
        w.cts_entries,
        w.chunk_entries,
        w.staging_copies,
        w.credit_stalls,
        w.credit_frames,
    ]
}

fn unflatten(v: &[u64; SHARED_WORDS]) -> (EngineMetrics, EngineStats) {
    (
        EngineMetrics {
            requests_submitted: v[0],
            recvs_posted: v[1],
            bytes_enqueued: v[2],
            window_depth_hwm: v[3],
            frames_synthesized: v[4],
            entries_aggregated: v[5],
            eager_entries: v[6],
            rendezvous_entries: v[7],
            reorder_decisions: v[8],
            rail_faults: v[9],
            requeued_entries: v[10],
            duplicates_dropped: v[11],
            stale_cts_ignored: v[12],
            gather_sends: v[13],
            pool_hits: v[14],
            pool_misses: v[15],
            bytes_copied_rx: v[16],
            ep_accepts: v[17],
            ep_handshake_failures: v[18],
            ep_teardowns: v[19],
            ep_readiness_wakeups: v[20],
            ep_sockets_polled: v[21],
            ep_spurious_wakeups: v[22],
            ep_backpressure_stalls: v[23],
        },
        EngineStats {
            frames_sent: v[24],
            frames_received: v[25],
            data_entries: v[26],
            rts_entries: v[27],
            cts_entries: v[28],
            chunk_entries: v[29],
            staging_copies: v[30],
            credit_stalls: v[31],
            credit_frames: v[32],
        },
    )
}

/// Sub-bucket resolution of [`LogHistogram`]: each power-of-two range
/// splits into `2^LOG_HIST_SUB_BITS` linear sub-buckets, bounding the
/// relative quantile error at `2^-LOG_HIST_SUB_BITS` (~3.1%).
const LOG_HIST_SUB_BITS: u32 = 5;

const LOG_HIST_SUBS: usize = 1 << LOG_HIST_SUB_BITS;

/// Bucket count covering the full `u64` range: the linear region plus
/// one sub-bucket row per remaining exponent (59 rows for exponents
/// 0 through 58 — the top value `u64::MAX` lands in row 58).
const LOG_HIST_BUCKETS: usize = LOG_HIST_SUBS * (64 - LOG_HIST_SUB_BITS as usize + 1);

/// HDR-style log-bucketed histogram over `u64` values.
///
/// Fixed memory, allocation-free recording: values bucket by their
/// binary exponent with [`LOG_HIST_SUBS`] linear sub-buckets per
/// octave, so any quantile is reproduced within ~3.1% relative error
/// across the entire `u64` range — exactly what full-percentile
/// latency reporting (p50 through p99.99) needs without keeping every
/// sample. Exact min and max are tracked on the side so the extreme
/// quantiles never drift outside the observed range.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Box<[u64; LOG_HIST_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (one fixed allocation, never grows).
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0u64; LOG_HIST_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < LOG_HIST_SUBS as u64 {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize - LOG_HIST_SUB_BITS as usize;
            let mantissa = (v >> e) as usize - LOG_HIST_SUBS;
            LOG_HIST_SUBS + e * LOG_HIST_SUBS + mantissa
        }
    }

    /// Lower bound of bucket `i` — the conservative representative
    /// value reported for quantiles landing in it.
    fn bucket_value(i: usize) -> u64 {
        if i < LOG_HIST_SUBS {
            i as u64
        } else {
            let e = (i - LOG_HIST_SUBS) / LOG_HIST_SUBS;
            let m = (i - LOG_HIST_SUBS) % LOG_HIST_SUBS;
            ((LOG_HIST_SUBS + m) as u64) << e
        }
    }

    /// Records one value. O(1), no allocation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. 0.999 for p99.9):
    /// the smallest bucket bound such that at least `q * count`
    /// recorded values are at or below it, clamped to the exact
    /// observed `[min, max]`. Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every recorded value of `other` into `self` (shard
    /// aggregation: per-class histograms merge across shard engines).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            strategy: "aggreg",
            engine: EngineMetrics {
                requests_submitted: 8,
                recvs_posted: 8,
                bytes_enqueued: 512,
                window_depth_hwm: 7,
                frames_synthesized: 2,
                entries_aggregated: 8,
                eager_entries: 8,
                rendezvous_entries: 0,
                reorder_decisions: 1,
                rail_faults: 1,
                requeued_entries: 5,
                duplicates_dropped: 2,
                stale_cts_ignored: 1,
                gather_sends: 2,
                pool_hits: 6,
                pool_misses: 2,
                bytes_copied_rx: 128,
                ep_accepts: 11,
                ep_handshake_failures: 1,
                ep_teardowns: 4,
                ep_readiness_wakeups: 40,
                ep_sockets_polled: 55,
                ep_spurious_wakeups: 3,
                ep_backpressure_stalls: 2,
            },
            wire: EngineStats {
                frames_sent: 2,
                data_entries: 8,
                ..EngineStats::default()
            },
            nics: vec![NicMetrics {
                name: "MX/\"Myri-10G\"".to_string(),
                link: LinkStats {
                    busy_ns: 100,
                    idle_ns: 50,
                    retransmits: 3,
                    acks: 4,
                },
            }],
        }
    }

    #[test]
    fn aggregation_ratio_handles_zero_frames() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.aggregation_ratio(), 0.0);
        m.frames_synthesized = 2;
        m.entries_aggregated = 8;
        assert_eq!(m.aggregation_ratio(), 4.0);
    }

    #[test]
    fn window_hwm_ratchets() {
        let mut m = EngineMetrics::default();
        m.observe_window_depth(3);
        m.observe_window_depth(1);
        assert_eq!(m.window_depth_hwm, 3);
        m.observe_window_depth(9);
        assert_eq!(m.window_depth_hwm, 9);
    }

    #[test]
    fn snapshot_json_is_complete_and_escaped() {
        let json = sample().to_json();
        assert!(json.contains("\"strategy\":\"aggreg\""));
        assert!(json.contains("\"requests_submitted\":8"));
        assert!(json.contains("\"aggregation_ratio\":4.0000"));
        assert!(json.contains("\"reorder_decisions\":1"));
        assert!(json.contains("\"rail_faults\":1"));
        assert!(json.contains("\"requeued_entries\":5"));
        assert!(json.contains("\"duplicates_dropped\":2"));
        assert!(json.contains("\"stale_cts_ignored\":1"));
        assert!(json.contains("\"gather_sends\":2"));
        assert!(json.contains("\"pool_hits\":6"));
        assert!(json.contains("\"pool_misses\":2"));
        assert!(json.contains("\"bytes_copied_rx\":128"));
        assert!(json.contains("\"endpoint\":{\"accepts\":11"));
        assert!(json.contains("\"readiness_wakeups\":40"));
        assert!(json.contains("\"sockets_polled\":55"));
        assert!(json.contains("\"spurious_wakeups\":3"));
        assert!(json.contains("\"backpressure_stalls\":2"));
        assert!(json.contains("\"retransmits\":3"));
        assert!(json.contains("\"acks\":4"));
        // The quote inside the NIC name must be escaped.
        assert!(json.contains("MX/\\\"Myri-10G\\\""));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn registry_renders_labeled_array() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.to_json(), "[]");
        reg.record("fig2/aggreg/64B", sample());
        reg.record("fig2/default/64B", sample());
        assert_eq!(reg.len(), 2);
        let json = reg.to_json();
        assert!(json.starts_with("[{\"label\":\"fig2/aggreg/64B\","));
        assert!(json.contains("\"label\":\"fig2/default/64B\""));
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn set_endpoint_mirrors_every_driver_counter() {
        let mut m = EngineMetrics::default();
        m.set_endpoint(&EndpointStats {
            accepts: 1,
            handshake_failures: 2,
            teardowns: 3,
            readiness_wakeups: 4,
            sockets_polled: 5,
            spurious_wakeups: 6,
            backpressure_stalls: 7,
        });
        assert_eq!(
            (
                m.ep_accepts,
                m.ep_handshake_failures,
                m.ep_teardowns,
                m.ep_readiness_wakeups,
                m.ep_sockets_polled,
                m.ep_spurious_wakeups,
                m.ep_backpressure_stalls,
            ),
            (1, 2, 3, 4, 5, 6, 7)
        );
        // absorb() sums endpoint counters across shard engines.
        let mut sum = m;
        sum.absorb(&m);
        assert_eq!(sum.ep_accepts, 2);
        assert_eq!(sum.ep_backpressure_stalls, 14);
    }

    #[test]
    fn shared_metrics_roundtrip_every_field() {
        // Distinct values per field so a swapped flatten/unflatten slot
        // cannot cancel out.
        let mut words = [0u64; SHARED_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 100 + i as u64;
        }
        let (e, w) = unflatten(&words);
        assert_eq!(flatten(&e, &w), words);
        let shared = SharedMetrics::new();
        shared.publish(&e, &w);
        assert_eq!(shared.read(), (e, w));
    }

    #[test]
    fn log_histogram_buckets_are_monotone_and_tight() {
        // Index is monotone in the value, and the bucket's lower bound
        // is within the guaranteed relative error of the value.
        let mut values: Vec<u64> = (0..4096).collect();
        for shift in 12..64u32 {
            let p = 1u64 << shift;
            values.extend([p - 1, p, p + 1, p + (p >> 3), p + (p >> 1)]);
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let i = LogHistogram::bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(i < LOG_HIST_BUCKETS, "index {i} out of range at {v}");
            let lo = LogHistogram::bucket_value(i);
            assert!(lo <= v, "bucket lower bound {lo} above value {v}");
            assert!(
                (v - lo) as f64 <= v as f64 / LOG_HIST_SUBS as f64 + 1.0,
                "bucket error too large at {v}: lower bound {lo}"
            );
        }
    }

    #[test]
    fn log_histogram_quantiles_within_error_bound() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (1.0, 10_000)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.04, "p{q}: got {got}, exact {exact}, err {err:.4}");
        }
        assert_eq!(h.value_at_quantile(0.0), 1, "p0 is the exact minimum");
    }

    #[test]
    fn log_histogram_empty_zero_and_merge() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);

        let mut a = LogHistogram::new();
        a.record(0);
        assert_eq!(a.value_at_quantile(0.5), 0, "zero values are representable");
        let mut b = LogHistogram::new();
        for _ in 0..999 {
            b.record(100);
        }
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 1001);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1_000_000);
        // The outlier is invisible at p50 but dominates p99.99.
        assert!(a.value_at_quantile(0.5) <= 100);
        let tail = a.value_at_quantile(0.9999);
        assert!(
            (tail as f64 - 1_000_000.0).abs() / 1_000_000.0 <= 0.04,
            "p99.99 missed the outlier: {tail}"
        );
    }

    #[test]
    fn threaded_shared_metrics_reads_never_tear() {
        use crate::sync::AtomicBool;
        use std::sync::Arc;

        let shared = Arc::new(SharedMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Every word equals `i`: any torn read mixes two
                    // publishes and shows up as unequal words.
                    let (e, w) = unflatten(&[i; SHARED_WORDS]);
                    shared.publish(&e, &w);
                    i = i.wrapping_add(1);
                }
            })
        };
        for _ in 0..200_000 {
            let (e, w) = shared.read();
            let words = flatten(&e, &w);
            assert!(words.iter().all(|&x| x == words[0]), "torn read: {words:?}");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
