//! A small MPI application: 1-D Jacobi heat diffusion with halo
//! exchange and a convergence allreduce — the style of application the
//! paper targets, running on MAD-MPI over the simulated cluster.
//!
//! Each rank owns a slab of the rod. Per iteration it exchanges one
//! boundary cell with each neighbour (two small messages — exactly the
//! traffic aggregation likes), relaxes its interior, and every few
//! iterations the ranks agree on the residual via allreduce.
//!
//! Run: `cargo run --release --example mpi_stencil`

use newmadeleine::mpi::{
    pump_cluster, sim_cluster, AllreduceOp, CollectiveOp, EngineKind, Request, StrategyKind,
};
use newmadeleine::sim::nic;

const RANKS: usize = 4;
const CELLS_PER_RANK: usize = 64;
const ITERATIONS: usize = 50;

fn f64_to_bytes(x: f64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

fn f64_from_bytes(b: &[u8]) -> f64 {
    f64::from_le_bytes(b.try_into().expect("8 bytes"))
}

fn max_fold(acc: &mut Vec<u8>, other: &[u8]) {
    let a = f64_from_bytes(acc);
    let b = f64_from_bytes(other);
    *acc = f64_to_bytes(a.max(b));
}

struct Slab {
    cells: Vec<f64>,
}

fn main() {
    let (world, mut procs) = sim_cluster(
        RANKS,
        nic::mx_myri10g(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let comm = procs[0].comm_world();

    // Initial condition: rank 0's left edge is held hot.
    let mut slabs: Vec<Slab> = (0..RANKS)
        .map(|r| Slab {
            cells: vec![if r == 0 { 0.5 } else { 0.0 }; CELLS_PER_RANK],
        })
        .collect();
    slabs[0].cells[0] = 100.0;

    let mut residual = f64::INFINITY;
    for iter in 0..ITERATIONS {
        // --- halo exchange: boundary cell with each neighbour -------
        let mut recvs: Vec<Vec<(usize, Request)>> = vec![Vec::new(); RANKS];
        for r in 0..RANKS {
            if r > 0 {
                recvs[r].push((r - 1, procs[r].irecv(comm, r - 1, 0, 8)));
            }
            if r + 1 < RANKS {
                recvs[r].push((r + 1, procs[r].irecv(comm, r + 1, 0, 8)));
            }
        }
        for r in 0..RANKS {
            if r > 0 {
                let edge = f64_to_bytes(slabs[r].cells[0]);
                procs[r].isend(comm, r - 1, 0, edge);
            }
            if r + 1 < RANKS {
                let edge = f64_to_bytes(slabs[r].cells[CELLS_PER_RANK - 1]);
                procs[r].isend(comm, r + 1, 0, edge);
            }
        }
        pump_cluster(&world, &mut procs, |p| {
            recvs
                .iter()
                .enumerate()
                .all(|(r, list)| list.iter().all(|&(_, req)| p[r].test(req)))
        });
        let halos: Vec<Vec<(usize, f64)>> = recvs
            .iter()
            .enumerate()
            .map(|(r, list)| {
                list.iter()
                    .map(|&(from, req)| (from, f64_from_bytes(&procs[r].take(req).expect("done"))))
                    .collect()
            })
            .collect();

        // --- relax -------------------------------------------------
        let mut local_residual = [0.0f64; RANKS];
        for r in 0..RANKS {
            let left_halo = halos[r]
                .iter()
                .find(|&&(from, _)| from + 1 == r)
                .map(|&(_, v)| v);
            let right_halo = halos[r]
                .iter()
                .find(|&&(from, _)| from == r + 1)
                .map(|&(_, v)| v);
            let old = slabs[r].cells.clone();
            for i in 0..CELLS_PER_RANK {
                // The hot boundary cell is a fixed Dirichlet condition.
                if r == 0 && i == 0 {
                    continue;
                }
                let left = if i == 0 {
                    left_halo.unwrap_or(old[0])
                } else {
                    old[i - 1]
                };
                let right = if i == CELLS_PER_RANK - 1 {
                    right_halo.unwrap_or(old[CELLS_PER_RANK - 1])
                } else {
                    old[i + 1]
                };
                slabs[r].cells[i] = 0.5 * (left + right);
                local_residual[r] = local_residual[r].max((slabs[r].cells[i] - old[i]).abs());
            }
        }

        // --- convergence check every 10 iterations -------------------
        if iter % 10 == 9 {
            let mut ops: Vec<AllreduceOp> = procs
                .iter()
                .enumerate()
                .map(|(r, p)| AllreduceOp::new(p, f64_to_bytes(local_residual[r]), max_fold, 8))
                .collect();
            pump_cluster(&world, &mut procs, |procs| {
                let mut all = true;
                for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                    all &= op.advance(p);
                }
                all
            });
            residual = f64_from_bytes(&ops[0].take_result().expect("done"));
            for mut op in ops.into_iter().skip(1) {
                op.take_result();
            }
            println!("iter {:>3}: residual {residual:.4}", iter + 1);
        }
    }

    println!(
        "finished {ITERATIONS} iterations at {} (virtual), residual {residual:.4}",
        world.lock().now()
    );
    // The heat front must have advanced into rank 1's slab.
    assert!(
        slabs[1].cells[0] > 0.0,
        "diffusion must cross the rank boundary"
    );
    assert!(residual.is_finite());
}
