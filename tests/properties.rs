//! Property-based integration tests (proptest): the engine's delivery
//! semantics hold for arbitrary workloads under every strategy, and the
//! wire codecs round-trip arbitrary content.

use bytes::Bytes;
use newmadeleine::core::prelude::*;
use newmadeleine::core::wire::{parse_frame, Entry, FrameBuilder, FrameEncoder};
use newmadeleine::core::SeqNo;
use newmadeleine::core::Strategy;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::Driver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig};
use proptest::prelude::*;

type MkStrategy = fn() -> Box<dyn Strategy>;

fn strategies() -> Vec<(&'static str, MkStrategy)> {
    vec![
        ("default", || Box::new(StratDefault)),
        ("aggreg", || Box::new(StratAggreg)),
        ("reorder", || Box::new(StratReorder)),
        ("multirail", || Box::new(StratMultirail::default())),
    ]
}

fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        strategy,
        EngineCosts::zero(),
    )
}

/// One submitted segment: flow tag, size class.
#[derive(Clone, Debug)]
struct Seg {
    tag: u32,
    len: usize,
}

fn seg_strategy() -> impl proptest::strategy::Strategy<Value = Seg> {
    use proptest::strategy::Strategy as _;
    (0u32..4, prop_oneof![0usize..200, 30_000usize..90_000]).prop_map(|(tag, len)| Seg { tag, len })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whatever the strategy does on the wire (aggregate, reorder,
    /// split), every flow delivers exactly the submitted bytes in
    /// submission order.
    #[test]
    fn delivery_is_exact_under_every_strategy(segs in proptest::collection::vec(seg_strategy(), 1..12)) {
        for (name, mk) in strategies() {
            let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
            let mut a = engine(&world, 0, mk());
            let mut b = engine(&world, 1, mk());
            let mut expected: std::collections::HashMap<u32, Vec<Vec<u8>>> = Default::default();
            let mut sends = Vec::new();
            for (i, seg) in segs.iter().enumerate() {
                let body: Vec<u8> = (0..seg.len).map(|j| ((i * 31 + j) % 251) as u8).collect();
                expected.entry(seg.tag).or_default().push(body.clone());
                sends.push(a.isend(NodeId(1), Tag(seg.tag), body));
            }
            let mut recvs: Vec<(u32, usize, newmadeleine::core::RecvReqId)> = Vec::new();
            for seg in &segs {
                let idx = recvs.iter().filter(|(t, _, _)| *t == seg.tag).count();
                recvs.push((seg.tag, idx, b.post_recv(NodeId(0), Tag(seg.tag), seg.len)));
            }
            // Pump to completion.
            let mut spins = 0u32;
            loop {
                let mut moved = a.progress();
                moved |= b.progress();
                let all = sends.iter().all(|&s| a.is_send_done(s))
                    && recvs.iter().all(|&(_, _, r)| b.is_recv_done(r));
                if all { break; }
                if !moved && world.lock().advance().is_none() {
                    panic!("deadlock under {name}");
                }
                spins += 1;
                prop_assert!(spins < 1_000_000, "livelock under {name}");
            }
            for (tag, idx, r) in recvs {
                let done = b.try_take_recv(r).expect("completed");
                prop_assert_eq!(
                    &done.data,
                    &expected[&tag][idx],
                    "strategy {} flow {} item {}", name, tag, idx
                );
            }
        }
    }

    /// The engine wire codec round-trips arbitrary entry sequences.
    #[test]
    fn wire_frames_roundtrip(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..300), 0u8..4),
            0..20
        )
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data(Tag(*tag), SeqNo(*seq), payload),
                1 => fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let frame = fb.finish();
        let parsed = parse_frame(&frame).expect("self-built frame parses");
        prop_assert_eq!(parsed.len(), entries.len());
        for (entry, (tag, seq, payload, kind)) in parsed.iter().zip(&entries) {
            match (entry, kind) {
                (Entry::Data { tag: t, seq: s, payload: p }, 0) => {
                    prop_assert_eq!(t.0, *tag);
                    prop_assert_eq!(s.0, *seq);
                    prop_assert_eq!(*p, payload.as_slice());
                }
                (Entry::Rts { total, .. }, 1) | (Entry::Cts { total, .. }, 2) => {
                    prop_assert_eq!(*total as usize, payload.len());
                }
                (Entry::RdvData { offset, payload: p, .. }, _) => {
                    prop_assert_eq!(*offset, *seq);
                    prop_assert_eq!(*p, payload.as_slice());
                }
                other => prop_assert!(false, "kind mismatch {:?}", other),
            }
        }
    }

    /// The gather encoder is bit-identical to the staged builder: for
    /// any entry sequence, concatenating [`FrameEncoder`]'s iov
    /// segments yields exactly the bytes [`FrameBuilder`] produces,
    /// `stage_into` produces the same bytes again, and the result
    /// parses back to the same entries (paper §4: gather vs staging
    /// copy must be a pure transport decision, invisible on the wire).
    #[test]
    fn gather_iov_is_bit_identical_to_staged_frame(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..300), 0u8..5),
            0..20
        )
    ) {
        let mut fb = FrameBuilder::new();
        let mut fe = FrameEncoder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => {
                    fb.push_data(Tag(*tag), SeqNo(*seq), payload);
                    fe.push_data(Tag(*tag), SeqNo(*seq), payload);
                }
                1 => {
                    fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                    fe.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                }
                2 => {
                    fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                    fe.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                }
                3 => {
                    fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload);
                    fe.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload);
                }
                _ => {
                    fb.push_credit(*tag);
                    fe.push_credit(*tag);
                }
            }
        }
        prop_assert_eq!(fb.len(), fe.wire_len());
        let staged_by_builder = fb.finish();
        let iov = fe.finish();
        let segs = iov.segments();
        prop_assert_eq!(segs.len(), iov.segment_count());
        let gathered: Vec<u8> = segs.concat();
        prop_assert_eq!(&gathered, &staged_by_builder, "gather iov differs from builder bytes");
        let mut staged_by_iov = vec![0xAAu8; 7]; // dirty pooled buffer
        iov.stage_into(&mut staged_by_iov);
        prop_assert_eq!(&staged_by_iov, &staged_by_builder, "staged copy differs from builder bytes");
        let parsed = parse_frame(&gathered).expect("gather-built frame parses");
        prop_assert_eq!(parsed.len(), entries.len());
    }

    /// Every strict prefix of a valid frame is rejected with an error:
    /// the count header promises entries the truncated bytes cannot
    /// hold, so `parse_frame` must return `Err`, never deliver a
    /// partial parse and never panic.
    #[test]
    fn truncated_frames_are_rejected_not_panicked(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..200), 0u8..4),
            1..10
        ),
        cut_sel in 0u32..10_000
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data(Tag(*tag), SeqNo(*seq), payload),
                1 => fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let frame = fb.finish();
        // Any strict prefix, from the empty slice to one byte short.
        let cut = (frame.len() * cut_sel as usize) / 10_000;
        prop_assert!(cut < frame.len());
        prop_assert!(
            parse_frame(&frame[..cut]).is_err(),
            "truncation to {} of {} bytes must be rejected", cut, frame.len()
        );
    }

    /// A single flipped bit anywhere in a frame never panics the
    /// parser: it either still parses (the flip landed in payload
    /// bytes) or returns a structured error.
    #[test]
    fn bit_flipped_frames_never_panic_the_parser(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..200), 0u8..4),
            0..10
        ),
        pos_sel in 0u32..10_000,
        bit in 0u8..8
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data(Tag(*tag), SeqNo(*seq), payload),
                1 => fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let mut frame = fb.finish();
        let pos = (frame.len() * pos_sel as usize) / 10_000;
        frame[pos] ^= 1 << bit;
        // Must not panic; Ok or Err are both acceptable outcomes.
        let _ = parse_frame(&frame);
    }

    /// Baseline codec round-trips arbitrary payloads.
    #[test]
    fn baseline_codec_roundtrips(tag in any::<u32>(), seq in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..500)) {
        use newmadeleine::baseline::codec::{decode, Msg};
        let msg = Msg::Eager { tag: Tag(tag), seq: SeqNo(seq), payload: &payload };
        let wire = msg.encode();
        prop_assert_eq!(decode(&wire).expect("valid"), msg);
    }

    /// Datatype pack → unpack is identity on the blocks and zero on
    /// the gaps, for arbitrary non-overlapping layouts.
    #[test]
    fn datatype_pack_unpack_identity(raw_blocks in proptest::collection::vec((0usize..64, 1usize..64), 0..10)) {
        use newmadeleine::mpi::Datatype;
        // Make blocks disjoint by accumulating offsets.
        let mut blocks = Vec::new();
        let mut at = 0usize;
        for (gap, len) in raw_blocks {
            at += gap;
            blocks.push((at, len));
            at += len;
        }
        let dtype = Datatype::indexed(blocks).expect("disjoint by construction");
        let src: Vec<u8> = (0..dtype.extent()).map(|i| (i % 255) as u8 | 1).collect();
        let packed = dtype.pack(&src);
        prop_assert_eq!(packed.len(), dtype.total_bytes());
        let back = dtype.unpack(&packed);
        let mut covered = vec![false; dtype.extent()];
        for &(offset, len) in dtype.blocks() {
            prop_assert_eq!(&back[offset..offset + len], &src[offset..offset + len]);
            for c in &mut covered[offset..offset + len] { *c = true; }
        }
        for (i, c) in covered.iter().enumerate() {
            if !c {
                prop_assert_eq!(back[i], 0, "gap byte {} must be zero", i);
            }
        }
    }

    /// Rendezvous chunking covers segments exactly once whatever the
    /// chunk size.
    #[test]
    fn rdv_chunking_partitions_payload(len in 1usize..100_000, chunk in 1usize..40_000) {
        use newmadeleine::core::{RdvJob, SendReqId};
        let data: Bytes = (0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into();
        let mut job = RdvJob::new(NodeId(1), Tag(0), SeqNo(0), data.clone(), SendReqId(0));
        let mut rebuilt = vec![0u8; len];
        let mut total = 0usize;
        let mut saw_last = false;
        while let Some(c) = job.take_chunk(chunk) {
            prop_assert!(!saw_last, "chunks after last");
            rebuilt[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
            total += c.data.len();
            saw_last = c.last;
        }
        prop_assert!(saw_last);
        prop_assert_eq!(total, len);
        prop_assert_eq!(rebuilt.as_slice(), &data[..]);
    }
}

/// Drives both engines (and virtual time) until `done` holds.
fn pump_until(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    done: impl Fn(&NmadEngine, &NmadEngine) -> bool,
) {
    let mut spins = 0u32;
    loop {
        let mut moved = a.progress();
        moved |= b.progress();
        if done(a, b) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock");
        }
        spins += 1;
        assert!(spins < 1_000_000, "livelock");
    }
}

/// One eager data frame is two iov segments (header block + payload).
/// A NIC whose gather limit is exactly two must take the gather path
/// with zero staging copies: the `segments <= gather_max_segs` decision
/// is inclusive at the boundary.
#[test]
fn frame_exactly_at_gather_limit_posts_without_staging() {
    let model = newmadeleine::sim::NicModel {
        gather_max_segs: 2,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut a = engine(&world, 0, Box::new(StratDefault));
    let mut b = engine(&world, 1, Box::new(StratDefault));
    let s = a.isend(NodeId(1), Tag(7), vec![0x42u8; 128]);
    let r = b.post_recv(NodeId(0), Tag(7), 128);
    pump_until(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    let m = a.metrics();
    assert!(m.engine.gather_sends > 0, "boundary frame must gather");
    assert_eq!(m.wire.staging_copies, 0, "no staging at the boundary");
}

/// The same frame on a NIC that allows one segment fewer must fall
/// back to a staged copy — and still deliver identical bytes.
#[test]
fn frame_one_over_gather_limit_stages_a_copy() {
    let model = newmadeleine::sim::NicModel {
        gather_max_segs: 1,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut a = engine(&world, 0, Box::new(StratDefault));
    let mut b = engine(&world, 1, Box::new(StratDefault));
    let body: Vec<u8> = (0..128u32).map(|i| (i % 251) as u8).collect();
    let s = a.isend(NodeId(1), Tag(7), body.clone());
    let r = b.post_recv(NodeId(0), Tag(7), 128);
    pump_until(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    let m = a.metrics();
    assert_eq!(m.engine.gather_sends, 0, "gatherless NIC must not gather");
    assert!(m.wire.staging_copies > 0, "fallback must stage");
    assert_eq!(&b.try_take_recv(r).expect("completed").data, &body);
}

/// The sim driver enforces its MTU exactly: a frame of `mtu` bytes is
/// accepted, one byte more is rejected as `FrameTooLarge`.
#[test]
fn mtu_boundary_is_exact_at_the_driver() {
    let model = newmadeleine::sim::NicModel {
        mtu: 4096,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut d = SimDriver::new(world.clone(), NodeId(0), RailId(0));
    let mut fb = FrameBuilder::new();
    fb.push_data(Tag(0), SeqNo(0), &vec![0u8; 4096 - fb.len() - 20]);
    let at_mtu = fb.finish();
    assert_eq!(at_mtu.len(), 4096);
    d.post_send(NodeId(1), &[&at_mtu])
        .expect("frame at mtu fits");
    let over = vec![0u8; 4097];
    assert!(
        d.post_send(NodeId(1), &[&over]).is_err(),
        "frame one byte over mtu must be rejected"
    );
}
