//! End-to-end real-time cost of regenerating figure points: one full
//! co-simulated ping-pong per iteration. This measures the *simulator's*
//! throughput (events/s of host time), not virtual latency — useful to
//! size the full sweeps.

use bench::{pingpong_contig, pingpong_multiseg};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mad_mpi::{EngineKind, StrategyKind};
use nmad_sim::nic;

fn bench_fig2_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig2_point");
    group.sample_size(20);
    for (label, kind) in [
        ("madmpi", EngineKind::MadMpi(StrategyKind::Aggreg)),
        ("mpich", EngineKind::Mpich),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| black_box(pingpong_contig(kind, nic::mx_myri10g(), 1024, 1).one_way_us))
        });
    }
    group.finish();
}

fn bench_fig3_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig3_point");
    group.sample_size(20);
    group.bench_function("madmpi_8seg", |b| {
        b.iter(|| {
            black_box(
                pingpong_multiseg(
                    EngineKind::MadMpi(StrategyKind::Aggreg),
                    nic::mx_myri10g(),
                    8,
                    256,
                    1,
                )
                .one_way_us,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2_point, bench_fig3_point);
criterion_main!(benches);
