//! Application scheduling hints and dynamic strategy selection
//! (paper §2: "Applications may even have need for different
//! optimization strategies at different stages"; §3.2: a "dynamically
//! selectable optimization function").
//!
//! A storage-like client runs two phases against the same engine:
//!
//! 1. an **interactive phase** — occasional lone metadata requests,
//!    where latency matters and aggregation machinery is pure overhead;
//! 2. a **flush phase** — a burst of dirty blocks, where throughput
//!    matters and aggregation collapses the burst into few frames.
//!
//! `StratDynamic` picks the tactic per frame from the window state; the
//! application can also force a tactic as an explicit hint.
//!
//! Run: `cargo run --release --example strategy_hints`

use newmadeleine::core::prelude::*;
use newmadeleine::core::{DynamicStats, Tactic};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SimConfig};

const FLUSH_BLOCKS: u32 = 24;
const BLOCK: usize = 512;

fn main() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mk_engine = |node: u32, strategy: Box<dyn Strategy>| {
        let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(vec![Box::new(driver)], meter, strategy, EngineCosts::zero())
    };
    let mut client = mk_engine(0, Box::new(StratDynamic::new()));
    let mut server = mk_engine(1, Box::new(StratAggreg));

    let pump = |client: &mut NmadEngine,
                server: &mut NmadEngine,
                done: &mut dyn FnMut(&NmadEngine, &NmadEngine) -> bool| {
        loop {
            let moved = client.progress() | server.progress();
            if done(client, server) {
                break;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock");
            }
        }
    };

    // Phase 1: interactive metadata lookups (lone request/response).
    let t0 = world.lock().now();
    for i in 0..4u32 {
        let req = client.isend(NodeId(1), Tag(i), format!("stat inode {i}").into_bytes());
        let resp_r = client.post_recv(NodeId(1), Tag(i), 64);
        let lookup_r = server.post_recv(NodeId(0), Tag(i), 64);
        pump(&mut client, &mut server, &mut |_, s| {
            s.is_recv_done(lookup_r)
        });
        let lookup = server.try_take_recv(lookup_r).expect("done");
        server.isend(
            NodeId(0),
            Tag(i),
            [b"ok: ", lookup.data.as_slice()].concat(),
        );
        pump(&mut client, &mut server, &mut |c, _| c.is_recv_done(resp_r));
        client.try_take_recv(resp_r).expect("done");
        let _ = req;
    }
    let interactive_us = world.lock().now().saturating_since(t0).as_us_f64();

    // Phase 2: flush a burst of dirty blocks.
    let t1 = world.lock().now();
    let sends: Vec<_> = (100..100 + FLUSH_BLOCKS)
        .map(|i| client.isend(NodeId(1), Tag(i), vec![i as u8; BLOCK]))
        .collect();
    let recvs: Vec<_> = (100..100 + FLUSH_BLOCKS)
        .map(|i| server.post_recv(NodeId(0), Tag(i), BLOCK))
        .collect();
    pump(&mut client, &mut server, &mut |c, s| {
        sends.iter().all(|&r| c.is_send_done(r)) && recvs.iter().all(|&r| s.is_recv_done(r))
    });
    let flush_us = world.lock().now().saturating_since(t1).as_us_f64();

    println!("interactive phase (4 lookups): {interactive_us:.1} us");
    println!(
        "flush phase ({FLUSH_BLOCKS} x {BLOCK} B): {flush_us:.1} us, {} frames",
        client.stats().frames_sent
    );

    // Peek at what the selector did. (We can't downcast through the
    // engine, so run the same phases against a bare selector.)
    let stats = replay_selector();
    println!(
        "dynamic selector picks — latency: {}, aggregate: {}, reorder: {}",
        stats.latency_picks, stats.aggregate_picks, stats.reorder_picks
    );
    assert!(
        stats.latency_picks >= 4,
        "lone lookups take the latency path"
    );
    assert!(stats.aggregate_picks >= 1, "the flush burst aggregates");

    // An explicit application hint pins the tactic regardless of state.
    let mut forced = StratDynamic::new();
    forced.force(Some(Tactic::Latency));
    println!("(applications may force a tactic, e.g. Tactic::Latency, as a §2-style hint)");
}

/// Re-runs the two traffic shapes against a bare `StratDynamic` to
/// report its selection counters.
fn replay_selector() -> DynamicStats {
    use newmadeleine::core::{NicView, Window};
    use newmadeleine::net::Capabilities;
    let caps = Capabilities::from_nic(&nic::mx_myri10g());
    let mut strat = StratDynamic::new();
    let view = NicView {
        index: 0,
        caps: &caps,
    };
    let mut window = Window::new(1);
    let wrapper = |i: u32, len: usize| newmadeleine::core::PackWrapper {
        dst: NodeId(1),
        tag: Tag(i),
        seq: newmadeleine::core::SeqNo(0),
        priority: Priority::Normal,
        data: bytes_of(len),
        req: newmadeleine::core::SendReqId(i as u64),
        order: i as u64,
    };
    // Interactive: four lone segments scheduled one at a time.
    for i in 0..4 {
        window.push_segment(wrapper(i, 32), None);
        strat.schedule(&mut window, &view);
    }
    // Flush: a burst scheduled together.
    for i in 100..100 + FLUSH_BLOCKS {
        window.push_segment(wrapper(i, BLOCK), None);
    }
    while strat.schedule(&mut window, &view).is_some() {}
    strat.stats()
}

fn bytes_of(len: usize) -> bytes::Bytes {
    bytes::Bytes::from(vec![0u8; len])
}
