/root/repo/target/debug/deps/lossy-2cc54246aa27adf3.d: crates/bench/src/bin/lossy.rs Cargo.toml

/root/repo/target/debug/deps/liblossy-2cc54246aa27adf3.rmeta: crates/bench/src/bin/lossy.rs Cargo.toml

crates/bench/src/bin/lossy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
