/root/repo/target/release/deps/ablation-ae7d6bc4151e7027.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-ae7d6bc4151e7027: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
