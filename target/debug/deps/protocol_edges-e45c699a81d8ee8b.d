/root/repo/target/debug/deps/protocol_edges-e45c699a81d8ee8b.d: tests/protocol_edges.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_edges-e45c699a81d8ee8b.rmeta: tests/protocol_edges.rs Cargo.toml

tests/protocol_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
