/root/repo/target/debug/deps/mpi_semantics-6b65f8af9a1cc141.d: tests/mpi_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libmpi_semantics-6b65f8af9a1cc141.rmeta: tests/mpi_semantics.rs Cargo.toml

tests/mpi_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
