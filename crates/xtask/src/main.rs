//! Workspace automation tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! * `lint` — walk every Rust source in the workspace and enforce the
//!   repo invariants in [`nmad_verify::lint::RULES`]. Exit code 0 when
//!   clean, 1 with one line per violation otherwise (`--json` for
//!   machine-readable output).
//! * `bench-diff` — compare freshly generated `BENCH_*.json` reports
//!   against the committed `BENCH_baseline/`; exit 1 on any metric
//!   regressing past the tolerance (see [`bench_diff`]).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench_diff;
mod json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--json")),
        Some("bench-diff") => bench_diff::bench_diff(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- lint [--json]");
    eprintln!(
        "       cargo run -p xtask -- bench-diff [--tolerance 20%] \
         [--baseline BENCH_baseline] [--current .]"
    );
}

/// Workspace root: xtask lives at <root>/crates/xtask.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Collects every tracked Rust source under the workspace, skipping
/// build output and VCS metadata.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(err) => {
                eprintln!("warning: cannot read {}: {err}", dir.display());
                continue;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let files = rust_sources(&root);
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .expect("file under workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        let raw = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("warning: cannot read {}: {err}", path.display());
                continue;
            }
        };
        checked += 1;
        violations.extend(nmad_verify::lint::lint_file(&rel, &raw));
    }

    if json {
        // Hand-rolled JSON: the workspace has no serde and the shape
        // is tiny.
        let mut s = String::from("{\"task\":\"lint\",\"violations\":[");
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\"}}",
                v.rule,
                v.file,
                v.line,
                v.excerpt.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push_str(&format!(
            "],\"files_checked\":{},\"rules\":{}}}",
            checked,
            nmad_verify::lint::RULES.len()
        ));
        println!("{s}");
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "lint: {} file(s) checked against {} rule(s), {} violation(s)",
            checked,
            nmad_verify::lint::RULES.len(),
            violations.len()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
