//! Integration: the engine and MPI layer over *real* transports — TCP
//! sockets on loopback and the in-process memory fabric with threads.

use newmadeleine::core::prelude::*;
use newmadeleine::mpi::{mem_cluster, EngineKind, StrategyKind};
use newmadeleine::net::{NullMeter, TcpDriver};
use newmadeleine::sim::NodeId;

fn tcp_engine(driver: TcpDriver, strategy: Box<dyn Strategy>) -> NmadEngine {
    NmadEngine::new(
        vec![Box::new(driver)],
        Box::new(NullMeter),
        strategy,
        EngineCosts::zero(),
    )
}

#[test]
fn tcp_pack_unpack_roundtrip() {
    let (a, b) = TcpDriver::pair().expect("loopback pair");
    let mut tx = tcp_engine(a, Box::new(StratAggreg));
    let t = std::thread::spawn(move || {
        let mut rx = tcp_engine(b, Box::new(StratAggreg));
        let handle = rx
            .message_from(NodeId(0), Tag(1))
            .unpack(64)
            .unpack(64)
            .finish();
        while !handle.is_done(&rx) {
            rx.progress();
        }
        handle
            .take_all(&mut rx)
            .into_iter()
            .map(|p| p.data)
            .collect::<Vec<_>>()
    });
    let req = tx
        .message_to(NodeId(1), Tag(1))
        .pack(&b"over tcp"[..])
        .pack(&b"for real"[..])
        .finish();
    tx.wait_send(req);
    let pieces = t.join().expect("receiver thread");
    assert_eq!(pieces, vec![b"over tcp".to_vec(), b"for real".to_vec()]);
}

#[test]
fn tcp_rendezvous_large_transfer() {
    let (a, b) = TcpDriver::pair().expect("loopback pair");
    let body: Vec<u8> = (0..1_500_000u32).map(|i| (i % 251) as u8).collect();
    let expected = body.clone();
    let mut tx = tcp_engine(a, Box::new(StratAggreg));
    let t = std::thread::spawn(move || {
        let mut rx = tcp_engine(b, Box::new(StratAggreg));
        let r = rx.post_recv(NodeId(0), Tag(0), 2_000_000);
        rx.wait_recv(r).data
    });
    let s = tx.isend(NodeId(1), Tag(0), body);
    tx.wait_send(s);
    // wait_send completes at transmit; keep pumping until the peer is
    // done (join proves delivery).
    let got = loop {
        tx.progress();
        if t.is_finished() {
            break t.join().expect("receiver thread");
        }
    };
    assert_eq!(got, expected);
}

#[test]
fn tcp_many_flows_bidirectional() {
    let (a, b) = TcpDriver::pair().expect("loopback pair");
    let t = std::thread::spawn(move || {
        let mut e = tcp_engine(b, Box::new(StratAggreg));
        let recvs: Vec<_> = (0..10u32)
            .map(|i| e.post_recv(NodeId(0), Tag(i), 256))
            .collect();
        // Echo each flow back.
        for (i, r) in recvs.into_iter().enumerate() {
            let data = e.wait_recv(r).data;
            let s = e.isend(NodeId(0), Tag(i as u32), data);
            e.wait_send(s);
        }
    });
    let mut e = tcp_engine(a, Box::new(StratAggreg));
    let echoes: Vec<_> = (0..10u32)
        .map(|i| e.post_recv(NodeId(1), Tag(i), 256))
        .collect();
    for i in 0..10u32 {
        e.isend(NodeId(1), Tag(i), vec![i as u8; 100 + i as usize]);
    }
    for (i, r) in echoes.into_iter().enumerate() {
        let back = e.wait_recv(r);
        assert_eq!(back.data, vec![i as u8; 100 + i]);
    }
    t.join().expect("echo thread");
}

#[test]
fn mem_cluster_mpi_with_threads() {
    let mut procs = mem_cluster(2, EngineKind::MadMpi(StrategyKind::Aggreg));
    let p1 = procs.pop().expect("two ranks");
    let mut p0 = procs.pop().expect("two ranks");
    let comm = p0.comm_world();

    let t = std::thread::spawn(move || {
        let mut p1 = p1;
        let comm = p1.comm_world();
        let r = p1.irecv(comm, 0, 1, 1024);
        p1.wait(r);
        let data = p1.take(r).expect("done");
        let s = p1.isend(comm, 0, 2, data);
        p1.wait(s);
    });

    let s = p0.isend(comm, 1, 1, vec![42u8; 777]);
    let r = p0.irecv(comm, 1, 2, 1024);
    p0.waitall(&[s, r]);
    assert_eq!(p0.take(r).unwrap(), vec![42u8; 777]);
    t.join().expect("peer rank");
}

#[test]
fn mem_cluster_all_backends_roundtrip() {
    for kind in [
        EngineKind::MadMpi(StrategyKind::Default),
        EngineKind::MadMpi(StrategyKind::Aggreg),
        EngineKind::Mpich,
        EngineKind::Ompi,
    ] {
        let mut procs = mem_cluster(2, kind);
        let comm = procs[0].comm_world();
        let s = procs[0].isend(comm, 1, 0, &b"any backend"[..]);
        let r = procs[1].irecv(comm, 0, 0, 32);
        // Single-threaded alternating pump.
        loop {
            procs[0].progress();
            procs[1].progress();
            if procs[0].test(s) && procs[1].test(r) {
                break;
            }
        }
        assert_eq!(
            procs[1].take(r).unwrap(),
            b"any backend",
            "{}",
            kind.label()
        );
    }
}

#[test]
fn tcp_mpi_job_with_collective() {
    use newmadeleine::mpi::{tcp_rank, BarrierOp, CollectiveOp};
    use std::net::{SocketAddr, TcpListener};
    use std::time::Duration;

    // Reserve three loopback ports, then form a real-socket MPI job.
    let addrs: Vec<SocketAddr> = {
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        listeners.iter().map(|l| l.local_addr().unwrap()).collect()
    };

    let handles: Vec<_> = (0..3usize)
        .map(|rank| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut proc = tcp_rank(
                    rank,
                    &addrs,
                    EngineKind::MadMpi(StrategyKind::Aggreg),
                    Duration::from_secs(10),
                )
                .expect("mesh established");
                let comm = proc.comm_world();

                // Ring exchange: send to the right, receive from the left.
                let to = (rank + 1) % 3;
                let from = (rank + 2) % 3;
                let r = proc.irecv(comm, from, 0, 16);
                let s = proc.isend(comm, to, 0, vec![rank as u8; 8]);
                proc.waitall(&[s, r]);
                let got = proc.take(r).expect("completed");
                assert_eq!(got, vec![from as u8; 8]);

                // A real-time barrier over the same sockets.
                let mut barrier = BarrierOp::new(&proc);
                while !barrier.advance(&mut proc) {
                    if !proc.progress() {
                        std::thread::yield_now();
                    }
                }
                rank
            })
        })
        .collect();
    let mut done: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    done.sort_unstable();
    assert_eq!(done, vec![0, 1, 2]);
}
