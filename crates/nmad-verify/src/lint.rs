//! Repo-specific static-analysis rules that clippy cannot express.
//!
//! The rule engine is deliberately lexical: sources are run through a
//! small lexer that blanks out comments and string/char literals
//! (preserving line structure), and rules match tokens in what
//! remains, scoped by workspace-relative path. That keeps the pass
//! dependency-free, fast, and immune to "the banned token appeared in
//! a doc comment" false positives.
//!
//! The driver lives in `crates/xtask` (`cargo run -p xtask -- lint`);
//! this module owns the rule catalog and per-file checking so the
//! rules are unit-testable and the bench harness can report how many
//! rules the tree is held to.

/// One lint rule: its stable name (used in reports) and what it
/// enforces.
pub struct Rule {
    pub name: &'static str,
    pub description: &'static str,
}

/// The rule catalog, in evaluation order.
pub static RULES: &[Rule] = &[
    Rule {
        name: "unsafe-outside-shims",
        description: "no `unsafe` token outside shims/ (compiler-backed by \
                      #![forbid(unsafe_code)] in every non-shim crate)",
    },
    Rule {
        name: "safety-comment",
        description: "every `unsafe` in shims/ has a `// SAFETY:` comment on the \
                      same line or in the contiguous comment block above it, and \
                      any shim crate using unsafe declares \
                      #![deny(unsafe_op_in_unsafe_fn)]",
    },
    Rule {
        name: "raw-atomics-outside-facade",
        description: "no direct `std::sync::atomic` / `core::sync::atomic` paths \
                      (and hence no raw atomic `Ordering::`) outside the sync \
                      facades (nmad-core::sync, the crossbeam shim facade) and \
                      the model runtime itself",
    },
    Rule {
        name: "os-time-in-sim",
        description: "no `Instant::now` / `SystemTime::now` in nmad-sim or \
                      nmad-net sim paths (virtual-time determinism); the real \
                      TCP transport (tcp.rs) is exempt",
    },
    Rule {
        name: "std-mutex-on-hot-path",
        description: "no `std::sync::Mutex`/`Condvar`/`RwLock` in the submit/\
                      progress hot path (nmad-core ring, threaded, window, \
                      engine, metrics) — use the sync facade",
    },
    Rule {
        name: "forbid-unsafe-declared",
        description: "every crates/*/src/lib.rs (and the umbrella src/lib.rs) \
                      declares #![forbid(unsafe_code)]",
    },
    Rule {
        name: "steal-facade-only",
        description: "no `StealMailbox` token outside crates/nmad-core/src/steal.rs: \
                      cross-shard state moves only through the StealGroup facade, \
                      whose departed-under-lock protocol is what the shard model \
                      suites verify",
    },
    Rule {
        name: "raw-poll-outside-shim",
        description: "no raw readiness-syscall tokens (epoll_create1/epoll_ctl/\
                      epoll_wait, EPOLLIN/EPOLLOUT, pollfd) outside shims/polling/: \
                      the endpoint layer talks to the kernel only through the \
                      Poller facade so backend selection and event accounting \
                      stay in one audited place",
    },
];

/// A single finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Blanks comments and string/char literals, preserving newlines and
/// column positions (stripped characters become spaces). Handles line
/// comments, nested block comments, escapes, raw strings with hashes,
/// and distinguishes lifetimes from char literals.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nests in Rust).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# (also br…).
        if (c == 'r' || (c == 'b' && i + 1 < b.len() && b[i + 1] == 'r')) && !prev_is_ident(&out) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                // Emit the prefix verbatim (identifier chars), blank the body.
                for &p in &b[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0;
                        while k < b.len() && b[k] == '#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            out.extend(std::iter::repeat_n('"', k - i));
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == '\''
            };
            if is_char {
                out.push('\'');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

fn prev_is_ident(out: &[char]) -> bool {
    out.last().is_some_and(|&c| c.is_alphanumeric() || c == '_')
}

/// True when `needle` occurs in `line` as a standalone word (not a
/// substring of a longer identifier).
fn has_word(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Tokens a readiness backend needs and nothing else should utter:
/// seeing one outside `shims/polling/` means someone is issuing poll
/// syscalls behind the facade's back.
const POLL_SYSCALL_TOKENS: &[&str] = &[
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "EPOLLIN",
    "EPOLLOUT",
    "EPOLLRDHUP",
    "pollfd",
];

const HOT_PATH_FILES: &[&str] = &[
    "crates/nmad-core/src/ring.rs",
    "crates/nmad-core/src/threaded.rs",
    "crates/nmad-core/src/window.rs",
    "crates/nmad-core/src/engine.rs",
    "crates/nmad-core/src/metrics.rs",
];

/// Files allowed to touch raw atomics: the model runtime and the two
/// sync facades everything else must go through.
pub(crate) fn atomics_allowed(path: &str) -> bool {
    path.starts_with("crates/nmad-verify/")
        || path == "crates/nmad-core/src/sync.rs"
        || path == "shims/crossbeam/src/sync.rs"
}

fn sim_time_scoped(path: &str) -> bool {
    (path.starts_with("crates/nmad-sim/") || path.starts_with("crates/nmad-net/"))
        && !path.ends_with("/tcp.rs")
        // Tests that drive the real TCP transport are wall clock by
        // nature, like tcp.rs itself.
        && path != "crates/nmad-net/tests/endpoint_churn.rs"
}

fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Lints one Rust source file. `path` is workspace-relative with
/// forward slashes; `raw` is the file contents.
pub fn lint_file(path: &str, raw: &str) -> Vec<Violation> {
    lint_stripped(path, raw, &strip_comments_and_strings(raw))
}

/// The lexical rules over an already-stripped view. `analyze` calls
/// this with the [`crate::lexer`] output so the unified engine strips
/// each source exactly once; `lint_file` strips with the legacy
/// function. The two strippers are held to byte equality by a
/// differential proptest in the umbrella crate.
pub fn lint_stripped(path: &str, raw: &str, stripped: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let in_shims = path.starts_with("shims/");

    for (idx, line) in stripped.lines().enumerate() {
        let lineno = idx + 1;
        let excerpt = |_: &str| raw_lines.get(idx).unwrap_or(&"").trim().to_string();

        if has_word(line, "unsafe") {
            if !in_shims {
                out.push(Violation {
                    rule: "unsafe-outside-shims",
                    file: path.to_string(),
                    line: lineno,
                    excerpt: excerpt(line),
                });
            } else {
                // A SAFETY comment must appear on the same line or in
                // the contiguous `//` comment block directly above (in
                // the raw text — it *is* a comment, so the stripped
                // view cannot see it).
                let mut documented = raw_lines.get(idx).is_some_and(|l| l.contains("SAFETY:"));
                let mut above = idx;
                while !documented && above > 0 {
                    above -= 1;
                    let l = raw_lines[above].trim_start();
                    if !l.starts_with("//") {
                        break;
                    }
                    documented = l.contains("SAFETY:");
                }
                if !documented {
                    out.push(Violation {
                        rule: "safety-comment",
                        file: path.to_string(),
                        line: lineno,
                        excerpt: format!("undocumented unsafe: {}", excerpt(line)),
                    });
                }
            }
        }

        if !atomics_allowed(path)
            && (line.contains("std::sync::atomic") || line.contains("core::sync::atomic"))
        {
            out.push(Violation {
                rule: "raw-atomics-outside-facade",
                file: path.to_string(),
                line: lineno,
                excerpt: excerpt(line),
            });
        }

        if sim_time_scoped(path)
            && (line.contains("Instant::now") || line.contains("SystemTime::now"))
        {
            out.push(Violation {
                rule: "os-time-in-sim",
                file: path.to_string(),
                line: lineno,
                excerpt: excerpt(line),
            });
        }

        if path != "crates/nmad-core/src/steal.rs" && has_word(line, "StealMailbox") {
            out.push(Violation {
                rule: "steal-facade-only",
                file: path.to_string(),
                line: lineno,
                excerpt: excerpt(line),
            });
        }

        if !path.starts_with("shims/polling/")
            && POLL_SYSCALL_TOKENS.iter().any(|t| has_word(line, t))
        {
            out.push(Violation {
                rule: "raw-poll-outside-shim",
                file: path.to_string(),
                line: lineno,
                excerpt: excerpt(line),
            });
        }

        if HOT_PATH_FILES.contains(&path)
            && (line.contains("std::sync::Mutex")
                || line.contains("std::sync::Condvar")
                || line.contains("std::sync::RwLock"))
        {
            out.push(Violation {
                rule: "std-mutex-on-hot-path",
                file: path.to_string(),
                line: lineno,
                excerpt: excerpt(line),
            });
        }
    }

    // Whole-file rules.
    if is_crate_root(path) && !in_shims && !raw.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            rule: "forbid-unsafe-declared",
            file: path.to_string(),
            line: 0,
            excerpt: "missing #![forbid(unsafe_code)]".to_string(),
        });
    }
    if in_shims
        && path.ends_with("/src/lib.rs")
        && has_word(stripped, "unsafe")
        && !raw.contains("#![deny(unsafe_op_in_unsafe_fn)]")
    {
        out.push(Violation {
            rule: "safety-comment",
            file: path.to_string(),
            line: 0,
            excerpt: "shim uses unsafe but does not declare #![deny(unsafe_op_in_unsafe_fn)]"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_and_strings() {
        let src = r##"let a = "unsafe"; // unsafe here too
/* unsafe
   in /* nested */ block */
let lt: &'static str = r#"unsafe"#;
let c = 'u';
"##;
        let stripped = strip_comments_and_strings(src);
        assert!(!has_word(&stripped, "unsafe"));
        // Line structure preserved.
        assert_eq!(stripped.lines().count(), src.lines().count());
        // Code outside literals survives.
        assert!(stripped.contains("let a ="));
        assert!(stripped.contains("&'static str"));
    }

    #[test]
    fn unsafe_flagged_outside_shims_only() {
        let v = lint_file("crates/nmad-core/src/ring.rs", "unsafe { x() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-outside-shims");
        assert_eq!(v[0].line, 1);
        // In shims it needs a SAFETY comment instead.
        let ok = lint_file(
            "shims/crossbeam/src/queue.rs",
            "// SAFETY: slot is uniquely owned here\nunsafe { x() }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lint_file("shims/crossbeam/src/queue.rs", "unsafe { x() }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "safety-comment");
    }

    #[test]
    fn unsafe_in_comment_or_string_not_flagged() {
        let v = lint_file(
            "crates/nmad-core/src/ring.rs",
            "// unsafe is discussed here\nlet s = \"unsafe\";\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_atomics_scoping() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(
            lint_file("crates/nmad-net/src/selective.rs", src)[0].rule,
            "raw-atomics-outside-facade"
        );
        assert!(lint_file("crates/nmad-core/src/sync.rs", src).is_empty());
        assert!(lint_file("shims/crossbeam/src/sync.rs", src).is_empty());
        assert!(lint_file("crates/nmad-verify/src/sync.rs", src).is_empty());
    }

    #[test]
    fn os_time_scoping() {
        let src = "let t = Instant::now();\n";
        assert_eq!(
            lint_file("crates/nmad-sim/src/lat.rs", src)[0].rule,
            "os-time-in-sim"
        );
        assert!(lint_file("crates/nmad-net/src/tcp.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/main.rs", src).is_empty());
    }

    #[test]
    fn hot_path_mutex_ban() {
        let src = "let m = std::sync::Mutex::new(());\n";
        assert_eq!(
            lint_file("crates/nmad-core/src/ring.rs", src)[0].rule,
            "std-mutex-on-hot-path"
        );
        assert!(lint_file("crates/nmad-core/src/api.rs", src).is_empty());
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let v = lint_file("crates/nmad-core/src/lib.rs", "pub mod ring;\n");
        assert!(v.iter().any(|v| v.rule == "forbid-unsafe-declared"));
        let ok = lint_file(
            "crates/nmad-core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod ring;\n",
        );
        assert!(ok.is_empty());
        // Shim roots are exempt from forbid but must pair unsafe with
        // the deny attribute.
        let shim = lint_file(
            "shims/crossbeam/src/lib.rs",
            "// SAFETY: T is Send\nunsafe impl<T: Send> Send for Q<T> {}\n",
        );
        assert!(shim
            .iter()
            .any(|v| v.rule == "safety-comment" && v.line == 0));
    }

    #[test]
    fn steal_mailbox_confined_to_the_facade() {
        let src = "let m: StealMailbox<u64> = StealMailbox::new();\n";
        let v = lint_file("crates/nmad-core/src/threaded.rs", src);
        assert_eq!(v[0].rule, "steal-facade-only");
        assert!(lint_file("crates/nmad-core/src/steal.rs", src).is_empty());
        // Comments and longer identifiers do not trip the rule.
        let ok = lint_file(
            "crates/nmad-core/src/threaded.rs",
            "// the StealMailbox protocol is documented in steal.rs\nlet x = NotAStealMailboxX;\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn raw_poll_syscalls_confined_to_the_polling_shim() {
        let src = "let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };\n\
                   let mask = EPOLLIN | EPOLLOUT;\n";
        let v = lint_file("crates/nmad-net/src/tcp.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-poll-outside-shim"));
        // The shim itself may say the tokens (its unsafe is covered by
        // the SAFETY rules, not this one).
        let shim = "// SAFETY: fd is owned\nlet fd = unsafe { epoll_create1(0) };\n";
        let v = lint_file("shims/polling/src/lib.rs", shim);
        assert!(v.iter().all(|v| v.rule != "raw-poll-outside-shim"));
        // Comments and the safe facade vocabulary do not trip it.
        let ok = lint_file(
            "crates/nmad-net/src/poller.rs",
            "// epoll_wait lives behind the shim\nlet p = Poller::new();\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn rule_catalog_is_stable() {
        assert_eq!(RULES.len(), 8);
        let names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        assert!(names.contains(&"raw-atomics-outside-facade"));
        assert!(names.contains(&"steal-facade-only"));
        assert!(names.contains(&"raw-poll-outside-shim"));
    }
}
