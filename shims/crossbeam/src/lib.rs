//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s unbounded MPMC channel over
//! `std::sync::mpsc`. Receivers are cloneable (guarded by a mutex) to
//! keep crossbeam's multi-consumer contract.

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel (cloneable).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// No message was buffered at the time of the call.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv().map_err(|_| RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_after_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1), "buffered frames drain first");
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_no_receiver_returns_message() {
            let (tx, rx) = unbounded::<&str>();
            drop(rx);
            let err = tx.send("lost").unwrap_err();
            assert_eq!(err.0, "lost");
        }

        #[test]
        fn cloned_receiver_shares_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1u8).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx2.try_recv(), Ok(2));
        }
    }
}
