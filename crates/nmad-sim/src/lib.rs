//! # nmad-sim — discrete-event network substrate
//!
//! Deterministic discrete-event simulation of a small cluster of nodes
//! connected by one or more high-performance network rails. This crate
//! substitutes for the Myrinet (MX/GM), Quadrics (Elan) and SCI hardware
//! the NewMadeleine paper was evaluated on: it reproduces each
//! technology's *timing envelope* (latency, bandwidth, per-packet host
//! overhead, gather/RDMA capabilities, rendezvous threshold) and the one
//! signal the engine's scheduling decisions hinge on — **when a NIC is
//! idle**.
//!
//! Layering:
//!
//! * [`time`] — integer-nanosecond virtual instants and durations;
//! * [`events`] — hierarchical timer wheel backing the wakeup queue;
//! * [`nic`] — calibrated per-technology NIC models;
//! * [`host`] — CPU/memcpy model plus per-library software costs;
//! * [`topo`] — node/rail identifiers, cluster configuration;
//! * [`world`] — the event-driven cluster (`post_send` / `poll_recv` /
//!   `charge_cpu` / `advance`);
//! * [`runner`] — co-simulation loop pumping engines and advancing time;
//! * [`trace`] — optional event log for tests and debugging;
//! * [`timeline`] — human-readable rendering of traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod host;
pub mod nic;
pub mod runner;
pub mod time;
pub mod timeline;
pub mod topo;
pub mod trace;
pub mod world;

pub use events::{HeapQueue, TimerWheel};
pub use host::{HostModel, SoftwareCosts};
pub use nic::NicModel;
pub use runner::{run_until, shared_world, Deadlock, SharedWorld};
pub use time::{SimDuration, SimTime};
pub use topo::{NodeId, RailId, SimConfig};
pub use world::{RxPacket, SendToken, SimWorld, WorldStats};
