//! Shared exponential-backoff policy.
//!
//! One policy serves every retry loop in the transfer layer: the
//! reliability decorators' retransmit timers (`reliable`, `selective`)
//! and the TCP driver's real-time sleep loops. Centralising it keeps
//! the retry behaviour uniform and tunable in one place instead of
//! scattering hard-coded sleeps through the drivers.

/// An exponential-backoff schedule: `initial_ns * multiplier^attempt`,
/// capped at `max_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay for the first attempt.
    pub initial_ns: u64,
    /// Ceiling the schedule saturates at.
    pub max_ns: u64,
    /// Growth factor per attempt (usually 2).
    pub multiplier: u32,
}

impl BackoffPolicy {
    /// A doubling schedule from `initial_ns` up to `max_ns`.
    pub const fn new(initial_ns: u64, max_ns: u64) -> Self {
        BackoffPolicy {
            initial_ns,
            max_ns,
            multiplier: 2,
        }
    }

    /// Delay for the `attempt`-th consecutive retry (0-based),
    /// saturating at the ceiling.
    pub fn delay_for(&self, attempt: u32) -> u64 {
        let mut d = self.initial_ns;
        for _ in 0..attempt {
            d = d.saturating_mul(self.multiplier as u64);
            if d >= self.max_ns {
                return self.max_ns;
            }
        }
        d.min(self.max_ns)
    }
}

/// Mutable backoff state: a policy plus the consecutive-failure count.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
}

impl Backoff {
    /// Fresh state over `policy` (attempt 0).
    pub fn new(policy: BackoffPolicy) -> Self {
        Backoff { policy, attempt: 0 }
    }

    /// The delay the *current* attempt should wait.
    pub fn current_ns(&self) -> u64 {
        self.policy.delay_for(self.attempt)
    }

    /// Records a failure: returns the delay for the attempt that just
    /// failed and advances to the next (longer) one.
    pub fn step(&mut self) -> u64 {
        let d = self.current_ns();
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Progress was made: the next failure starts over at the initial
    /// delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Consecutive failures recorded since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Real-time convenience for socket loops: sleeps for the current
    /// delay and advances the schedule.
    pub fn sleep(&mut self) {
        std::thread::sleep(std::time::Duration::from_nanos(self.step()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_and_saturates() {
        let p = BackoffPolicy::new(1_000, 8_000);
        assert_eq!(p.delay_for(0), 1_000);
        assert_eq!(p.delay_for(1), 2_000);
        assert_eq!(p.delay_for(2), 4_000);
        assert_eq!(p.delay_for(3), 8_000);
        assert_eq!(p.delay_for(4), 8_000);
        assert_eq!(
            p.delay_for(u32::MAX),
            8_000,
            "no overflow at large attempts"
        );
    }

    #[test]
    fn step_advances_and_reset_restarts() {
        let mut b = Backoff::new(BackoffPolicy::new(100, 1_000));
        assert_eq!(b.step(), 100);
        assert_eq!(b.step(), 200);
        assert_eq!(b.step(), 400);
        assert_eq!(b.attempt(), 3);
        b.reset();
        assert_eq!(b.current_ns(), 100);
        assert_eq!(b.attempt(), 0);
    }
}
