/root/repo/target/debug/deps/platforms-43141df1cad2a346.d: crates/bench/src/bin/platforms.rs

/root/repo/target/debug/deps/platforms-43141df1cad2a346: crates/bench/src/bin/platforms.rs

crates/bench/src/bin/platforms.rs:
