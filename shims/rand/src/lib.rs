//! Offline shim for the `rand` crate (0.8-compatible surface).
//!
//! Implements exactly what this workspace consumes: `SeedableRng::
//! seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer ranges,
//! and `rngs::StdRng`. The generator is SplitMix64 — deterministic per
//! seed but a *different stream* than real `rand` for the same seed
//! (see shims/README.md).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % width) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Types `Rng::gen` can draw from the full-width uniform distribution
/// (the shim's analogue of the real crate's `Standard`).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 mantissa bits of resolution.
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u64 {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Full-width uniform draw (`gen::<f64>()` is uniform in
    /// `[0, 1)`), mirroring the real crate's `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_std(self)
    }

    /// Bernoulli draw: true with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`, matching the real crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53 uniform mantissa bits, the same resolution f64 offers.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Namespaced concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(1usize..=256);
            assert!((1..=256).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
