//! Deterministic frame-loss injection.
//!
//! Wraps any [`Driver`] and silently drops a seeded, reproducible
//! subset of outgoing frames — the harness for exercising
//! [`ReliableDriver`](crate::reliable::ReliableDriver) and for testing
//! how engines behave over unreliable datagram fabrics (the paper's
//! networks are lossless; plain Ethernet is not).

use crate::driver::{Capabilities, Driver, NetResult, RxFrame, SendHandle};
use crate::fault::{DetRng, FaultPlan, FaultStats};
use nmad_sim::NodeId;

/// Dropped sends get handles with this bit set so `test_send` can
/// report them complete without consulting the inner driver.
const DROPPED_BIT: u64 = 1 << 63;

/// Loss-injection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LossStats {
    /// Frames passed through to the inner driver.
    pub passed: u64,
    /// Frames silently dropped.
    pub dropped: u64,
}

/// See the module documentation.
pub struct LossyDriver<D> {
    inner: D,
    rng: DetRng,
    loss_probability: f64,
    stats: LossStats,
}

impl<D: Driver> LossyDriver<D> {
    /// Drops each outgoing frame independently with `loss_probability`,
    /// reproducibly from `seed`.
    pub fn new(inner: D, loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must be in [0, 1)"
        );
        LossyDriver {
            inner,
            rng: DetRng::new(seed),
            loss_probability,
            stats: LossStats::default(),
        }
    }

    /// Loss counters so far.
    pub fn stats(&self) -> LossStats {
        self.stats
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Driver> Driver for LossyDriver<D> {
    fn caps(&self) -> &Capabilities {
        self.inner.caps()
    }

    fn local_node(&self) -> NodeId {
        self.inner.local_node()
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        if self.rng.next_unit() < self.loss_probability {
            self.stats.dropped += 1;
            // The frame vanishes on the wire; locally it "completed".
            return Ok(SendHandle(DROPPED_BIT | self.stats.dropped));
        }
        self.stats.passed += 1;
        self.inner.post_send(dst, iov)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        if handle.0 & DROPPED_BIT != 0 {
            return Ok(true);
        }
        self.inner.test_send(handle)
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        self.inner.poll_recv()
    }

    fn tx_idle(&self) -> bool {
        self.inner.tx_idle()
    }

    fn pump(&mut self) -> NetResult<()> {
        self.inner.pump()
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.inner.install_faults(plan)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn endpoint_stats(&self) -> crate::endpoint::EndpointStats {
        self.inner.endpoint_stats()
    }

    fn set_rx_backpressure(&mut self, paused: bool) {
        self.inner.set_rx_backpressure(paused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::mem_fabric;

    #[test]
    fn zero_probability_drops_nothing() {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().expect("pair");
        let a = fabric.pop().expect("pair");
        let mut lossy = LossyDriver::new(a, 0.0, 7);
        for _ in 0..50 {
            lossy.post_send(NodeId(1), &[b"x"]).unwrap();
        }
        assert_eq!(
            lossy.stats(),
            LossStats {
                passed: 50,
                dropped: 0
            }
        );
        drop(b);
    }

    #[test]
    fn losses_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut fabric = mem_fabric(2);
            let _b = fabric.pop();
            let a = fabric.pop().expect("pair");
            let mut lossy = LossyDriver::new(a, 0.3, seed);
            let mut pattern = Vec::new();
            for _ in 0..100 {
                let before = lossy.stats().dropped;
                lossy.post_send(NodeId(1), &[b"y"]).unwrap();
                pattern.push(lossy.stats().dropped > before);
            }
            (pattern, lossy.stats())
        };
        let (p1, s1) = run(42);
        let (p2, s2) = run(42);
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        let (p3, _) = run(43);
        assert_ne!(p1, p3, "different seeds give different loss patterns");
        // Roughly 30% loss.
        assert!((15..=45).contains(&(s1.dropped as usize)), "{s1:?}");
    }

    #[test]
    fn dropped_frames_never_arrive_and_handles_complete() {
        let mut fabric = mem_fabric(2);
        let mut b = fabric.pop().expect("pair");
        let a = fabric.pop().expect("pair");
        let mut lossy = LossyDriver::new(a, 0.5, 99);
        let mut handles = Vec::new();
        for i in 0..40u8 {
            handles.push(lossy.post_send(NodeId(1), &[&[i]]).unwrap());
        }
        for h in handles {
            assert!(lossy.test_send(h).unwrap(), "every handle completes");
        }
        let mut arrived = 0;
        while b.poll_recv().unwrap().is_some() {
            arrived += 1;
        }
        assert_eq!(arrived as u64, lossy.stats().passed);
        assert!(arrived < 40, "some frames must have been dropped");
    }
}
