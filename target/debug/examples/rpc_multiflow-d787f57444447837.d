/root/repo/target/debug/examples/rpc_multiflow-d787f57444447837.d: examples/rpc_multiflow.rs Cargo.toml

/root/repo/target/debug/examples/librpc_multiflow-d787f57444447837.rmeta: examples/rpc_multiflow.rs Cargo.toml

examples/rpc_multiflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
