//! One-shot experiment report: runs every reproduced experiment at a
//! reduced-but-representative sweep and prints a paper-vs-measured
//! summary table (the data source for EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p bench --bin report [-- --json PATH]`

use bench::{
    gain_pct, json_arg, pingpong_contig, pingpong_multiseg, pingpong_typed, transfer_multirail,
    write_json_report, Table,
};
use mad_mpi::{Datatype, EngineKind, StrategyKind};
use nmad_core::MetricsRegistry;
use nmad_sim::nic;

const MADMPI: EngineKind = EngineKind::MadMpi(StrategyKind::Aggreg);
const MADMPI_REORDER: EngineKind = EngineKind::MadMpi(StrategyKind::Reorder);

fn main() {
    let iters = 3;
    let json = json_arg();
    let registry = MetricsRegistry::new();
    let mut t = Table::new(vec!["experiment", "paper says", "measured"]);

    // --- §5.1 / fig 2 -------------------------------------------------
    {
        let mut max_ovh = f64::MIN;
        for size in [4usize, 64, 1024] {
            let mad = pingpong_contig(MADMPI, nic::mx_myri10g(), size, iters);
            let mpich = pingpong_contig(EngineKind::Mpich, nic::mx_myri10g(), size, iters);
            if let Some(m) = &mad.metrics {
                registry.record(format!("report/fig2/mx/{size}"), m.clone());
            }
            max_ovh = max_ovh.max(mad.one_way_us - mpich.one_way_us);
        }
        t.row(vec![
            "fig2 MadMPI overhead vs MPICH (MX, small)".to_string(),
            "constant, < 0.5 us".to_string(),
            format!("{max_ovh:.2} us"),
        ]);
        let mx = pingpong_contig(MADMPI, nic::mx_myri10g(), 2 << 20, iters);
        t.row(vec![
            "fig2 MadMPI peak bandwidth, MX".to_string(),
            "1155 MB/s".to_string(),
            format!("{:.0} MB/s", mx.bandwidth_mbs),
        ]);
        let qs = pingpong_contig(MADMPI, nic::quadrics_qm500(), 2 << 20, iters);
        t.row(vec![
            "fig2 MadMPI peak bandwidth, Quadrics".to_string(),
            "835 MB/s".to_string(),
            format!("{:.0} MB/s", qs.bandwidth_mbs),
        ]);
    }

    // --- §5.2 / fig 3 -------------------------------------------------
    {
        let mut best = f64::MIN;
        for size in [4usize, 16, 64, 256] {
            let mad = pingpong_multiseg(MADMPI, nic::mx_myri10g(), 16, size, iters);
            let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 16, size, iters);
            if let Some(m) = &mad.metrics {
                registry.record(format!("report/fig3/mx/16seg/{size}"), m.clone());
            }
            best = best.max(gain_pct(mad.one_way_us, mpich.one_way_us));
        }
        t.row(vec![
            "fig3 best gain vs MPICH (MX, 16 seg)".to_string(),
            "up to ~70%".to_string(),
            format!("{best:.0}%"),
        ]);
        let mut best_q = f64::MIN;
        for size in [4usize, 16, 64, 256] {
            let mad = pingpong_multiseg(MADMPI, nic::quadrics_qm500(), 8, size, iters);
            let mpich = pingpong_multiseg(EngineKind::Mpich, nic::quadrics_qm500(), 8, size, iters);
            best_q = best_q.max(gain_pct(mad.one_way_us, mpich.one_way_us));
        }
        t.row(vec![
            "fig3 best gain vs MPICH (Quadrics, 8 seg)".to_string(),
            "up to ~50%".to_string(),
            format!("{best_q:.0}%"),
        ]);
    }

    // --- §5.3 / fig 4 -------------------------------------------------
    {
        let dtype = Datatype::alternating(64, 256 * 1024, 4);
        let mad = pingpong_typed(MADMPI_REORDER, nic::mx_myri10g(), &dtype, iters);
        if let Some(m) = &mad.metrics {
            registry.record("report/fig4/mx/reorder", m.clone());
        }
        let mpich = pingpong_typed(EngineKind::Mpich, nic::mx_myri10g(), &dtype, iters);
        let ompi = pingpong_typed(EngineKind::Ompi, nic::mx_myri10g(), &dtype, iters);
        t.row(vec![
            "fig4 datatype gain vs MPICH (MX, 1 MB)".to_string(),
            "about 70%".to_string(),
            format!("{:.0}%", gain_pct(mad.one_way_us, mpich.one_way_us)),
        ]);
        t.row(vec![
            "fig4 datatype gain vs OpenMPI (MX, 1 MB)".to_string(),
            "about 50%".to_string(),
            format!("{:.0}%", gain_pct(mad.one_way_us, ompi.one_way_us)),
        ]);
        let mad_q = pingpong_typed(MADMPI_REORDER, nic::quadrics_qm500(), &dtype, iters);
        let mpich_q = pingpong_typed(EngineKind::Mpich, nic::quadrics_qm500(), &dtype, iters);
        t.row(vec![
            "fig4 datatype gain vs MPICH (Quadrics, 1 MB)".to_string(),
            "until about 70%".to_string(),
            format!("{:.0}%", gain_pct(mad_q.one_way_us, mpich_q.one_way_us)),
        ]);
    }

    // --- §4/§7 multirail extension -------------------------------------
    {
        let size = 4 << 20;
        let (mx, _) = transfer_multirail(MADMPI, vec![nic::mx_myri10g()], size, 1);
        let (both, split) = transfer_multirail(
            EngineKind::MadMpi(StrategyKind::Multirail),
            vec![nic::mx_myri10g(), nic::quadrics_qm500()],
            size,
            1,
        );
        if let Some(m) = &both.metrics {
            registry.record("report/multirail/mx+quadrics/4M", m.clone());
        }
        let pct0 = 100.0 * split[0] as f64 / (split[0] + split[1]).max(1) as f64;
        t.row(vec![
            "multirail speedup over best single rail (4 MB)".to_string(),
            "(§7 future work)".to_string(),
            format!(
                "{:.2}x, split {:.0}%/{:.0}%",
                both.bandwidth_mbs / mx.bandwidth_mbs,
                pct0,
                100.0 - pct0
            ),
        ]);
    }

    println!("# NewMadeleine reproduction — paper vs measured\n");
    t.print();
    write_json_report(json.as_deref(), &registry);
}
