/root/repo/target/debug/deps/fanin-969c5e072a46288c.d: crates/bench/src/bin/fanin.rs

/root/repo/target/debug/deps/fanin-969c5e072a46288c: crates/bench/src/bin/fanin.rs

crates/bench/src/bin/fanin.rs:
