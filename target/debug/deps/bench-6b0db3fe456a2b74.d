/root/repo/target/debug/deps/bench-6b0db3fe456a2b74.d: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-6b0db3fe456a2b74.rlib: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libbench-6b0db3fe456a2b74.rmeta: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
