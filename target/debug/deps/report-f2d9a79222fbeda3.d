/root/repo/target/debug/deps/report-f2d9a79222fbeda3.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-f2d9a79222fbeda3: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
