/root/repo/target/debug/deps/report-db3926f53e6f83ba.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-db3926f53e6f83ba.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
