/root/repo/target/debug/deps/nmad_sim-3d2c98c2d7765634.d: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

/root/repo/target/debug/deps/nmad_sim-3d2c98c2d7765634: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

crates/nmad-sim/src/lib.rs:
crates/nmad-sim/src/host.rs:
crates/nmad-sim/src/nic.rs:
crates/nmad-sim/src/runner.rs:
crates/nmad-sim/src/time.rs:
crates/nmad-sim/src/timeline.rs:
crates/nmad-sim/src/topo.rs:
crates/nmad-sim/src/trace.rs:
crates/nmad-sim/src/world.rs:
