/root/repo/target/debug/deps/platforms-2d58191923f54c30.d: crates/bench/src/bin/platforms.rs Cargo.toml

/root/repo/target/debug/deps/libplatforms-2d58191923f54c30.rmeta: crates/bench/src/bin/platforms.rs Cargo.toml

crates/bench/src/bin/platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
