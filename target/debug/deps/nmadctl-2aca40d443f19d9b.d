/root/repo/target/debug/deps/nmadctl-2aca40d443f19d9b.d: src/bin/nmadctl.rs Cargo.toml

/root/repo/target/debug/deps/libnmadctl-2aca40d443f19d9b.rmeta: src/bin/nmadctl.rs Cargo.toml

src/bin/nmadctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
