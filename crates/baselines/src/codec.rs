//! Baseline wire codec.
//!
//! MPICH- and OpenMPI-like engines map one application request to one
//! wire message: there is no multiplexing, so the header is a single
//! fixed 16-byte record (smaller than NewMadeleine's frame + entry
//! headers — the paper's §5.1 notes MAD-MPI packets are "slightly
//! larger" for exactly this reason). Payload length is implied by the
//! frame length.

use nmad_core::segment::{SeqNo, Tag};
use std::fmt;

/// kind (1) + flags (1) + reserved (2) + tag (4) + seq (4) + aux (4).
pub const HEADER_LEN: usize = 16;

const KIND_EAGER: u8 = 1;
const KIND_RTS: u8 = 2;
const KIND_CTS: u8 = 3;
const KIND_RDV_CHUNK: u8 = 4;

const FLAG_LAST: u8 = 0b0000_0001;

/// One baseline wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<'a> {
    /// A complete small message with inline payload.
    Eager {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Payload bytes.
        payload: &'a [u8],
    },
    /// Rendezvous request-to-send (no payload).
    Rts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// Rendezvous clear-to-send grant.
    Cts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// One chunk of granted rendezvous payload.
    RdvChunk {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Byte offset within the full segment.
        offset: u32,
        /// Whether this is the final chunk of its segment.
        last: bool,
        /// Payload bytes.
        payload: &'a [u8],
    },
}

/// Decoding failures.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the structure was complete.
    Truncated,
    /// Unknown entry kind byte.
    BadKind(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated baseline message"),
            CodecError::BadKind(k) => write!(f, "unknown baseline message kind {k}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn header(kind: u8, flags: u8, tag: Tag, seq: SeqNo, aux: u32, payload_len: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload_len);
    buf.push(kind);
    buf.push(flags);
    buf.extend_from_slice(&[0u8; 2]);
    buf.extend_from_slice(&tag.0.to_le_bytes());
    buf.extend_from_slice(&seq.0.to_le_bytes());
    buf.extend_from_slice(&aux.to_le_bytes());
    buf
}

impl Msg<'_> {
    /// Encodes into one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Msg::Eager { tag, seq, payload } => {
                let mut buf = header(KIND_EAGER, 0, *tag, *seq, 0, payload.len());
                buf.extend_from_slice(payload);
                buf
            }
            Msg::Rts { tag, seq, total } => header(KIND_RTS, 0, *tag, *seq, *total, 0),
            Msg::Cts { tag, seq, total } => header(KIND_CTS, 0, *tag, *seq, *total, 0),
            Msg::RdvChunk {
                tag,
                seq,
                offset,
                last,
                payload,
            } => {
                let flags = if *last { FLAG_LAST } else { 0 };
                let mut buf = header(KIND_RDV_CHUNK, flags, *tag, *seq, *offset, payload.len());
                buf.extend_from_slice(payload);
                buf
            }
        }
    }
}

/// Decodes one wire frame.
pub fn decode(bytes: &[u8]) -> Result<Msg<'_>, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let kind = bytes[0];
    let flags = bytes[1];
    let tag = Tag(u32::from_le_bytes(bytes[4..8].try_into().expect("4")));
    let seq = SeqNo(u32::from_le_bytes(bytes[8..12].try_into().expect("4")));
    let aux = u32::from_le_bytes(bytes[12..16].try_into().expect("4"));
    let payload = &bytes[HEADER_LEN..];
    match kind {
        KIND_EAGER => Ok(Msg::Eager { tag, seq, payload }),
        KIND_RTS => Ok(Msg::Rts {
            tag,
            seq,
            total: aux,
        }),
        KIND_CTS => Ok(Msg::Cts {
            tag,
            seq,
            total: aux,
        }),
        KIND_RDV_CHUNK => Ok(Msg::RdvChunk {
            tag,
            seq,
            offset: aux,
            last: flags & FLAG_LAST != 0,
            payload,
        }),
        k => Err(CodecError::BadKind(k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_roundtrip() {
        let msgs = [
            Msg::Eager {
                tag: Tag(3),
                seq: SeqNo(9),
                payload: b"body",
            },
            Msg::Rts {
                tag: Tag(1),
                seq: SeqNo(0),
                total: 1 << 20,
            },
            Msg::Cts {
                tag: Tag(1),
                seq: SeqNo(0),
                total: 1 << 20,
            },
            Msg::RdvChunk {
                tag: Tag(7),
                seq: SeqNo(2),
                offset: 65536,
                last: true,
                payload: b"chunk-bytes",
            },
        ];
        for msg in &msgs {
            let wire = msg.encode();
            assert_eq!(&decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn header_is_exactly_16_bytes() {
        let wire = Msg::Eager {
            tag: Tag(0),
            seq: SeqNo(0),
            payload: b"xy",
        }
        .encode();
        assert_eq!(wire.len(), HEADER_LEN + 2);
    }

    #[test]
    fn truncated_and_bad_kind_are_rejected() {
        assert_eq!(decode(&[1, 2, 3]).unwrap_err(), CodecError::Truncated);
        let mut wire = Msg::Rts {
            tag: Tag(0),
            seq: SeqNo(0),
            total: 1,
        }
        .encode();
        wire[0] = 77;
        assert_eq!(decode(&wire).unwrap_err(), CodecError::BadKind(77));
    }
}
